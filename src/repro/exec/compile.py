"""Compile conjunctive queries into physical plans.

Compilation has three phases:

1. **Admission** — :func:`is_compilable` rejects queries containing function
   terms (Skolem terms introduced by the inverse-rules algorithm); those take
   the interpreter fallback (:mod:`repro.engine.evaluate`).
2. **Join ordering** — :func:`order_body` picks a left-deep pipeline order by
   estimated output cardinality, using the per-relation/per-position
   statistics of :mod:`repro.exec.stats`: start from the subgoal with the
   smallest estimated size after constant restrictions, then repeatedly take
   the connected subgoal (sharing a bound variable) with the smallest
   estimated extension; disconnected subgoals (cartesian products) are
   deferred until nothing connected remains.
3. **Operator construction** — every subgoal becomes a
   :class:`~repro.exec.plan.HashJoinStep` whose index key combines the
   subgoal's constants with its already-bound variables (positions sorted
   ascending, so isomorphic subgoals in different plans — e.g. the disjuncts
   of a union rewriting — share one relation index as their build side).
   Comparison subgoals become row filters attached to the earliest step that
   binds all their variables; ground comparisons are folded at compile time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.datalog.atoms import Atom, Comparison
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.terms import Constant, FunctionTerm, Term, Variable
from repro.engine.database import Database
from repro.exec.plan import (
    HashJoinStep,
    PhysicalPlan,
    RowFilter,
    Source,
    compare_values,
    make_comparison_filter,
)
from repro.exec.stats import DatabaseStatistics, statistics_for


def _term_has_function(term: Term) -> bool:
    return isinstance(term, FunctionTerm)


def is_compilable(query: ConjunctiveQuery) -> bool:
    """Whether the set-at-a-time compiler supports this query.

    Function terms (anywhere: head, body, comparisons) need the interpreter's
    term-level grounding and are the fallback trigger.
    """
    for atom in (query.head, *query.body):
        if any(_term_has_function(term) for term in atom.args):
            return False
    for comparison in query.comparisons:
        if _term_has_function(comparison.left) or _term_has_function(comparison.right):
            return False
    return True


def order_body(
    query: ConjunctiveQuery, database: Database, stats: Optional[DatabaseStatistics] = None
) -> List[Atom]:
    """Cost-based left-deep join order for the query's body subgoals."""
    stats = stats if stats is not None else statistics_for(database)
    remaining = list(query.body)
    ordered: List[Atom] = []
    bound: set = set()
    while remaining:
        best_index = 0
        best_key: Optional[Tuple[int, float, int]] = None
        for index, atom in enumerate(remaining):
            restricted: List[int] = []
            connected = False
            for position, term in enumerate(atom.args):
                if isinstance(term, Constant):
                    restricted.append(position)
                elif isinstance(term, Variable) and term in bound:
                    restricted.append(position)
                    connected = True
            estimated = stats.estimated_rows(atom.predicate, tuple(restricted))
            # Prefer connected subgoals (or any subgoal for the first pick);
            # among those, the smallest estimated extension wins.  Index is
            # the deterministic tie-break.
            rank = 0 if (connected or not ordered) else 1
            key = (rank, estimated, index)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound.update(chosen.variables())
    return ordered


def try_compile(
    query: ConjunctiveQuery,
    database: Database,
    stats: Optional[DatabaseStatistics] = None,
) -> Optional[PhysicalPlan]:
    """Compile ``query`` into a :class:`PhysicalPlan`, or None if unsupported."""
    if not is_compilable(query):
        return None

    # Ground comparisons fold at compile time; a false one empties the plan.
    pending: List[Comparison] = []
    for comparison in query.comparisons:
        if not comparison.variables():
            left = comparison.left
            right = comparison.right
            assert isinstance(left, Constant) and isinstance(right, Constant)
            if not compare_values(comparison.op, left.value, right.value):
                return PhysicalPlan(query.name, (), (), always_empty=True)
        else:
            pending.append(comparison)

    ordered = order_body(query, database, stats)
    slots: Dict[Variable, int] = {}
    steps: List[HashJoinStep] = []
    for atom in ordered:
        keyed: List[Tuple[int, Source]] = []
        eq_pairs: List[Tuple[int, int]] = []
        new_positions: List[int] = []
        first_new: Dict[Variable, int] = {}
        for position, term in enumerate(atom.args):
            if isinstance(term, Constant):
                keyed.append((position, (False, term.value)))
            elif isinstance(term, Variable):
                if term in slots:
                    keyed.append((position, (True, slots[term])))
                elif term in first_new:
                    eq_pairs.append((first_new[term], position))
                else:
                    first_new[term] = position
                    new_positions.append(position)
        # Sorted key positions so every plan joining this relation on the
        # same columns (notably sibling union disjuncts) shares one index.
        keyed.sort(key=lambda item: item[0])
        for variable, _position in sorted(first_new.items(), key=lambda kv: kv[1]):
            slots[variable] = len(slots)
        filters: List[RowFilter] = []
        still_pending: List[Comparison] = []
        for comparison in pending:
            if all(v in slots for v in comparison.variables()):
                filters.append(
                    make_comparison_filter(
                        comparison.op,
                        _source(comparison.left, slots),
                        _source(comparison.right, slots),
                    )
                )
            else:
                still_pending.append(comparison)
        pending = still_pending
        steps.append(
            HashJoinStep(
                predicate=atom.predicate,
                arity=len(atom.args),
                key_positions=tuple(p for p, _source in keyed),
                key_sources=tuple(source for _p, source in keyed),
                eq_pairs=tuple(eq_pairs),
                new_positions=tuple(new_positions),
                filters=tuple(filters),
            )
        )
    # Comparisons whose variables the body never binds are unreachable — the
    # interpreter silently never evaluates them, and neither do we.

    projection: List[Source] = []
    unbound: List[str] = []
    for term in query.head.args:
        if isinstance(term, Constant):
            projection.append((False, term.value))
        elif isinstance(term, Variable) and term in slots:
            projection.append((True, slots[term]))
        else:
            unbound.append(str(term))
            projection.append((False, None))
    return PhysicalPlan(
        query.name,
        steps,
        tuple(projection),
        unbound_head_terms=tuple(unbound),
        slot_count=len(slots),
    )


def _source(term: Term, slots: Dict[Variable, int]) -> Source:
    if isinstance(term, Constant):
        return (False, term.value)
    assert isinstance(term, Variable)
    return (True, slots[term])
