"""Partitioned parallel hash-join execution across a forked worker pool.

:class:`ParallelExecutor` parallelizes the compiled pipeline of
:mod:`repro.exec.plan` for large extents.  The parent process compiles the
plan, runs the **first step** (the indexed scan) itself, then hash-partitions
the scan output by the next step's join key and fans the **tail of the
pipeline** (remaining probes + projection) across a pool of forked workers:

* workers are created with the ``fork`` start method, so they inherit the
  database — relations, columnar arrays *and* every already-built hash index
  — by copy-on-write without pickling a byte of it;
* the query crosses the process boundary as datalog text (the printed form
  round-trips through the parser, the same trick as
  :mod:`repro.service.batch`); each worker re-compiles it against the
  inherited database, which is deterministic, so parent and workers agree on
  the plan's slot layout;
* partitions are formed by ``hash(row[k]) % P`` on the first bound join-key
  slot of the second step (equal keys land in one worker, preserving probe
  locality), falling back to round-robin when the next step has no bound key;
* per-partition answer sets are unioned (projection deduplicates within a
  partition, the union across them), and per-partition statistics and wall
  times are merged into the parent's counters and exposed via :meth:`stats`.

The pool is tied to one ``(database, version)`` snapshot: any mutation bumps
the version and the next evaluation forks a fresh pool, so workers can never
read stale data.  Evaluation **falls back to the serial compiled engine**
(identical answers, no processes) whenever parallelism is unsafe or not worth
it; each reason is counted in :attr:`fallback_reasons`:

==========================  ====================================================
reason                      condition
==========================  ====================================================
``not_compilable``          the compiler rejected the query (function terms);
                            the backtracking interpreter runs instead
``always_empty``            a ground comparison is false; the answer is empty
``unbound_head``            the plan would raise on any surviving row
``single_step_plan``        fewer than two steps: no tail to fan out
``fork_unavailable``        the platform has no ``fork`` start method
``daemonic_process``        already inside a pool worker (no nested pools)
``single_process``          the resolved worker count is < 2
``below_threshold``         build relation or scan output smaller than
                            ``min_partition_rows``
``skolem_partition_column``  the partition column carries Skolem values
``worker_failure``          the pool died mid-query (answers recomputed
                            serially)
==========================  ====================================================
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
import weakref
from collections import Counter
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import EvaluationError
from repro.datalog.parser import parse_query
from repro.datalog.printer import to_datalog
from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.engine.database import Database
from repro.engine.evaluate import (
    EvaluationStatistics,
    evaluate_conjunctive_interpreted,
)
from repro.exec.executor import CompiledExecutor, pushdown_single_atom
from repro.exec.plan import PhysicalPlan, Row

#: Default minimum size (build relation rows and scan-output rows) below
#: which forked fan-out is not worth the pickling round trip.
DEFAULT_MIN_PARTITION_ROWS = 50_000

#: Environment override for the default worker count (explicit constructor
#: arguments always win).
PROCESSES_ENV = "REPRO_PARALLEL_PROCESSES"


def _default_processes() -> int:
    env = os.environ.get(PROCESSES_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Worker side (module-level so it pickles; state inherited via fork)
# ---------------------------------------------------------------------------

#: The database snapshot workers inherit.  The parent sets this immediately
#: before forking the pool and clears it right after, so the only strong
#: reference lives in the children's (copy-on-write) address space.
_FORK_DB: Optional[Database] = None

#: Per-worker compiled executor, created lazily inside each child so every
#: worker keeps its own plan cache across tasks from the same pool.
_FORK_EXECUTOR: Optional[CompiledExecutor] = None


def _run_partition(
    payload: Tuple[str, int, List[Row]]
) -> Tuple[FrozenSet[Row], int, int, int, float]:
    """Run the pipeline tail + projection over one partition (in a worker).

    Returns ``(answers, probes, extensions, answer_rows, seconds)``.
    """
    global _FORK_EXECUTOR
    query_text, start, rows = payload
    database = _FORK_DB
    if database is None:  # pragma: no cover - defensive: fork misconfigured
        raise EvaluationError("parallel worker has no inherited database")
    if _FORK_EXECUTOR is None:
        _FORK_EXECUTOR = CompiledExecutor()
    started = time.perf_counter()
    query = parse_query(query_text)
    plan = _FORK_EXECUTOR.plan_for(query, database)
    if plan is None:  # pragma: no cover - parent compiled the same text
        raise EvaluationError(f"worker could not compile shipped query {query_text!r}")
    stats = EvaluationStatistics()
    surviving = plan.run_steps(database, rows, stats, start=start)
    answers = plan.project_rows(surviving, stats)
    elapsed = time.perf_counter() - started
    return answers, stats.probes, stats.extensions, stats.answers, elapsed


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

#: Executors with possibly-live pools, terminated at interpreter exit so no
#: worker process (or noisy ``Pool.__del__`` during shutdown) outlives us.
_LIVE_EXECUTORS: "weakref.WeakSet[ParallelExecutor]" = weakref.WeakSet()


@atexit.register
def _close_all_pools() -> None:
    for executor in list(_LIVE_EXECUTORS):
        executor.close()


class _PoolHandle:
    """A worker pool bound to one (database identity, database version)."""

    __slots__ = ("pool", "db_ref", "version", "processes")

    def __init__(self, pool: Any, database: Database, processes: int):
        self.pool = pool
        self.db_ref = weakref.ref(database)
        self.version = database.version
        self.processes = processes

    def matches(self, database: Database, processes: int) -> bool:
        return (
            self.db_ref() is database
            and self.version == database.version
            and self.processes == processes
        )

    def close(self) -> None:
        self.pool.terminate()
        self.pool.join()


class ParallelExecutor:
    """Partitioned parallel evaluation behind the common executor interface.

    Composes a :class:`CompiledExecutor` for plan compilation/caching and for
    every serial fallback, so answers are always those of the compiled engine
    (or the interpreter, for queries the compiler rejects) — parallelism only
    changes *who* runs the pipeline tail, never its semantics.
    """

    name = "parallel"

    def __init__(
        self,
        processes: Optional[int] = None,
        min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS,
        plan_cache_size: int = 256,
    ):
        #: None = resolve from REPRO_PARALLEL_PROCESSES / os.cpu_count().
        self.processes = processes
        self.min_partition_rows = min_partition_rows
        self._compiled = CompiledExecutor(plan_cache_size)
        self._pool_handle: Optional[_PoolHandle] = None
        #: Conjunctive evaluations that ran the forked fan-out.
        self.parallel_runs = 0
        #: Conjunctive evaluations that ran serially, by reason.
        self.fallback_reasons: Counter = Counter()
        #: Total partitions shipped to workers.
        self.partitions_executed = 0
        #: Worker wall seconds of the most recent parallel run.
        self.last_partition_seconds: List[float] = []
        #: Queries that fell back to the backtracking interpreter.
        self.interpreter_fallbacks = 0
        # Per-partition timings not yet drained into an observability sink
        # (see drain_partition_timings); bounded so an unobserved executor
        # never grows without limit.
        self._pending_timings: List[float] = []
        _LIVE_EXECUTORS.add(self)

    # -- evaluation -------------------------------------------------------------
    def evaluate(
        self,
        query: "ConjunctiveQuery | UnionQuery",
        database: Database,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> FrozenSet[Row]:
        stats = statistics if statistics is not None else EvaluationStatistics()
        if isinstance(query, UnionQuery):
            answers: set = set()
            for disjunct in query.disjuncts:
                answers |= self.evaluate(disjunct, database, stats)
            return frozenset(answers)
        pushed = pushdown_single_atom(query, database)
        if pushed is not None:
            self._compiled.pushdowns += 1
            return pushed
        plan = self._compiled.plan_for(query, database)
        if plan is None:
            self.fallback_reasons["not_compilable"] += 1
            self.interpreter_fallbacks += 1
            return evaluate_conjunctive_interpreted(query, database, stats)
        reason = self._parallel_blocker(plan, database)
        if reason is not None:
            self.fallback_reasons[reason] += 1
            return plan.execute(database, stats)
        return self._evaluate_partitioned(query, plan, database, stats)

    def _parallel_blocker(
        self, plan: PhysicalPlan, database: Database
    ) -> Optional[str]:
        """The reason this plan must run serially, or None to parallelize."""
        if plan.always_empty:
            return "always_empty"
        if plan.unbound_head_terms:
            return "unbound_head"
        if len(plan.steps) < 2:
            return "single_step_plan"
        if multiprocessing.current_process().daemon:
            return "daemonic_process"
        if "fork" not in multiprocessing.get_all_start_methods():
            return "fork_unavailable"
        if self._resolved_processes() < 2:
            return "single_process"
        first = plan.steps[0]
        relation = database.relation(first.predicate)
        if relation is None or len(relation) < self.min_partition_rows:
            return "below_threshold"
        slot = self._partition_slot(plan)
        if slot is not None and slot < len(first.new_positions):
            if relation.skolem_count(first.new_positions[slot]) > 0:
                return "skolem_partition_column"
        return None

    def _resolved_processes(self) -> int:
        return self.processes if self.processes is not None else _default_processes()

    @staticmethod
    def _partition_slot(plan: PhysicalPlan) -> Optional[int]:
        """The row slot to hash-partition on: the second step's first bound key."""
        for is_slot, value in plan.steps[1].key_sources:
            if is_slot:
                return value
        return None

    def _evaluate_partitioned(
        self,
        query: ConjunctiveQuery,
        plan: PhysicalPlan,
        database: Database,
        stats: EvaluationStatistics,
    ) -> FrozenSet[Row]:
        stats.subgoals += len(plan.steps)
        rows = plan.steps[0].run(database, [()], stats)
        if not rows:
            return frozenset()
        if len(rows) < self.min_partition_rows:
            # The scan was more selective than the relation size suggested.
            self.fallback_reasons["below_threshold"] += 1
            return plan.project_rows(plan.run_steps(database, rows, stats, 1), stats)
        processes = self._resolved_processes()
        partitions = self._partition(rows, self._partition_slot(plan), processes)
        query_text = to_datalog(query.canonical())
        payloads = [(query_text, 1, chunk) for chunk in partitions if chunk]
        try:
            pool = self._pool_for(database, processes)
            results = pool.map(_run_partition, payloads)
        except EvaluationError:
            raise
        except Exception:
            # Pool infrastructure failure (dead worker, pickling limit):
            # recompute this query serially; answers stay correct.
            self._close_pool()
            self.fallback_reasons["worker_failure"] += 1
            return plan.project_rows(plan.run_steps(database, rows, stats, 1), stats)
        self.parallel_runs += 1
        self.partitions_executed += len(results)
        timings: List[float] = []
        answers: set = set()
        for part_answers, probes, extensions, answer_rows, seconds in results:
            answers |= part_answers
            stats.probes += probes
            stats.extensions += extensions
            stats.answers += answer_rows
            timings.append(seconds)
        self.last_partition_seconds = timings
        self._pending_timings.extend(timings)
        del self._pending_timings[:-1024]
        return frozenset(answers)

    @staticmethod
    def _partition(
        rows: List[Row], slot: Optional[int], processes: int
    ) -> List[List[Row]]:
        chunks: List[List[Row]] = [[] for _ in range(processes)]
        if slot is None:
            for index, row in enumerate(rows):
                chunks[index % processes].append(row)
        else:
            for row in rows:
                chunks[hash(row[slot]) % processes].append(row)
        return chunks

    # -- pool lifecycle ---------------------------------------------------------
    def _pool_for(self, database: Database, processes: int) -> Any:
        global _FORK_DB
        handle = self._pool_handle
        if handle is not None and handle.matches(database, processes):
            return handle.pool
        self._close_pool()
        context = multiprocessing.get_context("fork")
        _FORK_DB = database
        try:
            pool = context.Pool(processes)
        finally:
            _FORK_DB = None
        self._pool_handle = _PoolHandle(pool, database, processes)
        return pool

    def _close_pool(self) -> None:
        if self._pool_handle is not None:
            self._pool_handle.close()
            self._pool_handle = None

    def close(self) -> None:
        """Terminate the worker pool (a later evaluation forks a fresh one)."""
        self._close_pool()

    def clear(self) -> None:
        """Drop cached plans and terminate the worker pool."""
        self._compiled.clear()
        self._close_pool()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self._close_pool()
        except Exception:
            pass

    def plan_for(
        self, query: ConjunctiveQuery, database: Database
    ) -> Optional[PhysicalPlan]:
        """The compiled plan this executor would run (None = interpreter)."""
        return self._compiled.plan_for(query, database)

    # -- introspection ----------------------------------------------------------
    @property
    def plan_hits(self) -> int:
        return self._compiled.plan_hits

    @property
    def plan_misses(self) -> int:
        return self._compiled.plan_misses

    @property
    def fallbacks(self) -> int:
        """Interpreter fallbacks (queries the compiler rejected)."""
        return self.interpreter_fallbacks

    @property
    def serial_runs(self) -> int:
        return sum(self.fallback_reasons.values())

    def drain_partition_timings(self) -> List[float]:
        """Per-partition worker seconds accumulated since the last drain.

        The service layer feeds these into the ``execute_partition`` stage
        histogram (:meth:`repro.obs.Instrumentation.observe_stage`).
        """
        timings = self._pending_timings
        self._pending_timings = []
        return timings

    def stats(self) -> Dict[str, Any]:
        compiled = self._compiled.stats()
        return {
            "executor": self.name,
            "processes": self._resolved_processes(),
            "min_partition_rows": self.min_partition_rows,
            "parallel_runs": self.parallel_runs,
            "serial_runs": self.serial_runs,
            "fallback_reasons": dict(self.fallback_reasons),
            "partitions_executed": self.partitions_executed,
            "last_partition_seconds": list(self.last_partition_seconds),
            "pool_alive": self._pool_handle is not None,
            "plans_cached": compiled["plans_cached"],
            "plan_cache_size": compiled["plan_cache_size"],
            "plan_hits": compiled["plan_hits"],
            "plan_misses": compiled["plan_misses"],
            "fallbacks": self.interpreter_fallbacks,
        }

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(processes={self._resolved_processes()}, "
            f"parallel_runs={self.parallel_runs}, serial_runs={self.serial_runs})"
        )
