"""The compiled executor: plan caching, union evaluation, interpreter fallback.

:class:`CompiledExecutor` is the object :func:`repro.engine.evaluate.evaluate`
delegates to by default.  It keeps a bounded LRU of compiled plans keyed by
``(canonical query, database identity, database version)``:

* the *canonical query* (:meth:`ConjunctiveQuery.canonical`) makes plans
  shareable across queries that differ only in variable names and subgoal
  order — exactly the sharing the service layer's fingerprint caches exploit;
* the *database version* retires a plan when the data changes, because the
  cost-based join order was chosen against the old statistics (a stale plan
  would still be correct, but could be slow);
* database identity is held weakly and revalidated, so an ``id()`` reuse
  after garbage collection can never resurrect another database's plan.

Union queries are evaluated disjunct by disjunct through the same cache; the
hash-join build sides live on the relations themselves (see
:mod:`repro.exec.plan`), so the many disjuncts of a maximally-contained
rewriting probing the same views share one set of build tables.

Queries the compiler rejects (function terms — see
:func:`repro.exec.compile.is_compilable`) fall back to the backtracking
interpreter, preserving its semantics bit for bit.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Any, Dict, FrozenSet, Optional, Tuple

from repro.errors import StorageError
from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.datalog.terms import Constant, Variable
from repro.engine.database import Database
from repro.engine.evaluate import (
    EvaluationStatistics,
    evaluate_conjunctive_interpreted,
)
from repro.exec.compile import try_compile
from repro.exec.plan import PhysicalPlan
from repro.exec.stats import statistics_for


def pushdown_single_atom(
    query: ConjunctiveQuery, database: Database
) -> Optional[FrozenSet[Tuple[Any, ...]]]:
    """Answer a single-atom query straight from a storage backend, or None.

    The fast path for point/selection queries over a
    :class:`~repro.storage.backed.BackedDatabase`: when the query is one
    atom with only constants and variables (no comparisons), its constant
    positions become backend-side equality filters (a SQL ``WHERE`` on the
    sqlite backend) and the head projection is applied here — the relation
    is never hydrated.  Returns None whenever the database has no
    ``storage_scan`` hook, the hook declines (hot relation, no pushdown
    capability), the query shape does not fit, or the backend errors
    (falling back to the normal in-memory path is always sound).
    """
    scan = getattr(database, "storage_scan", None)
    if scan is None or query.comparisons or len(query.body) != 1:
        return None
    atom = query.body[0]
    bindings: Dict[int, Any] = {}
    var_positions: Dict[str, int] = {}
    repeated = []  # (first, later) position pairs bound to one variable
    for position, term in enumerate(atom.args):
        if isinstance(term, Constant):
            bindings[position] = term.value
        elif isinstance(term, Variable):
            first = var_positions.setdefault(term.name, position)
            if first != position:
                repeated.append((first, position))
        else:
            return None  # function terms etc.: not this fast path
    projection = []  # (is_position, position_or_constant) per head slot
    for term in query.head.args:
        if isinstance(term, Constant):
            projection.append((False, term.value))
        elif isinstance(term, Variable) and term.name in var_positions:
            projection.append((True, var_positions[term.name]))
        else:
            return None  # unbound head variable: let the normal path decide
    try:
        rows = scan(atom.predicate, bindings or None)
        if rows is None:
            return None
        answers = set()
        for row in rows:
            if any(row[first] != row[later] for first, later in repeated):
                continue
            answers.add(
                tuple(row[value] if is_pos else value for is_pos, value in projection)
            )
    except StorageError:
        return None
    return frozenset(answers)


class CompiledExecutor:
    """Set-at-a-time evaluation with a bounded, version-validated plan cache."""

    name = "compiled"

    def __init__(self, plan_cache_size: int = 256):
        self.plan_cache_size = plan_cache_size
        self._plans: "OrderedDict[Tuple[Any, int, int], Tuple[Any, Optional[PhysicalPlan]]]" = (
            OrderedDict()
        )
        self.plan_hits = 0
        self.plan_misses = 0
        #: Evaluations that took the interpreter fallback (function terms).
        self.fallbacks = 0
        #: Single-atom evaluations served by a storage backend scan.
        self.pushdowns = 0

    # -- evaluation -------------------------------------------------------------
    def evaluate(
        self,
        query: "ConjunctiveQuery | UnionQuery",
        database: Database,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> FrozenSet[Tuple[Any, ...]]:
        """Evaluate a query set-at-a-time; falls back per-disjunct if needed."""
        stats = statistics if statistics is not None else EvaluationStatistics()
        if isinstance(query, UnionQuery):
            answers: set = set()
            for disjunct in query.disjuncts:
                answers |= self.evaluate(disjunct, database, stats)
            return frozenset(answers)
        pushed = pushdown_single_atom(query, database)
        if pushed is not None:
            self.pushdowns += 1
            return pushed
        plan = self.plan_for(query, database)
        if plan is None:
            self.fallbacks += 1
            return evaluate_conjunctive_interpreted(query, database, stats)
        return plan.execute(database, stats)

    # -- plan cache -------------------------------------------------------------
    def plan_for(
        self, query: ConjunctiveQuery, database: Database
    ) -> Optional[PhysicalPlan]:
        """The cached (or freshly compiled) plan for a query over a database.

        Returns None for queries the compiler does not support; the negative
        result is cached too, so unsupported hot queries pay the admission
        check only once per database version.
        """
        if self.plan_cache_size <= 0:
            return try_compile(query, database)
        canonical = query.canonical()
        key = (canonical, id(database), database.version)
        entry = self._plans.get(key)
        if entry is not None:
            ref, plan = entry
            if ref() is database:
                self.plan_hits += 1
                self._plans.move_to_end(key)
                return plan
            del self._plans[key]
        self.plan_misses += 1
        # Compile from the canonical variant: its answer set is identical
        # (variables are renamed bijectively), and the plan then serves every
        # isomorphic-with-matching-canonical-form query.
        plan = try_compile(canonical, database)
        self._plans[key] = (weakref.ref(database), plan)
        while len(self._plans) > self.plan_cache_size:
            self._plans.popitem(last=False)
        return plan

    def clear(self) -> None:
        """Drop every cached plan."""
        self._plans.clear()

    # -- introspection ----------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "executor": self.name,
            "plans_cached": len(self._plans),
            "plan_cache_size": self.plan_cache_size,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "fallbacks": self.fallbacks,
            "pushdowns": self.pushdowns,
        }

    def __repr__(self) -> str:
        return (
            f"CompiledExecutor(plans={len(self._plans)}, hits={self.plan_hits}, "
            f"misses={self.plan_misses}, fallbacks={self.fallbacks})"
        )


class InterpretedExecutor:
    """The backtracking interpreter behind the same executor interface.

    Exists so front ends can treat ``--executor interpreted`` uniformly; it
    has no plan cache and no statistics beyond the evaluation counters.
    """

    name = "interpreted"

    def evaluate(
        self,
        query: "ConjunctiveQuery | UnionQuery",
        database: Database,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> FrozenSet[Tuple[Any, ...]]:
        stats = statistics if statistics is not None else EvaluationStatistics()
        if isinstance(query, UnionQuery):
            answers: set = set()
            for disjunct in query.disjuncts:
                answers |= self.evaluate(disjunct, database, stats)
            return frozenset(answers)
        return evaluate_conjunctive_interpreted(query, database, stats)

    def stats(self) -> Dict[str, Any]:
        return {"executor": self.name}

    def __repr__(self) -> str:
        return "InterpretedExecutor()"
