"""repro.exec — the compiled, set-at-a-time physical execution engine.

This package turns a :class:`~repro.datalog.queries.ConjunctiveQuery` (or
union) into a physical plan — an indexed scan feeding a pipeline of hash
joins, comparison filters and a deduplicating projection — that operates on
whole relations at a time instead of one binding at a time:

* :mod:`repro.exec.stats` — per-relation/per-position statistics
  (cardinality, distinct counts, selectivity estimates) behind a
  version-validated snapshot cache;
* :mod:`repro.exec.compile` — admission, cost-based join ordering, and
  operator construction;
* :mod:`repro.exec.plan` — the physical operators and their executable form;
* :mod:`repro.exec.executor` — :class:`CompiledExecutor` (plan caching keyed
  by canonical query and database version, union evaluation with shared
  build sides, interpreter fallback) and :class:`InterpretedExecutor`.

:func:`repro.engine.evaluate.evaluate` routes through the **default
executor**, which is the compiled engine unless a caller opts out; flip it
globally with :func:`set_default_executor` (the CLI's ``--executor`` flag) or
per call via ``evaluate(..., executor=...)``.

>>> from repro.datalog.parser import parse_query
>>> from repro.engine.database import Database
>>> from repro.exec import CompiledExecutor
>>> db = Database.from_dict({"r": [(1, 2), (2, 3)], "s": [(2, "a"), (3, "b")]})
>>> executor = CompiledExecutor()
>>> sorted(executor.evaluate(parse_query("q(X, Z) :- r(X, Y), s(Y, Z)."), db))
[(1, 'a'), (2, 'b')]
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import EvaluationError
from repro.exec.compile import is_compilable, order_body, try_compile
from repro.exec.executor import CompiledExecutor, InterpretedExecutor
from repro.exec.plan import HashJoinStep, PhysicalPlan
from repro.exec.stats import DatabaseStatistics, statistics_for

#: The executor names accepted everywhere an executor can be chosen.
EXECUTORS = ("compiled", "interpreted")

ExecutorLike = Union[str, CompiledExecutor, InterpretedExecutor, None]

_SHARED_COMPILED = CompiledExecutor()
_SHARED_INTERPRETED = InterpretedExecutor()
_DEFAULT = "compiled"


def set_default_executor(executor: ExecutorLike) -> None:
    """Set the executor :func:`repro.engine.evaluate.evaluate` uses by default.

    Accepts ``"compiled"``, ``"interpreted"``, or an executor instance.
    """
    global _DEFAULT
    _DEFAULT = _validate(executor if executor is not None else "compiled")


def get_default_executor() -> "CompiledExecutor | InterpretedExecutor":
    """The currently configured default executor instance."""
    return resolve_executor(None)


def resolve_executor(executor: ExecutorLike) -> "CompiledExecutor | InterpretedExecutor":
    """Resolve a name / instance / None (= the configured default)."""
    if executor is None:
        executor = _DEFAULT
    executor = _validate(executor)
    if executor == "compiled":
        return _SHARED_COMPILED
    if executor == "interpreted":
        return _SHARED_INTERPRETED
    return executor


def _validate(executor: ExecutorLike):
    if isinstance(executor, str):
        if executor not in EXECUTORS:
            raise EvaluationError(
                f"unknown executor {executor!r}; expected one of {', '.join(EXECUTORS)}"
            )
        return executor
    if hasattr(executor, "evaluate"):
        return executor
    raise EvaluationError(f"not an executor: {executor!r}")


__all__ = [
    "EXECUTORS",
    "CompiledExecutor",
    "InterpretedExecutor",
    "DatabaseStatistics",
    "HashJoinStep",
    "PhysicalPlan",
    "get_default_executor",
    "is_compilable",
    "order_body",
    "resolve_executor",
    "set_default_executor",
    "statistics_for",
    "try_compile",
]
