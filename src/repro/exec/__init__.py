"""repro.exec — the compiled, set-at-a-time physical execution engine.

This package turns a :class:`~repro.datalog.queries.ConjunctiveQuery` (or
union) into a physical plan — an indexed scan feeding a pipeline of hash
joins, comparison filters and a deduplicating projection — that operates on
whole relations at a time instead of one binding at a time:

* :mod:`repro.exec.stats` — per-relation/per-position statistics
  (cardinality, distinct counts, selectivity estimates) behind a
  version-validated snapshot cache;
* :mod:`repro.exec.compile` — admission, cost-based join ordering, and
  operator construction;
* :mod:`repro.exec.plan` — the physical operators and their executable form;
* :mod:`repro.exec.executor` — :class:`CompiledExecutor` (plan caching keyed
  by canonical query and database version, union evaluation with shared
  build sides, interpreter fallback) and :class:`InterpretedExecutor`;
* :mod:`repro.exec.parallel` — :class:`ParallelExecutor`, which
  hash-partitions the compiled pipeline's scan output and fans the probe
  tail across a pool of forked workers (serial fallback below a cardinality
  threshold, for Skolem-bearing partition columns, and wherever forking is
  unavailable).

:func:`repro.engine.evaluate.evaluate` routes through the **default
executor**, which is the compiled engine unless a caller opts out; flip it
globally with :func:`set_default_executor` (the CLI's ``--executor`` flag),
per process with the ``REPRO_DEFAULT_EXECUTOR`` environment variable (read
once at import; CI uses it to run the whole suite under the parallel
executor), or per call via ``evaluate(..., executor=...)``.

>>> from repro.datalog.parser import parse_query
>>> from repro.engine.database import Database
>>> from repro.exec import CompiledExecutor
>>> db = Database.from_dict({"r": [(1, 2), (2, 3)], "s": [(2, "a"), (3, "b")]})
>>> executor = CompiledExecutor()
>>> sorted(executor.evaluate(parse_query("q(X, Z) :- r(X, Y), s(Y, Z)."), db))
[(1, 'a'), (2, 'b')]
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.errors import EvaluationError
from repro.exec.compile import is_compilable, order_body, try_compile
from repro.exec.executor import CompiledExecutor, InterpretedExecutor
from repro.exec.parallel import ParallelExecutor
from repro.exec.plan import HashJoinStep, PhysicalPlan
from repro.exec.stats import DatabaseStatistics, statistics_for

#: The executor names accepted everywhere an executor can be chosen.
EXECUTORS = ("compiled", "interpreted", "parallel")

#: Environment variable naming the process-wide default executor.
DEFAULT_EXECUTOR_ENV = "REPRO_DEFAULT_EXECUTOR"

ExecutorLike = Union[
    str, CompiledExecutor, InterpretedExecutor, ParallelExecutor, None
]

_SHARED_COMPILED = CompiledExecutor()
_SHARED_INTERPRETED = InterpretedExecutor()
_SHARED_PARALLEL = ParallelExecutor()


def _configured_default() -> str:
    """The baseline default: the env override when valid, else compiled."""
    env = os.environ.get(DEFAULT_EXECUTOR_ENV, "").strip().lower()
    return env if env in EXECUTORS else "compiled"


_DEFAULT: "str | CompiledExecutor | InterpretedExecutor | ParallelExecutor" = (
    _configured_default()
)


def set_default_executor(executor: ExecutorLike) -> None:
    """Set the executor :func:`repro.engine.evaluate.evaluate` uses by default.

    Accepts ``"compiled"``, ``"interpreted"``, ``"parallel"``, or an executor
    instance.  ``None`` resets to the configured default (the
    ``REPRO_DEFAULT_EXECUTOR`` environment override when set and valid,
    otherwise ``"compiled"``).
    """
    global _DEFAULT
    _DEFAULT = _validate(executor if executor is not None else _configured_default())


def get_default_executor() -> "CompiledExecutor | InterpretedExecutor | ParallelExecutor":
    """The currently configured default executor instance."""
    return resolve_executor(None)


def default_executor_name() -> str:
    """The name of the currently configured default executor."""
    default = _DEFAULT
    return default if isinstance(default, str) else default.name


def make_executor(
    name: str,
) -> "CompiledExecutor | InterpretedExecutor | ParallelExecutor":
    """A fresh (unshared) executor instance for a validated name.

    Session-style owners use this so their plan caches (and, for the
    parallel engine, worker pools) are private rather than process-shared.
    """
    _validate(name)
    if name == "compiled":
        return CompiledExecutor()
    if name == "interpreted":
        return InterpretedExecutor()
    return ParallelExecutor()


def resolve_executor(
    executor: ExecutorLike,
) -> "CompiledExecutor | InterpretedExecutor | ParallelExecutor":
    """Resolve a name / instance / None (= the configured default)."""
    if executor is None:
        executor = _DEFAULT
    executor = _validate(executor)
    if executor == "compiled":
        return _SHARED_COMPILED
    if executor == "interpreted":
        return _SHARED_INTERPRETED
    if executor == "parallel":
        return _SHARED_PARALLEL
    return executor


def _validate(executor: ExecutorLike):
    if isinstance(executor, str):
        if executor not in EXECUTORS:
            raise EvaluationError(
                f"unknown executor {executor!r}; expected one of {', '.join(EXECUTORS)}"
            )
        return executor
    if hasattr(executor, "evaluate"):
        return executor
    raise EvaluationError(f"not an executor: {executor!r}")


__all__ = [
    "DEFAULT_EXECUTOR_ENV",
    "EXECUTORS",
    "CompiledExecutor",
    "InterpretedExecutor",
    "ParallelExecutor",
    "DatabaseStatistics",
    "HashJoinStep",
    "PhysicalPlan",
    "default_executor_name",
    "get_default_executor",
    "is_compilable",
    "make_executor",
    "order_body",
    "resolve_executor",
    "set_default_executor",
    "statistics_for",
    "try_compile",
]
