"""Physical plans: set-at-a-time pipelines over whole relations.

A :class:`PhysicalPlan` is a straight-line pipeline compiled from one
conjunctive query (see :mod:`repro.exec.compile`):

``seed row () → HashJoinStep* → projection/dedup``

Each :class:`HashJoinStep` extends every in-flight row with the matching
tuples of one relation, probing the relation's incrementally-maintained hash
index (:meth:`repro.engine.relation.Relation.index_on`) on the step's key
positions.  Constants and already-bound join variables both contribute to the
index key, so the first step degenerates to an (indexed) scan and later steps
are hash joins whose *build side is the relation index itself* — built once,
maintained across deltas, and shared by every plan (and every disjunct of a
union rewriting) that joins on the same positions.

Relations store their data columnar (per-position arrays addressed by slot;
see :mod:`repro.engine.relation`), and index buckets map row tuples to slots.
Probe and scan therefore read **column slices**: a step fetches only the
columns carrying its newly-bound variables (plus any within-atom equality
columns) and extends rows via slot lookups into those arrays — matched rows
are never materialized as whole tuples on the probe path.

Rows are plain tuples; the compiler assigns every query variable a fixed slot
(column) at compile time, so the per-row work in the inner loop is tuple
indexing and concatenation — no per-binding dictionaries, no term matching,
no recursion.  Comparison subgoals are compiled to closures and applied at
the earliest step where both sides are bound.

Plans mirror the interpreter's observable semantics exactly: same answer
sets, same :class:`~repro.engine.evaluate.EvaluationStatistics` counters
(probes = candidate tuples fetched, extensions = rows surviving a step,
answers = satisfying assignments before deduplication), and the same
:class:`~repro.errors.EvaluationError` behaviors (arity mismatches always
raise; an unbound head variable raises only when at least one assignment
reaches projection).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.datalog.atoms import ComparisonOperator
from repro.engine.database import Database
from repro.engine.evaluate import EvaluationStatistics
from repro.engine.relation import SkolemValue

#: A value source in a compiled row: ``(True, slot_index)`` reads the current
#: row, ``(False, constant_value)`` is a literal.
Source = Tuple[bool, Any]

Row = Tuple[Any, ...]
RowFilter = Callable[[Row], bool]

_ORDER_OPS = frozenset(("<", "<=", ">", ">="))


def compare_values(op: ComparisonOperator, left: Any, right: Any) -> bool:
    """Comparison semantics shared with the interpreter.

    Skolem values (unknown witnesses) are only comparable by (dis)equality;
    an order comparison involving one is never satisfied.
    """
    if isinstance(left, SkolemValue) or isinstance(right, SkolemValue):
        if op.value in _ORDER_OPS:
            return False
    return op.evaluate(left, right)


def make_comparison_filter(
    op: ComparisonOperator, left: Source, right: Source
) -> RowFilter:
    """Compile one comparison subgoal into a row predicate."""
    left_is_slot, left_value = left
    right_is_slot, right_value = right
    if left_is_slot and right_is_slot:
        return lambda row: compare_values(op, row[left_value], row[right_value])
    if left_is_slot:
        return lambda row: compare_values(op, row[left_value], right_value)
    if right_is_slot:
        return lambda row: compare_values(op, left_value, row[right_value])
    verdict = compare_values(op, left_value, right_value)
    return lambda row: verdict


class HashJoinStep:
    """Extend every in-flight row with the matching tuples of one relation.

    The step probes ``relation.index_on(key_positions)`` with a key assembled
    from constants and bound row slots (``key_sources``, aligned with
    ``key_positions``).  With no key positions the step is a scan (first
    step) or a cartesian product (disconnected subgoal).  ``eq_pairs`` are
    within-atom equality checks between positions carrying the same new
    variable; ``new_positions`` are appended to the row, one per newly-bound
    variable in first-occurrence order.
    """

    __slots__ = (
        "predicate",
        "arity",
        "key_positions",
        "key_sources",
        "eq_pairs",
        "new_positions",
        "filters",
    )

    def __init__(
        self,
        predicate: str,
        arity: int,
        key_positions: Tuple[int, ...],
        key_sources: Tuple[Source, ...],
        eq_pairs: Tuple[Tuple[int, int], ...],
        new_positions: Tuple[int, ...],
        filters: Tuple[RowFilter, ...],
    ):
        self.predicate = predicate
        self.arity = arity
        self.key_positions = key_positions
        self.key_sources = key_sources
        self.eq_pairs = eq_pairs
        self.new_positions = new_positions
        self.filters = filters

    def run(
        self, database: Database, rows: List[Row], stats: EvaluationStatistics
    ) -> List[Row]:
        relation = database.relation(self.predicate)
        if relation is None or len(relation) == 0:
            return []
        if relation.arity != self.arity:
            raise EvaluationError(
                f"subgoal {self.predicate} has arity {self.arity} but relation "
                f"{relation.name} has arity {relation.arity}"
            )
        eq_pairs = self.eq_pairs
        new_positions = self.new_positions
        filters = self.filters
        simple = not eq_pairs and not filters
        out: List[Row] = []
        append = out.append
        probes = 0
        # Column slices: only the arrays this step actually reads.  Matched
        # rows are addressed by slot (bucket values / live slots); their full
        # tuples are never rebuilt on the probe path.
        columns = relation.columns()
        new_columns = tuple(columns[p] for p in new_positions)

        if self.key_positions:
            get = relation.index_on(self.key_positions).get
            sources = self.key_sources
            # Fast path: single bound-slot key, nothing to re-check per match
            # (the common chain/star join): pure index probe + column read.
            if simple and len(sources) == 1 and sources[0][0]:
                slot = sources[0][1]
                if len(new_columns) == 1:
                    column = new_columns[0]
                    for row in rows:
                        bucket = get((row[slot],))
                        if bucket:
                            probes += len(bucket)
                            for match_slot in bucket.values():
                                append(row + (column[match_slot],))
                else:
                    for row in rows:
                        bucket = get((row[slot],))
                        if bucket:
                            probes += len(bucket)
                            for match_slot in bucket.values():
                                append(row + tuple(c[match_slot] for c in new_columns))
            else:
                for row in rows:
                    key = tuple(row[v] if is_slot else v for is_slot, v in sources)
                    bucket = get(key)
                    if not bucket:
                        continue
                    probes += len(bucket)
                    for match_slot in bucket.values():
                        if eq_pairs and any(
                            columns[a][match_slot] != columns[b][match_slot]
                            for a, b in eq_pairs
                        ):
                            continue
                        new_row = row + tuple(c[match_slot] for c in new_columns)
                        if filters and not all(f(new_row) for f in filters):
                            continue
                        append(new_row)
        else:
            # Scan (first step) or cartesian product (disconnected subgoal).
            match_slots = list(relation.slots())
            for row in rows:
                probes += len(match_slots)
                for match_slot in match_slots:
                    if eq_pairs and any(
                        columns[a][match_slot] != columns[b][match_slot]
                        for a, b in eq_pairs
                    ):
                        continue
                    new_row = row + tuple(c[match_slot] for c in new_columns)
                    if filters and not all(f(new_row) for f in filters):
                        continue
                    append(new_row)
        stats.probes += probes
        stats.extensions += len(out)
        return out


class PhysicalPlan:
    """A compiled pipeline for one conjunctive query."""

    __slots__ = (
        "query_name",
        "steps",
        "projection",
        "unbound_head_terms",
        "always_empty",
        "slot_count",
    )

    def __init__(
        self,
        query_name: str,
        steps: Sequence[HashJoinStep],
        projection: Tuple[Source, ...],
        unbound_head_terms: Tuple[str, ...] = (),
        always_empty: bool = False,
        slot_count: int = 0,
    ):
        self.query_name = query_name
        self.steps = tuple(steps)
        self.projection = projection
        #: Head terms not bound by the body; evaluation raises if any
        #: assignment reaches projection (mirroring the interpreter).
        self.unbound_head_terms = unbound_head_terms
        #: True when a ground comparison is false: the plan returns no rows.
        self.always_empty = always_empty
        self.slot_count = slot_count

    def execute(
        self, database: Database, statistics: Optional[EvaluationStatistics] = None
    ) -> FrozenSet[Row]:
        stats = statistics if statistics is not None else EvaluationStatistics()
        stats.subgoals += len(self.steps)
        if self.always_empty:
            return frozenset()
        rows = self.run_steps(database, [()], stats)
        return self.project_rows(rows, stats)

    def run_steps(
        self,
        database: Database,
        rows: List[Row],
        stats: EvaluationStatistics,
        start: int = 0,
    ) -> List[Row]:
        """Run the pipeline steps from ``start`` over a seed row list.

        The parallel executor uses ``start`` to replay only the tail of the
        pipeline inside a worker, over one partition of the first step's
        output.  Returns the surviving rows (possibly empty).
        """
        for step in self.steps[start:]:
            rows = step.run(database, rows, stats)
            if not rows:
                return []
        return rows

    def project_rows(
        self, rows: List[Row], stats: EvaluationStatistics
    ) -> FrozenSet[Row]:
        """Project and deduplicate surviving rows into the answer set.

        Mirrors the interpreter's semantics: an unbound head variable raises
        only when at least one assignment reaches projection (an empty row
        list short-circuits to the empty answer set first — except for the
        body-less ground-head query, whose seed row always survives).
        """
        if not rows:
            return frozenset()
        if self.unbound_head_terms:
            raise EvaluationError(
                f"head term {self.unbound_head_terms[0]} of query "
                f"{self.query_name} is not bound by the body"
            )
        stats.answers += len(rows)
        projection = self.projection
        if not projection:
            return frozenset([()])
        if all(is_slot for is_slot, _value in projection):
            positions = tuple(value for _is_slot, value in projection)
            if len(positions) == 1:
                p = positions[0]
                return frozenset((row[p],) for row in rows)
            return frozenset(map(itemgetter(*positions), rows))
        return frozenset(
            tuple(row[v] if is_slot else v for is_slot, v in projection) for row in rows
        )

    def explain(self) -> str:
        """A human-readable rendering of the pipeline (for tests and debugging)."""
        lines = [f"plan for {self.query_name}:"]
        if self.always_empty:
            lines.append("  <always empty: a ground comparison is false>")
        for index, step in enumerate(self.steps):
            kind = "scan" if not step.key_positions else "hash-probe"
            key = ", ".join(
                f"{step.predicate}[{p}]={'slot ' + str(v) if is_slot else repr(v)}"
                for p, (is_slot, v) in zip(step.key_positions, step.key_sources)
            )
            extras = []
            if step.eq_pairs:
                extras.append(f"eq={list(step.eq_pairs)}")
            if step.filters:
                extras.append(f"filters={len(step.filters)}")
            suffix = (" " + " ".join(extras)) if extras else ""
            lines.append(
                f"  {index}: {kind} {step.predicate}/{step.arity}"
                + (f" on {key}" if key else "")
                + suffix
            )
        lines.append(f"  project -> {len(self.projection)} columns")
        return "\n".join(lines)
