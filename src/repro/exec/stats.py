"""Per-relation / per-position statistics feeding the plan compiler and cost model.

The compiled executor (:mod:`repro.exec`) orders joins by estimated output
cardinality, which needs two numbers per relation: its **cardinality** (tuple
count) and, per argument position, the **distinct-value count**.  Both are
exposed through :class:`DatabaseStatistics`, a lazy, version-validated
snapshot over one :class:`~repro.engine.database.Database`:

* cardinalities are read straight off the live relations (always fresh);
* distinct counts are computed on first use per ``(relation, position)`` and
  cached until the database's version counter moves;
* :meth:`DatabaseStatistics.selectivity` turns them into the textbook
  ``1/max(distinct)`` equality-selectivity estimate that both the plan
  compiler and :func:`repro.engine.cost.estimate_cost` consume.

Snapshots are shared through :func:`statistics_for`, keyed by database
identity and revalidated against the version counter, so repeated plan
compilations over a stable database never rescan a column.

>>> from repro.engine.database import Database
>>> db = Database.from_dict({"r": [(1, 2), (1, 3), (2, 3)]})
>>> stats = statistics_for(db)
>>> stats.cardinality("r"), stats.distinct("r", 0), stats.distinct("r", 1)
(3, 2, 2)
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, Optional, Tuple

from repro.engine.database import Database


class DatabaseStatistics:
    """A lazy statistics snapshot over one database, valid for one version."""

    __slots__ = ("_database", "version", "_distinct", "__weakref__")

    def __init__(self, database: Database):
        self._database = database
        #: The database version this snapshot's cached counts describe.
        self.version = database.version
        self._distinct: Dict[Tuple[str, int], int] = {}

    @property
    def fresh(self) -> bool:
        """Whether the snapshot still describes the database's current contents."""
        return self.version == self._database.version

    def cardinality(self, relation_name: str) -> int:
        """Tuple count of a relation (0 for unknown relations)."""
        relation = self._database.relation(relation_name)
        return len(relation) if relation is not None else 0

    def distinct(self, relation_name: str, position: int) -> int:
        """Distinct values in one column (at least 1, so it can divide).

        Computed on first use and cached for the snapshot's lifetime.
        """
        key = (relation_name, position)
        cached = self._distinct.get(key)
        if cached is not None:
            return cached
        relation = self._database.relation(relation_name)
        if relation is None or len(relation) == 0 or position >= relation.arity:
            count = 1
        else:
            count = max(1, len(relation.column_values(position)))
        self._distinct[key] = count
        return count

    def selectivity(self, relation_name: str, position: int) -> float:
        """Estimated fraction of tuples matching an equality on one column."""
        return 1.0 / self.distinct(relation_name, position)

    def estimated_rows(
        self, relation_name: str, restricted_positions: Tuple[int, ...]
    ) -> float:
        """Expected tuples of a relation after equality restrictions.

        ``restricted_positions`` are the argument positions bound by a
        constant or an already-bound join variable; each divides the
        cardinality by its distinct count (independence assumption).
        """
        rows = float(self.cardinality(relation_name))
        for position in restricted_positions:
            rows *= self.selectivity(relation_name, position)
        return rows


# -- shared snapshots --------------------------------------------------------
#
# One snapshot per live database, keyed by identity and revalidated by the
# version counter.  Entries hold a weak reference so statistics never keep a
# database alive, and identity reuse after garbage collection is detected by
# comparing the dereferenced object.

_SNAPSHOTS: Dict[int, Tuple["weakref.ref[Database]", DatabaseStatistics]] = {}
_MAX_SNAPSHOTS = 64


def statistics_for(database: Database) -> DatabaseStatistics:
    """The shared, version-validated statistics snapshot for ``database``."""
    key = id(database)
    entry = _SNAPSHOTS.get(key)
    if entry is not None:
        ref, stats = entry
        if ref() is database and stats.fresh:
            return stats
    stats = DatabaseStatistics(database)
    if len(_SNAPSHOTS) >= _MAX_SNAPSHOTS:
        # Drop dead or stale entries first; fall back to clearing outright.
        for stale_key in [k for k, (r, s) in _SNAPSHOTS.items() if r() is None or not s.fresh]:
            del _SNAPSHOTS[stale_key]
        if len(_SNAPSHOTS) >= _MAX_SNAPSHOTS:
            _SNAPSHOTS.clear()
    _SNAPSHOTS[key] = (weakref.ref(database), stats)
    return stats
