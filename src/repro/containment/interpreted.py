"""Containment of conjunctive queries with arithmetic comparison subgoals.

For queries with comparisons the simple homomorphism test is sound but not
complete: ``Q1 ⊑ Q2`` can hold even though no single containment mapping
works for every database, because different linear orders of ``Q1``'s
variables may call for different mappings.  The classical complete test
(Klug; van der Meyden) quantifies over the *total preorders* of the relevant
terms of ``Q1`` that are consistent with ``Q1``'s comparisons: for each such
preorder there must be a containment mapping from ``Q2`` to ``Q1`` whose
induced comparisons are implied by that preorder.

The number of total preorders grows like the ordered Bell numbers, so the test
is exponential in the number of *order-relevant* terms.  The implementation
keeps that set as small as possible (only terms that can interact with a
comparison on either side) and refuses inputs whose relevant-term set exceeds
``MAX_ORDERED_TERMS``; within that limit it is sound and complete over dense
domains.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import UnsupportedFeatureError
from repro.datalog.atoms import Atom, Comparison, ComparisonOperator
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.substitution import Substitution
from repro.datalog.terms import Constant, Term, Variable
from repro.containment.constraints import ComparisonSet
from repro.containment.homomorphism import containment_mappings

#: Hard cap on the number of terms whose orderings are enumerated.
MAX_ORDERED_TERMS = 8


def _ordered_partitions(items: Sequence[Term]) -> Iterator[List[List[Term]]]:
    """All ordered set partitions (total preorders) of ``items``.

    Each yielded value is a list of blocks; members of a block are considered
    equal, and blocks are strictly increasing left to right.
    """
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _ordered_partitions(rest):
        # Insert `first` into an existing block or as a new block at any position.
        for index in range(len(partition)):
            updated = [list(block) for block in partition]
            updated[index].append(first)
            yield updated
        for index in range(len(partition) + 1):
            updated = [list(block) for block in partition]
            updated.insert(index, [first])
            yield updated


def _relevant_terms(query: ConjunctiveQuery, other: ConjunctiveQuery) -> List[Term]:
    """Terms of ``query`` whose relative order can matter for the containment test.

    These are: terms appearing in ``query``'s own comparisons, constants
    appearing in ``other``'s comparisons, and terms of ``query`` occurring in
    body positions onto which a comparison-constrained variable of ``other``
    could be mapped (same predicate, same argument position).
    """
    relevant: List[Term] = []

    def add(term: Term) -> None:
        if term not in relevant:
            relevant.append(term)

    for comparison in query.comparisons:
        add(comparison.left)
        add(comparison.right)
    for comparison in other.comparisons:
        for term in (comparison.left, comparison.right):
            if isinstance(term, Constant):
                add(term)
    constrained_vars: Set[Variable] = set()
    for comparison in other.comparisons:
        constrained_vars.update(comparison.variables())
    constrained_positions: Set[Tuple[str, int]] = set()
    for atom in other.body:
        for position, term in enumerate(atom.args):
            if isinstance(term, Variable) and term in constrained_vars:
                constrained_positions.add((atom.predicate, position))
    for atom in query.body:
        for position, term in enumerate(atom.args):
            if (atom.predicate, position) in constrained_positions:
                add(term)
    # Head terms of `query` can be images of `other`'s head terms, which may be
    # comparison-constrained as well.
    other_head_constrained = any(
        isinstance(t, Variable) and t in constrained_vars for t in other.head.args
    )
    if other_head_constrained:
        for term in query.head.args:
            add(term)
    return relevant


def _preorder_comparisons(partition: List[List[Term]]) -> List[Comparison]:
    """The comparisons describing one total preorder (block equalities + strict order)."""
    out: List[Comparison] = []
    for block in partition:
        anchor = block[0]
        for member in block[1:]:
            out.append(Comparison(anchor, ComparisonOperator.EQ, member))
    for left_block, right_block in zip(partition, partition[1:]):
        out.append(Comparison(left_block[0], ComparisonOperator.LT, right_block[0]))
    return out


def interpreted_contained(
    query: ConjunctiveQuery,
    container: ConjunctiveQuery,
    max_ordered_terms: int = MAX_ORDERED_TERMS,
) -> bool:
    """Whether ``query ⊑ container`` for conjunctive queries with comparisons.

    Raises :class:`UnsupportedFeatureError` when the set of order-relevant
    terms is too large to enumerate.
    """
    query_constraints = ComparisonSet(query.comparisons)
    if not query_constraints.is_satisfiable():
        return True  # the empty query is contained in everything

    relevant = _relevant_terms(query, container)
    if len(relevant) > max_ordered_terms:
        raise UnsupportedFeatureError(
            f"containment with comparisons over {len(relevant)} order-relevant terms "
            f"exceeds the enumeration limit of {max_ordered_terms}"
        )

    if not relevant:
        # No comparisons can interact: fall back to the pure-CQ test, but the
        # container's comparisons must be implied outright (there are none or
        # they are tautological over the query's constraints).
        for mapping in containment_mappings(container, query):
            induced = mapping.apply_comparisons(container.comparisons)
            if query_constraints.implies_all(induced):
                return True
        return False

    for partition in _ordered_partitions(relevant):
        ordering = _preorder_comparisons(partition)
        scenario = ComparisonSet(tuple(query.comparisons) + tuple(ordering))
        if not scenario.is_satisfiable():
            continue  # this ordering contradicts the query's own constraints
        collapsed = _collapse(query, partition)
        witnessed = False
        for mapping in containment_mappings(container, collapsed):
            induced = mapping.apply_comparisons(container.comparisons)
            if scenario.implies_all(induced):
                witnessed = True
                break
        if not witnessed:
            return False
    return True


def _collapse(query: ConjunctiveQuery, partition: List[List[Term]]) -> ConjunctiveQuery:
    """The query with terms identified by one ordering block merged.

    Each block of the partition describes terms that are equal in the
    scenario; merging them (preferring a constant representative) lets the
    containment-mapping search treat the scenario's canonical database
    faithfully — e.g. a container constant can map onto a query variable that
    the scenario pins to that constant.
    """
    mapping = {}
    for block in partition:
        constants = [t for t in block if isinstance(t, Constant)]
        representative: Term = constants[0] if constants else block[0]
        for term in block:
            if isinstance(term, Variable) and term != representative:
                mapping[term] = representative
    if not mapping:
        return query
    return query.apply(Substitution(mapping), require_safe=False)
