"""Canonical-fingerprint-keyed memoization of containment verdicts.

Containment of conjunctive queries is invariant under renaming either side,
so a verdict computed once can be reused for every isomorphic pair.  The
:class:`ContainmentMemo` keys verdicts by the pair of canonical fingerprints
(:mod:`repro.service.fingerprint` — equal texts imply isomorphic queries), so
``is_contained`` calls that recur across pruning passes, rewriting
verification, usability checks and the MiniCon/bucket inner loops are
answered without any search.

Before fingerprinting — which is itself not free — a battery of *cheap
necessary conditions* runs on the raw pair.  For ``query ⊑ container`` to
hold (with ``query`` satisfiable), a containment mapping from ``container``
into ``query`` (possibly after collapsing terms, in the comparison case) must
exist, which requires:

* **head signature** — the two heads share predicate name and arity;
* **predicate containment** — every (predicate, arity) signature used in the
  container's body also occurs in the query's body (several container atoms
  may share one target, so *set* containment is the correct necessary
  condition — multiset containment would be unsound);
* **constant subset** (pure queries only) — every constant in the container's
  body occurs in the query's body; constants map to themselves, so a
  container constant with no occurrence in the query has no possible image.
  With comparisons this is *not* necessary (the ordering scenario can pin a
  query variable to a constant), so the guard is skipped there.

A pair failing a guard is rejected in O(body size) without fingerprinting,
memo lookup, or search.

The module-level default memo is shared process-wide (verdicts depend only on
the two queries, never on a database or view set, so sharing is sound).  The
E14 benchmark and the property tests disable it — and the guards — via
:func:`memo_disabled` to measure or test the raw search.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, Hashable, Iterator, Optional

from repro.datalog.queries import ConjunctiveQuery

#: Default bound of the verdict cache.
DEFAULT_MEMO_SIZE = 4096

#: Search-difficulty threshold below which the memo steps aside.  The
#: difficulty estimate is the product over the container's subgoals of the
#: number of same-signature query subgoals — a loose upper bound on the
#: backtracking tree.  When it is tiny (chains and stars over distinct
#: relations have product 1) the indexed search finishes faster than the
#: canonical fingerprint the memo would key the verdict by, so memoizing
#: would slow the cold path down; self-join-heavy shapes (everything over
#: one relation) blow past the threshold and get memoized.
DEFAULT_BYPASS_THRESHOLD = 64

#: Lazily resolved ``repro.service.fingerprint.fingerprint`` (the service
#: package imports the containment layer, so importing it here at module load
#: would be circular; by first call everything is initialised).
_fingerprint: Optional[Callable] = None


class BoundedCache:
    """A minimal bounded LRU mapping for layers below :mod:`repro.service`.

    The serving layer's :class:`repro.service.cache.LRUCache` cannot be
    imported here without a package cycle; this is the same idea stripped to
    what the memo needs (hit/miss counting lives in the memo itself).
    """

    __slots__ = ("maxsize", "_data")

    _MISSING = object()

    def __init__(self, maxsize: int):
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        value = self._data.get(key, self._MISSING)
        if value is self._MISSING:
            return default
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.maxsize <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


def _fingerprint_text(query: ConjunctiveQuery) -> str:
    """The query's canonical fingerprint text, computed once per query object.

    The text is cached directly on the (immutable) query in its
    ``_fingerprint_text`` slot, so the hot path — the same expansion object
    checked for soundness, completeness and subsumption — pays one attribute
    read instead of a mapping lookup (whose key equality would re-sort the
    query body every time).
    """
    try:
        return query._fingerprint_text
    except AttributeError:
        pass
    global _fingerprint
    if _fingerprint is None:
        from repro.service.fingerprint import fingerprint

        _fingerprint = fingerprint
    text = _fingerprint(query).text
    object.__setattr__(query, "_fingerprint_text", text)
    return text


def _guards_reject(query: ConjunctiveQuery, container: ConjunctiveQuery) -> bool:
    """Whether a cheap necessary condition already refutes ``query ⊑ container``.

    Sound for satisfiable ``query`` (the caller checks satisfiability first):
    each guard is necessary for a containment mapping from ``container`` into
    ``query`` — or, with comparisons, into some term-collapsed variant of
    ``query``, which preserves predicates and head signature but not body
    constants (hence the pure-only constant guard).
    """
    if query.head.predicate != container.head.predicate:
        return True
    if len(query.head.args) != len(container.head.args):
        return True
    if not container.predicates() <= query.predicates():
        return True
    if not query.comparisons and not container.comparisons:
        container_constants = {
            constant for atom in container.body for constant in atom.constants()
        }
        if container_constants:
            query_constants = {
                constant for atom in query.body for constant in atom.constants()
            }
            if not container_constants <= query_constants:
                return True
    return False


def _search_difficulty(
    query: ConjunctiveQuery, container: ConjunctiveQuery, cap: int
) -> int:
    """Upper bound on the containment-search branching, saturating at ``cap``."""
    signature_counts: Dict[Any, int] = {}
    for atom in query.body:
        signature = atom.signature
        signature_counts[signature] = signature_counts.get(signature, 0) + 1
    difficulty = 1
    for atom in container.body:
        difficulty *= signature_counts.get(atom.signature, 1)
        if difficulty > cap:
            return difficulty
    return difficulty


class ContainmentMemo:
    """A bounded, fingerprint-keyed cache of CQ-containment verdicts."""

    def __init__(
        self,
        maxsize: int = DEFAULT_MEMO_SIZE,
        bypass_threshold: int = DEFAULT_BYPASS_THRESHOLD,
    ):
        self._verdicts = BoundedCache(maxsize)
        # Identity-keyed first tier: queries and (cached) expansions are
        # shared objects, so a pair seen in the generation phase recurs as
        # the *same* pair of objects in the union-construction and
        # subsumption-pruning phases of one request.  An id-pair hit costs a
        # dict probe — no guards, no difficulty estimate, no fingerprints —
        # and covers bypassed pairs the fingerprint tier never stores.  The
        # stored tuple keeps both queries alive, so their ids cannot be
        # recycled while the entry exists.
        self._by_identity = BoundedCache(maxsize)
        self.enabled = True
        self.bypass_threshold = bypass_threshold
        self.hits = 0
        self.misses = 0
        self.guard_rejections = 0
        self.bypasses = 0

    def contained(
        self,
        query: ConjunctiveQuery,
        container: ConjunctiveQuery,
        compute: Callable[[ConjunctiveQuery, ConjunctiveQuery], bool],
    ) -> bool:
        """``query ⊑ container``, via guards and the memo, else ``compute``.

        ``compute`` runs the actual decision procedure; its result is stored
        under the fingerprint pair.  Pairs whose estimated search difficulty
        is below :attr:`bypass_threshold` (and that involve no comparisons,
        whose interpreted test is always expensive) are computed directly:
        for them the search is cheaper than canonicalizing the pair would be.
        Exceptions propagate uncached (the interpreted test can refuse
        oversized inputs).  When the memo is disabled, guards and the bypass
        estimate are skipped too and ``compute`` runs directly — the raw
        reference behaviour.
        """
        if not self.enabled:
            return compute(query, container)
        id_key = (id(query), id(container))
        entry = self._by_identity.get(id_key)
        if entry is not None and entry[0] is query and entry[1] is container:
            self.hits += 1
            return entry[2]
        if _guards_reject(query, container):
            self.guard_rejections += 1
            self._by_identity.put(id_key, (query, container, False))
            return False
        if (
            not query.comparisons
            and not container.comparisons
            and _search_difficulty(query, container, self.bypass_threshold)
            <= self.bypass_threshold
        ):
            self.bypasses += 1
            result = compute(query, container)
            self._by_identity.put(id_key, (query, container, result))
            return result
        key = (_fingerprint_text(query), _fingerprint_text(container))
        verdict = self._verdicts.get(key)
        if verdict is not None:
            self.hits += 1
            result = verdict is True
        else:
            self.misses += 1
            result = compute(query, container)
            self._verdicts.put(key, True if result else False)
        self._by_identity.put(id_key, (query, container, result))
        return result

    def clear(self) -> None:
        """Drop every cached verdict (counters are kept)."""
        self._verdicts.clear()
        self._by_identity.clear()

    def reset(self) -> None:
        """Clear the caches *and* zero the counters (used between benchmark runs)."""
        self.clear()
        self.hits = 0
        self.misses = 0
        self.guard_rejections = 0
        self.bypasses = 0

    def stats(self) -> Dict[str, Any]:
        """A machine-readable snapshot of memo health."""
        lookups = self.hits + self.misses
        return {
            "enabled": self.enabled,
            "hits": self.hits,
            "misses": self.misses,
            "guard_rejections": self.guard_rejections,
            "bypasses": self.bypasses,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
            "size": len(self._verdicts),
            "maxsize": self._verdicts.maxsize,
        }


#: The process-wide default memo consulted by ``repro.containment.is_contained``.
_GLOBAL_MEMO = ContainmentMemo()


def global_containment_memo() -> ContainmentMemo:
    """The shared memo behind :func:`repro.containment.is_contained`."""
    return _GLOBAL_MEMO


def containment_memo_stats() -> Dict[str, Any]:
    """Statistics of the shared containment memo (hits, misses, guards, size)."""
    return _GLOBAL_MEMO.stats()


@contextmanager
def memo_disabled() -> Iterator[None]:
    """Scope in which the shared memo (and its guards) is bypassed entirely."""
    previous = _GLOBAL_MEMO.enabled
    _GLOBAL_MEMO.enabled = False
    try:
        yield
    finally:
        _GLOBAL_MEMO.enabled = previous
