"""Reasoning about conjunctions of arithmetic comparison constraints.

:class:`ComparisonSet` normalizes a conjunction of comparisons over variables
and constants into:

* a union-find structure of terms forced equal,
* a directed graph of ``<`` / ``<=`` edges between equivalence classes, closed
  under transitivity (with strictness propagation), and
* a set of asserted disequalities.

On top of that normal form it answers two questions that the rewriting and
containment algorithms need constantly:

* :meth:`ComparisonSet.is_satisfiable` — is there any assignment of values to
  the variables satisfying every constraint?
* :meth:`ComparisonSet.implies` — does the conjunction logically imply a given
  comparison?

The implication test is sound and complete for ``=``, ``<``, ``<=``, ``>``,
``>=`` over a dense domain; for ``!=`` it is sound, and complete except for
corner cases that require reasoning over discrete domains (e.g. ``X > 1 and
X < 3`` implying ``X != 5`` over the integers is found, but ``X != 2`` is not,
because over the rationals it does not hold).  Comparisons in this library are
interpreted over a dense order, matching the paper's setting.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.datalog.atoms import Comparison, ComparisonOperator
from repro.datalog.terms import Constant, Term, Variable


def _comparable(left: object, right: object) -> bool:
    """Whether two constant values participate in the same natural order."""
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    return isinstance(left, str) and isinstance(right, str)


class _UnionFind:
    """Union-find over terms (used for equality classes)."""

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}

    def add(self, term: Term) -> None:
        if term not in self._parent:
            self._parent[term] = term

    def find(self, term: Term) -> Term:
        self.add(term)
        root = term
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[term] != root:
            self._parent[term], term = root, self._parent[term]
        return root

    def union(self, left: Term, right: Term) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return
        # Prefer constants as representatives so classes with a known value
        # expose it directly.
        if isinstance(left_root, Constant):
            self._parent[right_root] = left_root
        else:
            self._parent[left_root] = right_root

    def terms(self) -> List[Term]:
        return list(self._parent)

    def classes(self) -> Dict[Term, Set[Term]]:
        grouped: Dict[Term, Set[Term]] = {}
        for term in self._parent:
            grouped.setdefault(self.find(term), set()).add(term)
        return grouped


class ComparisonSet:
    """A conjunction of comparison constraints in a normalized, closed form."""

    def __init__(self, comparisons: Iterable[Comparison] = ()):
        self._comparisons: Tuple[Comparison, ...] = tuple(comparisons)
        self._uf = _UnionFind()
        #: strongest known order edge between representatives: True = strict.
        self._less: Dict[Tuple[Term, Term], bool] = {}
        self._not_equal: Set[FrozenSet[Term]] = set()
        self._satisfiable = True
        self._build()

    # -- construction -------------------------------------------------------
    def _build(self) -> None:
        # Register all terms and equalities first.
        for comparison in self._comparisons:
            self._uf.add(comparison.left)
            self._uf.add(comparison.right)
        changed = True
        guard = 0
        # Equality merging may enable further merges through constants, so we
        # iterate; the number of rounds is bounded by the number of terms.
        while changed and guard <= len(self._comparisons) + 2:
            changed = False
            guard += 1
            for comparison in self._comparisons:
                if comparison.op is ComparisonOperator.EQ:
                    left_root = self._uf.find(comparison.left)
                    right_root = self._uf.find(comparison.right)
                    if left_root != right_root:
                        self._uf.union(comparison.left, comparison.right)
                        changed = True
        # Check constant consistency of equality classes.
        for root, members in self._uf.classes().items():
            constants = [t for t in members if isinstance(t, Constant)]
            values = {c.value for c in constants}
            if len(values) > 1:
                self._satisfiable = False
                return
        # Order and disequality edges between representatives.
        for comparison in self._comparisons:
            left = self._uf.find(comparison.left)
            right = self._uf.find(comparison.right)
            op = comparison.op
            if op is ComparisonOperator.EQ:
                continue
            if op is ComparisonOperator.NE:
                if left == right:
                    self._satisfiable = False
                    return
                self._not_equal.add(frozenset((left, right)))
                continue
            if op in (ComparisonOperator.GT, ComparisonOperator.GE):
                left, right = right, left
                op = op.flip()
            strict = op is ComparisonOperator.LT
            if left == right:
                if strict:
                    self._satisfiable = False
                    return
                continue
            key = (left, right)
            self._less[key] = self._less.get(key, False) or strict
        # Known order between constants of different classes.
        representatives = {self._uf.find(t) for t in self._uf.terms()}
        constant_reps = [
            r for r in representatives if self._class_constant(r) is not None
        ]
        for i, left in enumerate(constant_reps):
            for right in constant_reps[i + 1:]:
                left_value = self._class_constant(left)
                right_value = self._class_constant(right)
                assert left_value is not None and right_value is not None
                if left_value.value == right_value.value:
                    continue
                self._not_equal.add(frozenset((left, right)))
                if _comparable(left_value.value, right_value.value):
                    if left_value.value < right_value.value:
                        self._less[(left, right)] = True
                    else:
                        self._less[(right, left)] = True
        self._close()

    def _class_constant(self, representative: Term) -> Optional[Constant]:
        """The constant value of an equivalence class, if any."""
        if isinstance(representative, Constant):
            return representative
        for term, group in self._uf.classes().items():
            if term == representative:
                for member in group:
                    if isinstance(member, Constant):
                        return member
        return None

    def _close(self) -> None:
        """Transitive closure of the order edges with strictness propagation."""
        nodes = sorted({t for pair in self._less for t in pair} , key=str)
        changed = True
        while changed:
            changed = False
            for middle in nodes:
                for left in nodes:
                    first = self._less.get((left, middle))
                    if first is None:
                        continue
                    for right in nodes:
                        second = self._less.get((middle, right))
                        if second is None:
                            continue
                        strict = first or second
                        existing = self._less.get((left, right))
                        if existing is None or (strict and not existing):
                            self._less[(left, right)] = strict
                            changed = True
        # Detect contradictions.
        for (left, right), strict in list(self._less.items()):
            if left == right and strict:
                self._satisfiable = False
                return
            back = self._less.get((right, left))
            if back is not None and (strict or back):
                # a < b and b <= a (or stricter): contradiction.
                if strict or back:
                    if strict and back is not None:
                        self._satisfiable = False
                        return
                    if strict:
                        self._satisfiable = False
                        return
                    if back:
                        self._satisfiable = False
                        return
            if back is not None and not strict and not back:
                # a <= b and b <= a force equality; contradiction with !=.
                if frozenset((left, right)) in self._not_equal:
                    self._satisfiable = False
                    return
        # != against forced equality of identical representatives.
        for pair in self._not_equal:
            if len(pair) == 1:
                self._satisfiable = False
                return

    # -- queries ----------------------------------------------------------------
    def is_satisfiable(self) -> bool:
        """Whether some assignment over a dense domain satisfies all constraints."""
        return self._satisfiable

    def comparisons(self) -> Tuple[Comparison, ...]:
        return self._comparisons

    def _order_between(self, left: Term, right: Term) -> Optional[bool]:
        """Strongest known order edge between the classes of two terms.

        Returns ``True`` for strict ``<``, ``False`` for ``<=``, ``None`` for
        no known relation.
        """
        left_root = self._uf.find(left)
        right_root = self._uf.find(right)
        if left_root == right_root:
            return None
        return self._less.get((left_root, right_root))

    def _forced_equal(self, left: Term, right: Term) -> bool:
        left_root = self._uf.find(left)
        right_root = self._uf.find(right)
        if left_root == right_root:
            return True
        forward = self._less.get((left_root, right_root))
        backward = self._less.get((right_root, left_root))
        return forward is False and backward is False

    def _known_distinct(self, left: Term, right: Term) -> bool:
        left_root = self._uf.find(left)
        right_root = self._uf.find(right)
        if left_root == right_root:
            return False
        if frozenset((left_root, right_root)) in self._not_equal:
            return True
        forward = self._less.get((left_root, right_root))
        backward = self._less.get((right_root, left_root))
        if forward is True or backward is True:
            return True
        left_const = self._class_constant(left_root)
        right_const = self._class_constant(right_root)
        if left_const is not None and right_const is not None:
            return left_const.value != right_const.value
        return False

    def implies(self, comparison: Comparison) -> bool:
        """Whether the conjunction logically implies the given comparison.

        The test is the classical refutation check: ``Φ ⊨ c`` iff ``Φ ∧ ¬c`` is
        unsatisfiable.  Because the negation of every supported operator is
        again a single comparison (over a dense domain), this reduces to one
        satisfiability test and automatically accounts for constants that
        appear only in ``c`` (e.g. ``X < 3`` implies ``X < 10``).  An
        unsatisfiable conjunction implies everything.
        """
        if not self._satisfiable:
            return True
        left, right = comparison.left, comparison.right
        op = comparison.op
        # Ground comparisons are decided directly.
        if isinstance(left, Constant) and isinstance(right, Constant):
            if op in (ComparisonOperator.EQ, ComparisonOperator.NE):
                return op.evaluate(left.value, right.value)
            if _comparable(left.value, right.value):
                return op.evaluate(left.value, right.value)
            return False
        refutation = ComparisonSet(self._comparisons + (comparison.negated(),))
        return not refutation.is_satisfiable()

    def implies_all(self, comparisons: Iterable[Comparison]) -> bool:
        return all(self.implies(c) for c in comparisons)

    def conjoin(self, comparisons: Iterable[Comparison]) -> "ComparisonSet":
        """A new constraint set with additional comparisons conjoined."""
        return ComparisonSet(self._comparisons + tuple(comparisons))

    def terms(self) -> Tuple[Term, ...]:
        """All terms mentioned by the constraints."""
        seen: List[Term] = []
        for comparison in self._comparisons:
            for term in (comparison.left, comparison.right):
                if term not in seen:
                    seen.append(term)
        return tuple(seen)

    def __repr__(self) -> str:
        return f"ComparisonSet({', '.join(str(c) for c in self._comparisons)})"
