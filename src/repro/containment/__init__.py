"""Query containment, equivalence and minimization.

The containment test is the engine room of the whole rewriting machinery:
every rewriting algorithm ultimately justifies its output by containment
arguments (a candidate rewriting is *complete* iff its expansion is equivalent
to the query, and *contained* iff its expansion is contained in the query).

Three layers are provided:

* :mod:`repro.containment.homomorphism` — containment mappings between pure
  conjunctive queries (the Chandra–Merlin NP test).
* :mod:`repro.containment.constraints` — reasoning about conjunctions of
  arithmetic comparisons (satisfiability and implication).
* :mod:`repro.containment.interpreted` — containment of conjunctive queries
  with comparison subgoals, via the total-preorder canonical-database test.

:mod:`repro.containment.containment` dispatches to the appropriate test and
also covers unions of conjunctive queries; :mod:`repro.containment.minimize`
computes minimal equivalent queries (cores).
"""

from repro.containment.homomorphism import (
    containment_mappings,
    count_containment_mappings,
    find_containment_mapping,
    find_homomorphism,
    homomorphisms,
    naive_containment_mappings,
    naive_homomorphisms,
    search_implementation,
    set_search_implementation,
    using_search_implementation,
)
from repro.containment.constraints import ComparisonSet
from repro.containment.containment import (
    is_contained,
    is_contained_in_union,
    is_equivalent,
    is_satisfiable,
    union_contained_in,
    union_equivalent,
)
from repro.containment.memo import (
    ContainmentMemo,
    containment_memo_stats,
    global_containment_memo,
    memo_disabled,
)
from repro.containment.minimize import is_minimal, minimize
from repro.containment.interpreted import interpreted_contained

__all__ = [
    "ComparisonSet",
    "ContainmentMemo",
    "containment_mappings",
    "containment_memo_stats",
    "count_containment_mappings",
    "find_containment_mapping",
    "find_homomorphism",
    "global_containment_memo",
    "homomorphisms",
    "interpreted_contained",
    "is_contained",
    "is_contained_in_union",
    "is_equivalent",
    "is_minimal",
    "is_satisfiable",
    "memo_disabled",
    "minimize",
    "naive_containment_mappings",
    "naive_homomorphisms",
    "search_implementation",
    "set_search_implementation",
    "union_contained_in",
    "union_equivalent",
    "using_search_implementation",
]
