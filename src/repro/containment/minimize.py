"""Minimization of conjunctive queries (computing cores).

A conjunctive query is *minimal* when no body subgoal can be removed without
changing its meaning.  Chandra and Merlin showed every CQ has a unique minimal
equivalent (its core) up to variable renaming; the paper relies on minimality
when counting subgoals for the rewriting-length bound, and the rewriting
algorithms minimize their outputs so that redundant view atoms do not inflate
the plans that get evaluated.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.datalog.queries import ConjunctiveQuery
from repro.containment.containment import is_equivalent


def _try_remove(query: ConjunctiveQuery, index: int) -> Optional[ConjunctiveQuery]:
    """The query with subgoal ``index`` removed, if that removal is legal.

    Removal is illegal when it would leave a head or comparison variable
    unbound (an unsafe query); such a subgoal can never be redundant.
    """
    body = query.body[:index] + query.body[index + 1:]
    remaining_vars = set()
    for atom in body:
        remaining_vars.update(atom.variables())
    for var in query.head.variables():
        if var not in remaining_vars:
            return None
    for comparison in query.comparisons:
        for var in comparison.variables():
            if var not in remaining_vars:
                return None
    if not body and query.head.variables():
        return None
    return query.with_body(body, require_safe=False)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """A minimal conjunctive query equivalent to ``query``.

    Subgoals are removed greedily: a subgoal is dropped whenever the reduced
    query is still equivalent to the original.  Because containment between
    the reduced and the original query only needs to be checked in one
    direction (dropping subgoals can only enlarge the result), the test uses
    full equivalence for robustness in the presence of comparisons.
    """
    current = query
    changed = True
    while changed:
        changed = False
        for index in range(len(current.body)):
            candidate = _try_remove(current, index)
            if candidate is None:
                continue
            if is_equivalent(candidate, query):
                current = candidate
                changed = True
                break
    return current


def is_minimal(query: ConjunctiveQuery) -> bool:
    """Whether no subgoal of ``query`` can be removed."""
    for index in range(len(query.body)):
        candidate = _try_remove(query, index)
        if candidate is not None and is_equivalent(candidate, query):
            return False
    return True


def core_size(query: ConjunctiveQuery) -> int:
    """The number of subgoals of the minimized query."""
    return minimize(query).size()
