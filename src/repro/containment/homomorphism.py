"""Containment mappings (homomorphisms) between conjunctive queries.

A *containment mapping* from query ``Q2`` to query ``Q1`` is a substitution
``h`` on the variables of ``Q2`` such that

* ``h`` maps the head of ``Q2`` onto the head of ``Q1`` (argument by
  argument), and
* every body subgoal of ``Q2`` is mapped by ``h`` onto some body subgoal of
  ``Q1``.

By the Chandra–Merlin theorem, for pure conjunctive queries ``Q1 ⊑ Q2`` holds
iff such a mapping exists.  The search below is a straightforward backtracking
procedure with two standard optimizations: subgoals with the fewest candidate
targets are mapped first, and candidate target atoms are pre-filtered by
predicate and constant positions.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.substitution import Substitution, match_atom
from repro.datalog.terms import Constant, Term, Variable


def _head_seed(source: ConjunctiveQuery, target: ConjunctiveQuery) -> Optional[Substitution]:
    """The substitution forced by mapping source's head onto target's head."""
    if source.head.predicate != target.head.predicate:
        return None
    if len(source.head.args) != len(target.head.args):
        return None
    return match_atom(source.head, target.head)


def homomorphisms(
    source_atoms: Sequence[Atom],
    target_atoms: Sequence[Atom],
    seed: Optional[Substitution] = None,
) -> Iterator[Substitution]:
    """All substitutions mapping every atom of ``source_atoms`` into ``target_atoms``.

    ``seed`` fixes the image of some variables in advance (typically the head
    variables).  The same target atom may serve as the image of several source
    atoms (homomorphisms need not be injective).
    """
    seed = seed if seed is not None else Substitution.empty()

    # Pre-compute candidate target atoms per source atom (by predicate/arity).
    candidates: List[List[Atom]] = []
    for atom in source_atoms:
        options = [t for t in target_atoms if t.signature == atom.signature]
        candidates.append(options)
        if not options:
            return

    # Map the most constrained subgoals first.
    order = sorted(range(len(source_atoms)), key=lambda i: len(candidates[i]))

    def extend(position: int, substitution: Substitution) -> Iterator[Substitution]:
        if position == len(order):
            yield substitution
            return
        index = order[position]
        atom = source_atoms[index]
        for target in candidates[index]:
            extended = match_atom(atom, target, substitution)
            if extended is not None:
                yield from extend(position + 1, extended)

    yield from extend(0, seed)


def find_homomorphism(
    source_atoms: Sequence[Atom],
    target_atoms: Sequence[Atom],
    seed: Optional[Substitution] = None,
) -> Optional[Substitution]:
    """The first homomorphism found, or ``None``."""
    for substitution in homomorphisms(source_atoms, target_atoms, seed):
        return substitution
    return None


def containment_mappings(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Iterator[Substitution]:
    """All containment mappings from ``source`` to ``target``.

    The existence of such a mapping witnesses ``target ⊑ source`` (for pure
    conjunctive queries).  Head compatibility is required: the heads must
    share predicate name and arity, and head constants must agree.
    """
    seed = _head_seed(source, target)
    if seed is None:
        return
    yield from homomorphisms(source.body, target.body, seed)


def find_containment_mapping(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Optional[Substitution]:
    """The first containment mapping from ``source`` to ``target``, or ``None``."""
    for mapping in containment_mappings(source, target):
        return mapping
    return None


def count_containment_mappings(source: ConjunctiveQuery, target: ConjunctiveQuery) -> int:
    """The number of distinct containment mappings (useful for tests/diagnostics)."""
    return sum(1 for _ in containment_mappings(source, target))
