"""Containment mappings (homomorphisms) between conjunctive queries.

A *containment mapping* from query ``Q2`` to query ``Q1`` is a substitution
``h`` on the variables of ``Q2`` such that

* ``h`` maps the head of ``Q2`` onto the head of ``Q1`` (argument by
  argument), and
* every body subgoal of ``Q2`` is mapped by ``h`` onto some body subgoal of
  ``Q1``.

By the Chandra–Merlin theorem, for pure conjunctive queries ``Q1 ⊑ Q2`` holds
iff such a mapping exists.

Two search implementations live here:

* the **indexed** search (the default) builds a per-(predicate, arity)
  candidate index over the target, fail-fasts on the atoms' precomputed
  constant signatures, runs over one mutable binding dictionary with
  undo-on-backtrack (no per-step :class:`Substitution` copies), and picks the
  *most constrained* unmapped subgoal dynamically at every step — which doubles
  as forward checking: binding a shared variable shrinks the candidate lists
  of every subgoal mentioning it, and an empty list fails the branch at once;
* the **naive** search is the original straightforward backtracking procedure
  with static subgoal ordering and immutable substitutions.  It is retained
  verbatim as the reference oracle: property tests assert the two enumerate
  exactly the same mappings (multiplicity included), and the E14 benchmark
  measures the cold-path speedup against it.

Both enumerate one mapping per consistent assignment of source atoms to
target atoms, so they agree mapping for mapping (only the order may differ).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.substitution import Substitution, match_atom
from repro.datalog.terms import Constant, Term, Variable

#: The available search implementations (see :func:`set_search_implementation`).
SEARCH_IMPLEMENTATIONS = ("indexed", "naive")

_active_implementation = "indexed"


def set_search_implementation(name: str) -> str:
    """Select the homomorphism search implementation globally.

    Returns the previously active name.  ``"indexed"`` (the default) is the
    optimized search; ``"naive"`` is the reference backtracking search kept
    for property testing and the E14 cold-path benchmark baseline.
    """
    global _active_implementation
    if name not in SEARCH_IMPLEMENTATIONS:
        raise ValueError(
            f"unknown search implementation {name!r}; "
            f"expected one of {', '.join(SEARCH_IMPLEMENTATIONS)}"
        )
    previous = _active_implementation
    _active_implementation = name
    return previous


def search_implementation() -> str:
    """The name of the currently active search implementation."""
    return _active_implementation


@contextmanager
def using_search_implementation(name: str) -> Iterator[None]:
    """Context manager scoping :func:`set_search_implementation`."""
    previous = set_search_implementation(name)
    try:
        yield
    finally:
        set_search_implementation(previous)


def _head_seed(source: ConjunctiveQuery, target: ConjunctiveQuery) -> Optional[Substitution]:
    """The substitution forced by mapping source's head onto target's head."""
    if source.head.predicate != target.head.predicate:
        return None
    if len(source.head.args) != len(target.head.args):
        return None
    return match_atom(source.head, target.head)


# ---------------------------------------------------------------------------
# The naive reference search (the seed implementation, kept verbatim)
# ---------------------------------------------------------------------------

def naive_homomorphisms(
    source_atoms: Sequence[Atom],
    target_atoms: Sequence[Atom],
    seed: Optional[Substitution] = None,
) -> Iterator[Substitution]:
    """The reference backtracking enumeration (static order, immutable bindings).

    Semantically identical to :func:`homomorphisms`; kept as the oracle the
    indexed search is property-tested against and as the E14 baseline.
    """
    seed = seed if seed is not None else Substitution.empty()

    # Pre-compute candidate target atoms per source atom (by predicate/arity).
    candidates: List[List[Atom]] = []
    for atom in source_atoms:
        options = [t for t in target_atoms if t.signature == atom.signature]
        candidates.append(options)
        if not options:
            return

    # Map the most constrained subgoals first.
    order = sorted(range(len(source_atoms)), key=lambda i: len(candidates[i]))

    def extend(position: int, substitution: Substitution) -> Iterator[Substitution]:
        if position == len(order):
            yield substitution
            return
        index = order[position]
        atom = source_atoms[index]
        for target in candidates[index]:
            extended = match_atom(atom, target, substitution)
            if extended is not None:
                yield from extend(position + 1, extended)

    yield from extend(0, seed)


# ---------------------------------------------------------------------------
# The indexed search
# ---------------------------------------------------------------------------

def _indexed_homomorphisms(
    source_atoms: Sequence[Atom],
    target_atoms: Sequence[Atom],
    seed: Optional[Substitution] = None,
) -> Iterator[Substitution]:
    """Indexed, trail-based enumeration; see the module docstring."""
    binding: Dict[Variable, Term] = dict(seed.items()) if seed is not None else {}

    count = len(source_atoms)
    if count == 0:
        yield Substitution(binding)
        return

    # Per-(predicate, arity) index over the target, built once.
    by_signature: Dict[Tuple[str, int], List[Atom]] = {}
    for target in target_atoms:
        by_signature.setdefault(target.signature, []).append(target)

    # Candidate lists per source atom, fail-fasting on constant signatures.
    candidates: List[List[Atom]] = []
    for atom in source_atoms:
        options = by_signature.get(atom.signature)
        if not options:
            return
        const_positions = atom.const_positions
        if const_positions:
            options = [
                t
                for t in options
                if all(t.args[i] == c for i, c in const_positions)
            ]
            if not options:
                return
        candidates.append(options)

    def consistent(atom: Atom, target: Atom) -> bool:
        """Whether mapping ``atom`` onto ``target`` agrees with the binding."""
        local: Optional[Dict[Variable, Term]] = None
        for pattern_term, target_term in zip(atom.args, target.args):
            if pattern_term.__class__ is Variable:
                bound = binding.get(pattern_term)
                if bound is None and local is not None:
                    bound = local.get(pattern_term)
                if bound is None:
                    if local is None:
                        local = {}
                    local[pattern_term] = target_term
                elif bound != target_term:
                    return False
            elif pattern_term != target_term:
                # Constants (and the rare ground function term) must match
                # the target exactly; constant positions were pre-filtered,
                # so this only fires for repeated-constant corner cases.
                return False
        return True

    def bind(atom: Atom, target: Atom) -> Optional[List[Variable]]:
        """Extend the binding in place; returns the trail of new bindings."""
        trail: List[Variable] = []
        for pattern_term, target_term in zip(atom.args, target.args):
            if pattern_term.__class__ is Variable:
                bound = binding.get(pattern_term)
                if bound is None:
                    binding[pattern_term] = target_term
                    trail.append(pattern_term)
                elif bound != target_term:
                    for var in trail:
                        del binding[var]
                    return None
            elif pattern_term != target_term:
                for var in trail:
                    del binding[var]
                return None
        return trail

    # Fast path: every subgoal has exactly one candidate (typical for
    # chain/star shapes over distinct relations) — a single bind pass decides
    # the search with no selection loop or generator recursion.
    if all(len(options) == 1 for options in candidates):
        # `binding` is local to this invocation, so no undo is needed.
        for index, atom in enumerate(source_atoms):
            target = candidates[index][0]
            for pattern_term, target_term in zip(atom.args, target.args):
                if pattern_term.__class__ is Variable:
                    bound = binding.get(pattern_term)
                    if bound is None:
                        binding[pattern_term] = target_term
                    elif bound != target_term:
                        return
                elif pattern_term != target_term:
                    return
        yield Substitution(binding)
        return

    unassigned = set(range(count))

    def select() -> Tuple[int, List[Atom]]:
        """The most constrained unmapped subgoal and its live candidates.

        Filtering every unmapped subgoal's candidate list against the current
        binding is the forward-checking step: a subgoal sharing a variable
        with the one just bound sees its list shrink, and an empty list
        (returned immediately) prunes the branch before any deeper descent.
        """
        best_index = -1
        best_options: List[Atom] = []
        best_size = -1
        for index in unassigned:
            atom = source_atoms[index]
            options = [t for t in candidates[index] if consistent(atom, t)]
            size = len(options)
            if size == 0:
                return index, options
            if best_size < 0 or size < best_size:
                best_index, best_options, best_size = index, options, size
                if size == 1:
                    break
        return best_index, best_options

    def extend() -> Iterator[Substitution]:
        if not unassigned:
            yield Substitution(dict(binding))
            return
        index, options = select()
        if not options:
            return
        unassigned.discard(index)
        atom = source_atoms[index]
        for target in options:
            trail = bind(atom, target)
            if trail is None:  # pragma: no cover - options are pre-filtered
                continue
            yield from extend()
            for var in trail:
                del binding[var]
        unassigned.add(index)

    yield from extend()


# ---------------------------------------------------------------------------
# Front door
# ---------------------------------------------------------------------------

def homomorphisms(
    source_atoms: Sequence[Atom],
    target_atoms: Sequence[Atom],
    seed: Optional[Substitution] = None,
) -> Iterator[Substitution]:
    """All substitutions mapping every atom of ``source_atoms`` into ``target_atoms``.

    ``seed`` fixes the image of some variables in advance (typically the head
    variables).  The same target atom may serve as the image of several source
    atoms (homomorphisms need not be injective).  Dispatches to the active
    search implementation (see :func:`set_search_implementation`).
    """
    if _active_implementation == "naive":
        return naive_homomorphisms(source_atoms, target_atoms, seed)
    return _indexed_homomorphisms(source_atoms, target_atoms, seed)


def find_homomorphism(
    source_atoms: Sequence[Atom],
    target_atoms: Sequence[Atom],
    seed: Optional[Substitution] = None,
) -> Optional[Substitution]:
    """The first homomorphism found, or ``None``."""
    for substitution in homomorphisms(source_atoms, target_atoms, seed):
        return substitution
    return None


def containment_mappings(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Iterator[Substitution]:
    """All containment mappings from ``source`` to ``target``.

    The existence of such a mapping witnesses ``target ⊑ source`` (for pure
    conjunctive queries).  Head compatibility is required: the heads must
    share predicate name and arity, and head constants must agree.
    """
    seed = _head_seed(source, target)
    if seed is None:
        return
    yield from homomorphisms(source.body, target.body, seed)


def naive_containment_mappings(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Iterator[Substitution]:
    """All containment mappings, enumerated by the naive reference search."""
    seed = _head_seed(source, target)
    if seed is None:
        return
    yield from naive_homomorphisms(source.body, target.body, seed)


def find_containment_mapping(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Optional[Substitution]:
    """The first containment mapping from ``source`` to ``target``, or ``None``."""
    for mapping in containment_mappings(source, target):
        return mapping
    return None


def count_containment_mappings(source: ConjunctiveQuery, target: ConjunctiveQuery) -> int:
    """The number of distinct containment mappings (useful for tests/diagnostics)."""
    return sum(1 for _ in containment_mappings(source, target))
