"""Containment and equivalence of conjunctive queries and unions thereof."""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.datalog.atoms import Comparison
from repro.datalog.queries import ConjunctiveQuery, UnionQuery, as_union
from repro.containment.constraints import ComparisonSet
from repro.containment.homomorphism import find_containment_mapping
from repro.containment.interpreted import interpreted_contained
from repro.containment.memo import global_containment_memo

QueryLike = Union[ConjunctiveQuery, UnionQuery]


def is_satisfiable(query: ConjunctiveQuery) -> bool:
    """Whether the query can return an answer over some database.

    A conjunctive query is unsatisfiable exactly when its comparison subgoals
    are contradictory (the relational part alone is always satisfiable over
    its canonical database).
    """
    if not query.comparisons:
        return True
    return ComparisonSet(query.comparisons).is_satisfiable()


def _cq_contained_search(query: ConjunctiveQuery, container: ConjunctiveQuery) -> bool:
    """The uncached decision procedure (``query`` known to be satisfiable)."""
    if not query.comparisons and not container.comparisons:
        return find_containment_mapping(container, query) is not None
    return interpreted_contained(query, container)


def _cq_contained(query: ConjunctiveQuery, container: ConjunctiveQuery) -> bool:
    """Containment of a single CQ in a single CQ.

    Satisfiability is decided first (an unsatisfiable query is contained in
    everything); after that, cheap necessary conditions and the shared
    fingerprint-keyed memo (:mod:`repro.containment.memo`) short-circuit the
    search whenever possible.
    """
    if not is_satisfiable(query):
        return True
    return global_containment_memo().contained(query, container, _cq_contained_search)


def is_contained(query: QueryLike, container: QueryLike) -> bool:
    """Whether ``query ⊑ container`` (every answer of ``query`` is one of ``container``).

    Both arguments may be conjunctive queries or unions.  For union
    containers the test uses the Sagiv–Yannakakis characterization: a CQ is
    contained in a union iff it is contained in one disjunct — which is valid
    for pure CQs; in the presence of comparison subgoals the disjunct-wise
    test remains sound but may miss containments that only hold by case
    analysis over orderings, so a ``False`` answer for queries with
    comparisons against a union is conservative.
    """
    query_union = as_union(query)
    container_union = as_union(container)
    for disjunct in query_union.disjuncts:
        if not any(
            _cq_contained(disjunct, candidate) for candidate in container_union.disjuncts
        ):
            return False
    return True


def is_contained_in_union(query: ConjunctiveQuery, disjuncts: Iterable[ConjunctiveQuery]) -> bool:
    """Convenience wrapper: ``query ⊑ union(disjuncts)``."""
    return is_contained(query, UnionQuery(list(disjuncts)))


def union_contained_in(disjuncts: Iterable[ConjunctiveQuery], container: QueryLike) -> bool:
    """Convenience wrapper: ``union(disjuncts) ⊑ container``."""
    return is_contained(UnionQuery(list(disjuncts)), container)


def is_equivalent(left: QueryLike, right: QueryLike) -> bool:
    """Whether the two queries return the same answers over every database."""
    return is_contained(left, right) and is_contained(right, left)


def union_equivalent(left: Iterable[ConjunctiveQuery], right: Iterable[ConjunctiveQuery]) -> bool:
    """Equivalence of two unions given as iterables of disjuncts."""
    return is_equivalent(UnionQuery(list(left)), UnionQuery(list(right)))
