"""Evaluation of conjunctive queries and unions over in-memory databases.

The evaluator is a backtracking join: subgoals are ordered greedily (bound,
selective subgoals first), candidate tuples are fetched through hash indexes
on the currently-bound argument positions, and comparison subgoals are checked
as soon as both sides are ground.

Evaluation also collects :class:`EvaluationStatistics`, which the cost model
(`repro.engine.cost`) uses to compare the work needed to answer a query
directly against the work needed to answer its rewriting over materialized
views — the paper's query-optimization motivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.datalog.atoms import Atom, Comparison
from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.datalog.terms import Constant, FunctionTerm, Term, Variable
from repro.engine.database import Database
from repro.engine.relation import Relation, SkolemValue


@dataclass
class EvaluationStatistics:
    """Counters describing the work done by one or more evaluations."""

    #: Candidate tuples fetched from relations (index hits or scan rows).
    probes: int = 0
    #: Successful extensions of a partial binding by one subgoal.
    extensions: int = 0
    #: Number of answer tuples produced (before de-duplication).
    answers: int = 0
    #: Number of subgoals evaluated (per top-level call).
    subgoals: int = 0

    def merge(self, other: "EvaluationStatistics") -> None:
        self.probes += other.probes
        self.extensions += other.extensions
        self.answers += other.answers
        self.subgoals += other.subgoals

    @property
    def work(self) -> int:
        """A single scalar summarizing evaluation effort."""
        return self.probes + self.extensions


def _candidate_rows(
    relation: Relation, positions: Tuple[int, ...], key: Tuple[Any, ...]
) -> Sequence[Tuple[Any, ...]]:
    """Candidate tuples matching ``key`` on ``positions``.

    Relations maintain their per-position hash indexes incrementally (see
    :meth:`Relation.index_on`), so this is a dictionary lookup — there is no
    per-evaluation index build any more, and indexes survive across
    evaluations and small data deltas.
    """
    if not positions:
        return tuple(relation)
    return relation.index_on(positions).get(key, ())


Binding = Dict[Variable, Any]


def _ground_term(term: Term, binding: Binding) -> Tuple[bool, Any]:
    """Resolve a term to a value under a binding.

    Returns ``(True, value)`` when the term is ground under the binding and
    ``(False, None)`` otherwise.
    """
    if isinstance(term, Constant):
        return True, term.value
    if isinstance(term, Variable):
        if term in binding:
            return True, binding[term]
        return False, None
    if isinstance(term, FunctionTerm):
        values = []
        for arg in term.args:
            ok, value = _ground_term(arg, binding)
            if not ok:
                return False, None
            values.append(value)
        return True, SkolemValue(term.function, values)
    raise EvaluationError(f"cannot evaluate term {term!r}")


def _order_subgoals(query: ConjunctiveQuery, database: Database) -> List[Atom]:
    """Greedy join order: smallest relations first, then maximize bound variables."""
    remaining = list(query.body)
    if not remaining:
        return []

    def relation_size(atom: Atom) -> int:
        relation = database.relation(atom.predicate)
        return len(relation) if relation is not None else 0

    ordered: List[Atom] = []
    bound: set = set()
    # Seed with the most selective subgoal (fewest tuples, most constants).
    remaining.sort(key=lambda a: (relation_size(a), -len(a.constants())))
    first = remaining.pop(0)
    ordered.append(first)
    bound.update(first.variables())
    while remaining:
        def score(atom: Atom) -> Tuple[int, int]:
            shared = sum(1 for v in atom.variables() if v in bound)
            return (-shared, relation_size(atom))

        remaining.sort(key=score)
        chosen = remaining.pop(0)
        ordered.append(chosen)
        bound.update(chosen.variables())
    return ordered


def _comparison_ready(comparison: Comparison, binding: Binding) -> Optional[bool]:
    """Evaluate a comparison if both sides are ground; return None when not yet ground."""
    left_ok, left = _ground_term(comparison.left, binding)
    right_ok, right = _ground_term(comparison.right, binding)
    if not (left_ok and right_ok):
        return None
    if isinstance(left, SkolemValue) or isinstance(right, SkolemValue):
        # Skolem values are only comparable by (dis)equality.
        if comparison.op.value in ("=", "!="):
            return comparison.op.evaluate(left, right)
        return False
    return comparison.op.evaluate(left, right)


def evaluate_substitutions(
    query: ConjunctiveQuery,
    database: Database,
    statistics: Optional[EvaluationStatistics] = None,
) -> Iterator[Binding]:
    """Yield every satisfying assignment of the query's variables over the database.

    Assignments map variables to raw values; the caller projects onto the head
    to obtain answers.  Duplicates (assignments differing only on variables
    that do not occur in the query) are not produced because every variable in
    the binding occurs in the body.
    """
    stats = statistics if statistics is not None else EvaluationStatistics()
    ordered = _order_subgoals(query, database)
    stats.subgoals += len(ordered)
    comparisons = list(query.comparisons)

    # Boolean query with empty body: the head must be ground and always holds.
    if not ordered:
        if all(_comparison_ready(c, {}) for c in comparisons):
            yield {}
        return

    def check_comparisons(binding: Binding) -> bool:
        for comparison in comparisons:
            result = _comparison_ready(comparison, binding)
            if result is False:
                return False
        return True

    def extend(position: int, binding: Binding) -> Iterator[Binding]:
        if position == len(ordered):
            yield dict(binding)
            return
        atom = ordered[position]
        relation = database.relation(atom.predicate)
        if relation is None or len(relation) == 0:
            return
        if relation.arity != len(atom.args):
            raise EvaluationError(
                f"subgoal {atom} has arity {len(atom.args)} but relation "
                f"{relation.name} has arity {relation.arity}"
            )
        bound_positions: List[int] = []
        bound_values: List[Any] = []
        for index, term in enumerate(atom.args):
            ok, value = _ground_term(term, binding)
            if ok:
                bound_positions.append(index)
                bound_values.append(value)
        candidates = _candidate_rows(relation, tuple(bound_positions), tuple(bound_values))
        for row in candidates:
            stats.probes += 1
            new_binding = dict(binding)
            success = True
            for index, term in enumerate(atom.args):
                value = row[index]
                ok, ground_value = _ground_term(term, new_binding)
                if ok:
                    if ground_value != value:
                        success = False
                        break
                elif isinstance(term, Variable):
                    new_binding[term] = value
                else:
                    # A non-ground function term cannot be matched against a value.
                    success = False
                    break
            if not success:
                continue
            if not check_comparisons(new_binding):
                continue
            stats.extensions += 1
            yield from extend(position + 1, new_binding)

    yield from extend(0, {})


def evaluate(
    query: "ConjunctiveQuery | UnionQuery",
    database: Database,
    statistics: Optional[EvaluationStatistics] = None,
) -> FrozenSet[Tuple[Any, ...]]:
    """Evaluate a query and return its set of answer tuples.

    For a union query, the result is the union of the disjuncts' answers.
    """
    stats = statistics if statistics is not None else EvaluationStatistics()
    if isinstance(query, UnionQuery):
        answers: set = set()
        for disjunct in query.disjuncts:
            answers |= evaluate(disjunct, database, stats)
        return frozenset(answers)

    results: set = set()
    for binding in evaluate_substitutions(query, database, stats):
        row = []
        for term in query.head.args:
            ok, value = _ground_term(term, binding)
            if not ok:
                raise EvaluationError(
                    f"head term {term} of query {query.name} is not bound by the body"
                )
            row.append(value)
        stats.answers += 1
        results.add(tuple(row))
    return frozenset(results)


def evaluate_boolean(
    query: "ConjunctiveQuery | UnionQuery",
    database: Database,
    statistics: Optional[EvaluationStatistics] = None,
) -> bool:
    """Whether the query has at least one answer over the database."""
    if isinstance(query, UnionQuery):
        return any(evaluate_boolean(q, database, statistics) for q in query.disjuncts)
    for _ in evaluate_substitutions(query, database, statistics):
        return True
    return False


def materialize_views(views: Iterable, database: Database) -> Database:
    """Materialize a collection of views over a base database.

    Returns a new database with one relation per view, named after the view
    and containing the view's answers over ``database``.  This is the "view
    instance" against which rewritings are evaluated.
    """
    from repro.datalog.views import View, ViewSet  # local import to avoid a cycle

    out = Database()
    for view in views:
        if not isinstance(view, View):
            raise EvaluationError(f"materialize_views expects View objects, got {view!r}")
        answers = evaluate(view.definition, database)
        out.ensure_relation(view.name, view.arity)
        for row in answers:
            out.add_fact(view.name, row)
    return out
