"""Evaluation of conjunctive queries and unions over in-memory databases.

Two execution engines sit behind the :func:`evaluate` front door:

* the **compiled, set-at-a-time engine** (:mod:`repro.exec`, the default):
  queries are compiled into physical plans — indexed scans feeding hash-join
  pipelines with cost-based join ordering — that operate on whole relations
  at a time, with plan caching keyed by canonical query and database version;
* the **backtracking interpreter** (this module): subgoals are ordered
  greedily, candidate tuples are fetched through hash indexes on the
  currently-bound argument positions one binding at a time, and comparison
  subgoals are checked as soon as both sides are ground.

The interpreter remains the fallback for queries the compiler does not
admit — anything containing function terms (the Skolem terms of the
inverse-rules algorithm) — and the engine of choice for lazy enumeration
(:func:`evaluate_substitutions`, :func:`evaluate_boolean`, and the delta
rules of :mod:`repro.materialize.counting`, which all want bindings one at a
time).  Pick an engine per call with ``evaluate(..., executor=...)`` or
globally with :func:`repro.exec.set_default_executor`.

Both engines fill the same :class:`EvaluationStatistics`, which the cost
model (:mod:`repro.engine.cost`) uses to compare the work needed to answer a
query directly against the work needed to answer its rewriting over
materialized views — the paper's query-optimization motivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.datalog.atoms import Atom, Comparison
from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.datalog.terms import Constant, FunctionTerm, Term, Variable
from repro.engine.database import Database
from repro.engine.relation import Relation, SkolemValue


@dataclass
class EvaluationStatistics:
    """Counters describing the work done by one or more evaluations."""

    #: Candidate tuples fetched from relations (index hits or scan rows).
    probes: int = 0
    #: Successful extensions of a partial binding by one subgoal.
    extensions: int = 0
    #: Number of answer tuples produced (before de-duplication).
    answers: int = 0
    #: Number of subgoals evaluated (per top-level call).
    subgoals: int = 0

    def merge(self, other: "EvaluationStatistics") -> None:
        self.probes += other.probes
        self.extensions += other.extensions
        self.answers += other.answers
        self.subgoals += other.subgoals

    @property
    def work(self) -> int:
        """A single scalar summarizing evaluation effort."""
        return self.probes + self.extensions


def _candidate_rows(
    relation: Relation, positions: Tuple[int, ...], key: Tuple[Any, ...]
) -> Sequence[Tuple[Any, ...]]:
    """Candidate tuples matching ``key`` on ``positions``.

    Relations maintain their per-position hash indexes incrementally (see
    :meth:`Relation.index_on`), so this is a dictionary lookup — there is no
    per-evaluation index build any more, and indexes survive across
    evaluations and small data deltas.
    """
    if not positions:
        return tuple(relation)
    return relation.index_on(positions).get(key, ())


Binding = Dict[Variable, Any]


def _ground_term(term: Term, binding: Binding) -> Tuple[bool, Any]:
    """Resolve a term to a value under a binding.

    Returns ``(True, value)`` when the term is ground under the binding and
    ``(False, None)`` otherwise.
    """
    if isinstance(term, Constant):
        return True, term.value
    if isinstance(term, Variable):
        if term in binding:
            return True, binding[term]
        return False, None
    if isinstance(term, FunctionTerm):
        values = []
        for arg in term.args:
            ok, value = _ground_term(arg, binding)
            if not ok:
                return False, None
            values.append(value)
        return True, SkolemValue(term.function, values)
    raise EvaluationError(f"cannot evaluate term {term!r}")


def _order_subgoals(query: ConjunctiveQuery, database: Database) -> List[Atom]:
    """Greedy join order: smallest relations first, then maximize bound variables.

    This is the interpreter (fallback) path's ordering; the compiled engine
    has its own cost-based ordering in :func:`repro.exec.compile.order_body`.
    Each iteration selects the minimum-score subgoal directly instead of
    re-sorting the whole remaining list, so ordering is O(n²) comparisons
    rather than O(n² log n).
    """
    remaining = list(query.body)
    if not remaining:
        return []

    def relation_size(atom: Atom) -> int:
        relation = database.relation(atom.predicate)
        return len(relation) if relation is not None else 0

    ordered: List[Atom] = []
    bound: set = set()
    # Seed with the most selective subgoal (fewest tuples, most constants).
    first = min(remaining, key=lambda a: (relation_size(a), -len(a.constants())))
    remaining.remove(first)
    ordered.append(first)
    bound.update(first.variables())
    while remaining:
        def score(atom: Atom) -> Tuple[int, int]:
            shared = sum(1 for v in atom.variables() if v in bound)
            return (-shared, relation_size(atom))

        chosen = min(remaining, key=score)
        remaining.remove(chosen)
        ordered.append(chosen)
        bound.update(chosen.variables())
    return ordered


def _comparison_ready(comparison: Comparison, binding: Binding) -> Optional[bool]:
    """Evaluate a comparison if both sides are ground; return None when not yet ground."""
    left_ok, left = _ground_term(comparison.left, binding)
    right_ok, right = _ground_term(comparison.right, binding)
    if not (left_ok and right_ok):
        return None
    if isinstance(left, SkolemValue) or isinstance(right, SkolemValue):
        # Skolem values are only comparable by (dis)equality.
        if comparison.op.value in ("=", "!="):
            return comparison.op.evaluate(left, right)
        return False
    return comparison.op.evaluate(left, right)


def evaluate_substitutions(
    query: ConjunctiveQuery,
    database: Database,
    statistics: Optional[EvaluationStatistics] = None,
) -> Iterator[Binding]:
    """Yield every satisfying assignment of the query's variables over the database.

    Assignments map variables to raw values; the caller projects onto the head
    to obtain answers.  Duplicates (assignments differing only on variables
    that do not occur in the query) are not produced because every variable in
    the binding occurs in the body.
    """
    stats = statistics if statistics is not None else EvaluationStatistics()
    ordered = _order_subgoals(query, database)
    stats.subgoals += len(ordered)
    comparisons = list(query.comparisons)

    # Boolean query with empty body: the head must be ground and always holds.
    if not ordered:
        if all(_comparison_ready(c, {}) for c in comparisons):
            yield {}
        return

    def check_comparisons(binding: Binding) -> bool:
        for comparison in comparisons:
            result = _comparison_ready(comparison, binding)
            if result is False:
                return False
        return True

    def extend(position: int, binding: Binding) -> Iterator[Binding]:
        if position == len(ordered):
            yield dict(binding)
            return
        atom = ordered[position]
        relation = database.relation(atom.predicate)
        if relation is None or len(relation) == 0:
            return
        if relation.arity != len(atom.args):
            raise EvaluationError(
                f"subgoal {atom} has arity {len(atom.args)} but relation "
                f"{relation.name} has arity {relation.arity}"
            )
        bound_positions: List[int] = []
        bound_values: List[Any] = []
        for index, term in enumerate(atom.args):
            ok, value = _ground_term(term, binding)
            if ok:
                bound_positions.append(index)
                bound_values.append(value)
        candidates = _candidate_rows(relation, tuple(bound_positions), tuple(bound_values))
        for row in candidates:
            stats.probes += 1
            new_binding = dict(binding)
            success = True
            for index, term in enumerate(atom.args):
                value = row[index]
                ok, ground_value = _ground_term(term, new_binding)
                if ok:
                    if ground_value != value:
                        success = False
                        break
                elif isinstance(term, Variable):
                    new_binding[term] = value
                else:
                    # A non-ground function term cannot be matched against a value.
                    success = False
                    break
            if not success:
                continue
            if not check_comparisons(new_binding):
                continue
            stats.extensions += 1
            yield from extend(position + 1, new_binding)

    yield from extend(0, {})


def evaluate_conjunctive_interpreted(
    query: ConjunctiveQuery,
    database: Database,
    statistics: Optional[EvaluationStatistics] = None,
) -> FrozenSet[Tuple[Any, ...]]:
    """Evaluate one conjunctive query with the backtracking interpreter.

    This is the engine the compiled executor falls back to; use
    :func:`evaluate` unless you specifically need the interpreter.
    """
    stats = statistics if statistics is not None else EvaluationStatistics()
    results: set = set()
    for binding in evaluate_substitutions(query, database, stats):
        row = []
        for term in query.head.args:
            ok, value = _ground_term(term, binding)
            if not ok:
                raise EvaluationError(
                    f"head term {term} of query {query.name} is not bound by the body"
                )
            row.append(value)
        stats.answers += 1
        results.add(tuple(row))
    return frozenset(results)


def evaluate(
    query: "ConjunctiveQuery | UnionQuery",
    database: Database,
    statistics: Optional[EvaluationStatistics] = None,
    executor: Optional[Any] = None,
) -> FrozenSet[Tuple[Any, ...]]:
    """Evaluate a query and return its set of answer tuples.

    For a union query, the result is the union of the disjuncts' answers.

    ``executor`` picks the execution engine: ``"compiled"`` (set-at-a-time
    physical plans, the default), ``"interpreted"`` (the backtracking
    interpreter), an executor instance (e.g. a session-owned
    :class:`repro.exec.CompiledExecutor` with its own plan cache), or None
    for the process-wide default (:func:`repro.exec.set_default_executor`).
    Both engines return identical answer sets; the compiled engine falls
    back to the interpreter per-disjunct for queries with function terms.
    """
    from repro.exec import resolve_executor  # deferred: repro.exec imports us

    stats = statistics if statistics is not None else EvaluationStatistics()
    return resolve_executor(executor).evaluate(query, database, stats)


def evaluate_boolean(
    query: "ConjunctiveQuery | UnionQuery",
    database: Database,
    statistics: Optional[EvaluationStatistics] = None,
) -> bool:
    """Whether the query has at least one answer over the database.

    Always uses the interpreter: its lazy enumeration stops at the first
    satisfying assignment, which the set-at-a-time engine (computing the
    whole answer set) cannot beat for existence checks.
    """
    if isinstance(query, UnionQuery):
        return any(evaluate_boolean(q, database, statistics) for q in query.disjuncts)
    for _ in evaluate_substitutions(query, database, statistics):
        return True
    return False


def materialize_views(
    views: Iterable, database: Database, executor: Optional[Any] = None
) -> Database:
    """Materialize a collection of views over a base database.

    Returns a new database with one relation per view, named after the view
    and containing the view's answers over ``database``.  This is the "view
    instance" against which rewritings are evaluated.  Each definition is
    evaluated through ``executor`` (default: the compiled engine).
    """
    from repro.datalog.views import View, ViewSet  # local import to avoid a cycle

    out = Database()
    for view in views:
        if not isinstance(view, View):
            raise EvaluationError(f"materialize_views expects View objects, got {view!r}")
        answers = evaluate(view.definition, database, executor=executor)
        out.ensure_relation(view.name, view.arity)
        for row in answers:
            out.add_fact(view.name, row)
    return out
