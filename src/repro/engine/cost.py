"""A simple cost model for comparing query plans.

The PODS'95 paper motivates view usability by cost: a view is *useful* when
answering the query through it is cheaper than answering the query directly
from the base relations.  Any monotone cost model suffices to exercise that
argument; this module provides two:

* :func:`estimate_cost` — a textbook cardinality estimate: the expected size
  of the intermediate results of a left-deep join over the subgoals, using
  relation sizes and distinct-value counts for join selectivities.  The
  counts come from :mod:`repro.exec.stats` — the same version-validated
  statistics snapshots that drive the compiled executor's join ordering —
  so repeated estimates over a stable database never rescan a column.
* :func:`measured_cost` — actually evaluate the query and report the work
  counters of the evaluator (probes + binding extensions).  This is the value
  used in the E7 benchmark tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.datalog.terms import Constant, Variable
from repro.engine.database import Database
from repro.engine.evaluate import EvaluationStatistics, evaluate


@dataclass
class CostModel:
    """Tunable constants of the estimator."""

    #: Cost charged per tuple scanned or produced.
    tuple_cost: float = 1.0
    #: Default selectivity of an equality join when statistics are missing.
    default_join_selectivity: float = 0.1
    #: Default selectivity of a comparison subgoal.
    comparison_selectivity: float = 0.33


def _distinct_values(database: Database, atom: Atom, position: int) -> int:
    from repro.exec.stats import statistics_for  # deferred: repro.exec imports engine

    return statistics_for(database).distinct(atom.predicate, position)


def estimate_cost(
    query: "ConjunctiveQuery | UnionQuery",
    database: Database,
    model: Optional[CostModel] = None,
) -> float:
    """Estimated cost (expected intermediate tuples) of evaluating ``query``.

    The estimate walks the subgoals in the order written, maintaining an
    estimated cardinality of the partial join and a set of bound variables.
    Each new subgoal multiplies cardinality by its relation size and divides
    by the product of the distinct-value counts of the join columns.  The cost
    is the sum of the intermediate cardinalities (a proxy for work), scaled by
    ``tuple_cost``.
    """
    model = model or CostModel()
    if isinstance(query, UnionQuery):
        return sum(estimate_cost(q, database, model) for q in query.disjuncts)

    bound: set = set()
    cardinality = 1.0
    total = 0.0
    for atom in query.body:
        relation = database.relation(atom.predicate)
        size = len(relation) if relation is not None else 0
        if size == 0:
            return total  # empty relation: the plan short-circuits
        selectivity = 1.0
        for position, term in enumerate(atom.args):
            if isinstance(term, Constant):
                selectivity /= _distinct_values(database, atom, position)
            elif isinstance(term, Variable) and term in bound:
                selectivity /= max(
                    _distinct_values(database, atom, position), 1
                )
        cardinality = cardinality * size * max(selectivity, 1e-9)
        cardinality = max(cardinality, 0.0)
        total += cardinality
        bound.update(atom.variables())
    for _ in query.comparisons:
        cardinality *= model.comparison_selectivity
        total += cardinality
    return total * model.tuple_cost


def measured_cost(
    query: "ConjunctiveQuery | UnionQuery",
    database: Database,
    executor: Optional[Any] = None,
) -> Tuple[float, EvaluationStatistics]:
    """Evaluate the query and report (work, statistics).

    ``work`` is the evaluator's probe + extension count — a deterministic,
    platform-independent proxy for running time that the benchmark tables use
    alongside wall-clock timings.  ``executor`` selects the engine measured
    (default: the compiled engine); both engines fill the same counters.
    """
    stats = EvaluationStatistics()
    evaluate(query, database, stats, executor=executor)
    return float(stats.work), stats


def plan_comparison(
    original: "ConjunctiveQuery | UnionQuery",
    rewritten: "ConjunctiveQuery | UnionQuery",
    base_database: Database,
    view_database: Database,
) -> Dict[str, float]:
    """Compare the measured cost of a query against its rewriting over views.

    Returns a dictionary with the measured work of both plans and the speedup
    factor (original / rewritten; > 1 means the rewriting is cheaper).
    """
    original_cost, _ = measured_cost(original, base_database)
    rewritten_cost, _ = measured_cost(rewritten, view_database)
    speedup = original_cost / rewritten_cost if rewritten_cost > 0 else float("inf")
    return {
        "original_work": original_cost,
        "rewritten_work": rewritten_cost,
        "speedup": speedup,
    }
