"""Databases: collections of relations, plus conversions to/from atoms."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import SchemaError
from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Term
from repro.engine.relation import Relation, SkolemValue


def term_to_value(term: Term) -> Any:
    """Convert a ground term to the raw value stored in relations."""
    if isinstance(term, Constant):
        return term.value
    raise SchemaError(f"cannot store non-constant term {term!r} in a database")


def value_to_term(value: Any) -> Term:
    """Convert a raw stored value back to a term (Skolems keep their identity)."""
    if isinstance(value, SkolemValue):
        # Represented as a constant wrapping a printable, unique string.  The
        # value is only used for display; joins happen at the value level.
        return Constant(f"@skolem:{value}")
    return Constant(value)


class Database:
    """A mutable in-memory database: a mapping from relation names to relations."""

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: Dict[str, Relation] = {}
        #: Monotonic mutation counter.  Every call that changes the database's
        #: contents bumps it, so caches keyed on (database, version) can detect
        #: staleness without hashing the data.
        self._version = 0
        for relation in relations:
            if relation.name in self._relations:
                raise SchemaError(f"duplicate relation name: {relation.name}")
            self._relations[relation.name] = relation.copy()

    @property
    def version(self) -> int:
        """The current mutation counter (see ``__init__``)."""
        return self._version

    # -- construction ------------------------------------------------------------
    @classmethod
    def from_atoms(cls, atoms: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms (facts)."""
        db = cls()
        for atom in atoms:
            db.add_atom(atom)
        return db

    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[Sequence[Any]]]) -> "Database":
        """Build a database from ``{relation_name: [tuple, ...]}``."""
        db = cls()
        for name, rows in data.items():
            for row in rows:
                db.add_fact(name, row)
        return db

    # -- mutation -----------------------------------------------------------------
    def add_fact(self, relation_name: str, row: Sequence[Any]) -> bool:
        """Insert a tuple into a relation, creating the relation if needed."""
        values = tuple(row)
        relation = self._relations.get(relation_name)
        if relation is None:
            relation = Relation(relation_name, len(values))
            self._relations[relation_name] = relation
            self._version += 1
        added = relation.add(values)
        if added:
            self._version += 1
        return added

    def add_atom(self, atom: Atom) -> bool:
        """Insert a ground atom as a fact."""
        if not atom.is_ground():
            raise SchemaError(f"cannot insert non-ground atom {atom} as a fact")
        return self.add_fact(atom.predicate, tuple(term_to_value(t) for t in atom.args))

    def remove_fact(self, relation_name: str, row: Sequence[Any]) -> bool:
        """Delete a tuple from a relation; returns True if it was present.

        This is the deletion counterpart of :meth:`add_fact`: it routes the
        mutation through the database so the version counter observes it.
        Calling :meth:`Relation.discard` directly on a relation obtained from
        the database bypasses the counter and can leave stale cache entries
        alive — always delete through here (or :meth:`apply_delta`).
        """
        relation = self._relations.get(relation_name)
        if relation is None:
            return False
        removed = relation.discard(tuple(row))
        if removed:
            self._version += 1
        return removed

    def remove_atom(self, atom: Atom) -> bool:
        """Delete a ground atom; returns True if it was present."""
        if not atom.is_ground():
            raise SchemaError(f"cannot delete non-ground atom {atom}")
        return self.remove_fact(atom.predicate, tuple(term_to_value(t) for t in atom.args))

    def apply_delta(self, delta: "Delta") -> "Delta":
        """Apply a batch of insertions and deletions; returns the effective delta.

        Deletions are applied before insertions (the staging the incremental
        view-maintenance rules assume).  The returned delta contains only the
        rows that actually changed the database — deletions of absent rows and
        insertions of present rows are dropped — so callers can scope cache
        invalidation and view maintenance to real changes.  The version
        counter observes every applied change.
        """
        from repro.materialize.delta import Delta  # local import to avoid a cycle

        removed: Dict[str, Set[Tuple[Any, ...]]] = {}
        inserted: Dict[str, Set[Tuple[Any, ...]]] = {}
        for name, rows in delta.removed.items():
            for row in rows:
                if self.remove_fact(name, row):
                    removed.setdefault(name, set()).add(tuple(row))
        for name, rows in delta.inserted.items():
            for row in rows:
                if self.add_fact(name, row):
                    inserted.setdefault(name, set()).add(tuple(row))
        return Delta(inserted=inserted, removed=removed)

    def add_relation(self, relation: Relation) -> None:
        """Add (or replace) an entire relation."""
        self._relations[relation.name] = relation.copy()
        self._version += 1

    def ensure_relation(self, name: str, arity: int) -> Relation:
        """Get the named relation, creating an empty one of the given arity if absent.

        Note that the returned :class:`Relation` is mutable; callers that add
        tuples to it directly bypass the version counter and should go through
        :meth:`add_fact` when cache invalidation matters.
        """
        relation = self._relations.get(name)
        if relation is None:
            relation = Relation(name, arity)
            self._relations[name] = relation
            self._version += 1
        elif relation.arity != arity:
            raise SchemaError(
                f"relation {name} exists with arity {relation.arity}, requested {arity}"
            )
        return relation

    def remove_relation(self, name: str) -> None:
        if self._relations.pop(name, None) is not None:
            self._version += 1

    # -- access ----------------------------------------------------------------------
    def relation(self, name: str) -> Optional[Relation]:
        return self._relations.get(name)

    def schema(self) -> Dict[str, int]:
        """Relation name → arity, without touching any relation's content.

        Storage-backed databases keep this lazy: reading the schema never
        hydrates a cold relation, so catalog validation over a recovered
        million-fact database costs nothing.
        """
        return {name: relation.arity for name, relation in self._relations.items()}

    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def relations(self) -> Tuple[Relation, ...]:
        return tuple(self._relations.values())

    def tuples(self, name: str) -> frozenset:
        relation = self._relations.get(name)
        return relation.tuples() if relation is not None else frozenset()

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine = {name: rel.tuples() for name, rel in self._relations.items() if len(rel)}
        theirs = {name: rel.tuples() for name, rel in other._relations.items() if len(rel)}
        return mine == theirs

    def __repr__(self) -> str:
        inner = ", ".join(f"{r.name}[{len(r)}]" for r in self._relations.values())
        return f"Database({inner})"

    # -- whole-database operations -------------------------------------------------------
    def size(self) -> int:
        """Total number of facts across all relations."""
        return sum(len(r) for r in self._relations.values())

    def storage_stats(self) -> Dict[str, Any]:
        """Per-relation physical storage counters (see :meth:`Relation.storage_stats`)."""
        return {
            name: relation.storage_stats()
            for name, relation in self._relations.items()
        }

    def copy(self) -> "Database":
        return Database(self._relations.values())

    def merge(self, other: "Database") -> "Database":
        """A new database containing the facts of both (arity conflicts raise)."""
        merged = self.copy()
        for relation in other:
            target = merged.ensure_relation(relation.name, relation.arity)
            target.add_all(relation.tuples())
        return merged

    def facts(self) -> List[Atom]:
        """All facts of the database as ground atoms (sorted deterministically)."""
        atoms: List[Atom] = []
        for name in sorted(self._relations):
            relation = self._relations[name]
            for row in sorted(relation.tuples(), key=_row_sort_key):
                atoms.append(Atom(name, tuple(value_to_term(v) for v in row)))
        return atoms

    def active_domain(self) -> Set[Any]:
        """All values appearing anywhere in the database."""
        domain: Set[Any] = set()
        for relation in self._relations.values():
            domain.update(relation.active_domain())
        return domain

    def restrict(self, names: Iterable[str]) -> "Database":
        """The sub-database containing only the named relations."""
        wanted = set(names)
        return Database([r for r in self._relations.values() if r.name in wanted])

    def rename_relation(self, old: str, new: str) -> "Database":
        """A copy of the database with one relation renamed."""
        out = Database()
        for relation in self._relations.values():
            name = new if relation.name == old else relation.name
            out.add_relation(Relation(name, relation.arity, relation.tuples()))
        return out


def _row_sort_key(row: Tuple[Any, ...]) -> Tuple:
    return tuple((str(type(v)), str(v)) for v in row)
