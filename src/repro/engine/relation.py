"""Relations: named sets of fixed-arity tuples in columnar storage, and Skolem values.

Storage layout (the PR-8 columnar refactor)
-------------------------------------------
A relation keeps its data in **per-position value arrays** plus a
**row-presence dict**:

* ``_columns[p]`` is a plain Python list holding every value of column ``p``,
  addressed by *slot* — a small integer assigned when the row is inserted and
  recycled (via a free list) when it is discarded;
* ``_rows`` maps each live row tuple to its slot.  It is the membership test,
  the iteration order, and the source of truth for which slots are live.

Hash indexes (:meth:`Relation.index_on`) map key projections to **ordered
bucket dicts** ``{row_tuple: slot}``.  Iterating a bucket yields row tuples
(so existing join code is unchanged), while ``bucket.values()`` yields slots
for columnar probing — the compiled executor reads only the columns a join
step actually needs (:mod:`repro.exec.plan`) instead of materializing whole
rows.  Dict-backed buckets also make :meth:`discard` O(arity + #indexes):
deleting a row from a bucket is a dict deletion, not a list scan, so
delete-heavy deltas are linear instead of quadratic.

Per-column Skolem counters are maintained on every mutation; the parallel
executor consults them (:attr:`Relation.skolem_count`) to fall back to serial
execution when a partitioning column carries Skolem values.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import SchemaError


class SkolemValue:
    """An opaque value invented by the inverse-rules algorithm.

    A Skolem value ``f(v1, ..., vk)`` stands for the unknown witness of a
    view's existential variable.  Two Skolem values are equal iff they were
    built from the same function name and the same arguments; they are never
    equal to ordinary values.  Query answers containing Skolem values are not
    certain answers and are filtered out by the certain-answer computation.
    """

    __slots__ = ("function", "args")

    def __init__(self, function: str, args: Sequence[Any] = ()):
        object.__setattr__(self, "function", function)
        object.__setattr__(self, "args", tuple(args))

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("SkolemValue is immutable")

    def __reduce__(self):
        # Default pickling would restore slots via setattr (blocked above);
        # reconstruct through the constructor instead so Skolem-bearing
        # answers can cross process boundaries (the parallel executor).
        return (SkolemValue, (self.function, self.args))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SkolemValue)
            and other.function == self.function
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("skolem", self.function, self.args))

    def __repr__(self) -> str:
        return f"SkolemValue({self.function!r}, {list(self.args)!r})"

    def __str__(self) -> str:
        return f"{self.function}({', '.join(str(a) for a in self.args)})"


def contains_skolem(values: Iterable[Any]) -> bool:
    """Whether any value in a tuple (or iterable) is a Skolem value."""
    return any(isinstance(v, SkolemValue) for v in values)


#: A hash-index bucket: an insertion-ordered mapping from row tuple to slot.
#: Iterate it for row tuples, read ``.values()`` for column-addressable slots.
Bucket = Dict[Tuple[Any, ...], int]


class Relation:
    """A named, fixed-arity set of tuples of plain Python values.

    The relation stores raw values (``str``/``int``/``float``/``bool`` or
    :class:`SkolemValue`), not term objects, which keeps joins cheap.  See the
    module docstring for the columnar layout; the mutation/access API is
    unchanged from the row-oriented implementation.
    """

    __slots__ = (
        "name",
        "arity",
        "_columns",
        "_rows",
        "_free",
        "_skolem_counts",
        "_indexes",
    )

    def __init__(self, name: str, arity: int, tuples: Iterable[Tuple[Any, ...]] = ()):
        if arity < 0:
            raise SchemaError("relation arity must be non-negative")
        self.name = name
        self.arity = arity
        #: Per-position value arrays, addressed by slot.  Discarded slots keep
        #: stale values; they are unreachable because only ``_rows`` (and the
        #: index buckets, which mirror it) hand out slots.
        self._columns: Tuple[List[Any], ...] = tuple([] for _ in range(arity))
        #: Row-presence dict: live row tuple -> slot (insertion-ordered).
        self._rows: Dict[Tuple[Any, ...], int] = {}
        #: Recycled slots of discarded rows, reused before growing columns.
        self._free: List[int] = []
        #: Per-column count of live rows whose value there is a SkolemValue.
        self._skolem_counts: List[int] = [0] * arity
        # Lazily-built hash indexes keyed by column positions, maintained
        # incrementally by add/discard so deltas never force a rebuild.
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple[Any, ...], Bucket]] = {}
        for row in tuples:
            self.add(row)

    # -- mutation --------------------------------------------------------------
    def add(self, row: Sequence[Any]) -> bool:
        """Insert a tuple; returns True if it was new."""
        tup = tuple(row)
        if len(tup) != self.arity:
            raise SchemaError(
                f"relation {self.name} has arity {self.arity}, got tuple of length {len(tup)}"
            )
        if tup in self._rows:
            return False
        columns = self._columns
        if self._free:
            slot = self._free.pop()
            for position, value in enumerate(tup):
                columns[position][slot] = value
        else:
            slot = len(self._rows)
            for position, value in enumerate(tup):
                columns[position].append(value)
        self._rows[tup] = slot
        skolem_counts = self._skolem_counts
        for position, value in enumerate(tup):
            if isinstance(value, SkolemValue):
                skolem_counts[position] += 1
        for positions, index in self._indexes.items():
            key = tuple(tup[p] for p in positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = {tup: slot}
            else:
                bucket[tup] = slot
        return True

    def add_all(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many tuples; returns the number of new tuples."""
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def discard(self, row: Sequence[Any]) -> bool:
        """Remove a tuple if present; returns True if it was there.

        O(arity + #indexes): index buckets are dicts, so removing the row from
        each is a single deletion — repeated delete/reinsert churn on a hot
        key never degrades into a per-delete bucket scan.

        Note: a bare relation carries no version counter.  When the relation
        belongs to a :class:`repro.engine.database.Database` and cache
        invalidation matters, mutate through :meth:`Database.remove_fact` (or
        :meth:`Database.apply_delta`) so the database's version counter — and
        any change log — observes the mutation.
        """
        tup = tuple(row)
        slot = self._rows.pop(tup, None)
        if slot is None:
            return False
        self._free.append(slot)
        skolem_counts = self._skolem_counts
        for position, value in enumerate(tup):
            if isinstance(value, SkolemValue):
                skolem_counts[position] -= 1
        for positions, index in self._indexes.items():
            key = tuple(tup[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.pop(tup, None)
                if not bucket:
                    del index[key]
        return True

    # -- access -----------------------------------------------------------------
    def tuples(self) -> FrozenSet[Tuple[Any, ...]]:
        return frozenset(self._rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: object) -> bool:
        return tuple(row) in self._rows if isinstance(row, (tuple, list)) else False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._rows.keys() == other._rows.keys()
        )

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, size={len(self._rows)})"

    # -- columnar access ---------------------------------------------------------
    def column(self, position: int) -> Sequence[Any]:
        """The raw backing array of one column, addressed by slot.

        Slots of discarded rows hold stale values; index only with slots
        obtained from :meth:`slots`, an index bucket's ``.values()``, or the
        row-presence dict.  Treat the array as read-only.
        """
        if not 0 <= position < self.arity:
            raise SchemaError(
                f"column position {position} out of range for arity {self.arity}"
            )
        return self._columns[position]

    def columns(self) -> Tuple[Sequence[Any], ...]:
        """All column arrays (see :meth:`column` for the slot contract)."""
        return self._columns

    def slots(self) -> Iterable[int]:
        """The live slots, in row insertion order (paired with ``__iter__``)."""
        return self._rows.values()

    def skolem_count(self, position: int) -> int:
        """How many live rows carry a Skolem value in one column (O(1))."""
        if not 0 <= position < self.arity:
            raise SchemaError(
                f"column position {position} out of range for arity {self.arity}"
            )
        return self._skolem_counts[position]

    def has_skolems(self) -> bool:
        """Whether any live row carries a Skolem value in any column (O(arity))."""
        return any(count for count in self._skolem_counts)

    def storage_stats(self) -> Dict[str, Any]:
        """Occupancy of the columnar store (for observability snapshots)."""
        capacity = len(self._columns[0]) if self.arity else len(self._rows)
        return {
            "rows": len(self._rows),
            "capacity": capacity,
            "free_slots": len(self._free),
            "indexes": len(self._indexes),
            "skolem_counts": list(self._skolem_counts),
        }

    # -- relational helpers -------------------------------------------------------
    def copy(self) -> "Relation":
        return Relation(self.name, self.arity, self._rows)

    def project(self, positions: Sequence[int]) -> Set[Tuple[Any, ...]]:
        """The projection of the relation onto the given column positions."""
        for position in positions:
            if not 0 <= position < self.arity:
                raise SchemaError(
                    f"projection position {position} out of range for arity {self.arity}"
                )
        columns = [self._columns[p] for p in positions]
        return {tuple(c[slot] for c in columns) for slot in self._rows.values()}

    def select(self, predicate: Callable[[Tuple[Any, ...]], bool]) -> "Relation":
        """The sub-relation of tuples satisfying a Python predicate."""
        return Relation(self.name, self.arity, (row for row in self._rows if predicate(row)))

    def column_values(self, position: int) -> Set[Any]:
        """Distinct values appearing in one column."""
        column = self.column(position)
        return {column[slot] for slot in self._rows.values()}

    def active_domain(self) -> Set[Any]:
        """All values appearing anywhere in the relation."""
        domain: Set[Any] = set()
        live = self._rows.values()
        for column in self._columns:
            domain.update(column[slot] for slot in live)
        return domain

    def index_on(self, positions: Sequence[int]) -> Dict[Tuple[Any, ...], Bucket]:
        """A hash index mapping key projections to the rows carrying them.

        Each bucket is an insertion-ordered dict ``{row_tuple: slot}`` —
        iterate it for row tuples (the pre-columnar contract) or read
        ``.values()`` for slots into the column arrays.  The index is built
        once per position tuple and then maintained incrementally by
        :meth:`add`/:meth:`discard`, so repeated lookups (and lookups after
        small deltas) never rescan the relation.  The returned mapping is the
        live internal index: treat it as read-only.
        """
        key_positions = tuple(positions)
        for position in key_positions:
            if not 0 <= position < self.arity:
                raise SchemaError(
                    f"index position {position} out of range for arity {self.arity}"
                )
        index = self._indexes.get(key_positions)
        if index is None:
            index = {}
            for row, slot in self._rows.items():
                key = tuple(row[p] for p in key_positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = {row: slot}
                else:
                    bucket[row] = slot
            self._indexes[key_positions] = index
        return index
