"""Relations: named sets of fixed-arity tuples, and Skolem values."""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.errors import SchemaError


class SkolemValue:
    """An opaque value invented by the inverse-rules algorithm.

    A Skolem value ``f(v1, ..., vk)`` stands for the unknown witness of a
    view's existential variable.  Two Skolem values are equal iff they were
    built from the same function name and the same arguments; they are never
    equal to ordinary values.  Query answers containing Skolem values are not
    certain answers and are filtered out by the certain-answer computation.
    """

    __slots__ = ("function", "args")

    def __init__(self, function: str, args: Sequence[Any] = ()):
        object.__setattr__(self, "function", function)
        object.__setattr__(self, "args", tuple(args))

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("SkolemValue is immutable")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SkolemValue)
            and other.function == self.function
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("skolem", self.function, self.args))

    def __repr__(self) -> str:
        return f"SkolemValue({self.function!r}, {list(self.args)!r})"

    def __str__(self) -> str:
        return f"{self.function}({', '.join(str(a) for a in self.args)})"


def contains_skolem(values: Iterable[Any]) -> bool:
    """Whether any value in a tuple (or iterable) is a Skolem value."""
    return any(isinstance(v, SkolemValue) for v in values)


class Relation:
    """A named, fixed-arity set of tuples of plain Python values.

    The relation stores raw values (``str``/``int``/``float``/``bool`` or
    :class:`SkolemValue`), not term objects, which keeps joins cheap.
    """

    __slots__ = ("name", "arity", "_tuples")

    def __init__(self, name: str, arity: int, tuples: Iterable[Tuple[Any, ...]] = ()):
        if arity < 0:
            raise SchemaError("relation arity must be non-negative")
        self.name = name
        self.arity = arity
        self._tuples: Set[Tuple[Any, ...]] = set()
        for row in tuples:
            self.add(row)

    # -- mutation --------------------------------------------------------------
    def add(self, row: Sequence[Any]) -> bool:
        """Insert a tuple; returns True if it was new."""
        tup = tuple(row)
        if len(tup) != self.arity:
            raise SchemaError(
                f"relation {self.name} has arity {self.arity}, got tuple of length {len(tup)}"
            )
        before = len(self._tuples)
        self._tuples.add(tup)
        return len(self._tuples) != before

    def add_all(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many tuples; returns the number of new tuples."""
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def discard(self, row: Sequence[Any]) -> None:
        self._tuples.discard(tuple(row))

    # -- access -----------------------------------------------------------------
    def tuples(self) -> FrozenSet[Tuple[Any, ...]]:
        return frozenset(self._tuples)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, row: object) -> bool:
        return tuple(row) in self._tuples if isinstance(row, (tuple, list)) else False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._tuples == other._tuples
        )

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, size={len(self._tuples)})"

    # -- relational helpers -------------------------------------------------------
    def copy(self) -> "Relation":
        return Relation(self.name, self.arity, self._tuples)

    def project(self, positions: Sequence[int]) -> Set[Tuple[Any, ...]]:
        """The projection of the relation onto the given column positions."""
        for position in positions:
            if not 0 <= position < self.arity:
                raise SchemaError(
                    f"projection position {position} out of range for arity {self.arity}"
                )
        return {tuple(row[p] for p in positions) for row in self._tuples}

    def select(self, predicate: Callable[[Tuple[Any, ...]], bool]) -> "Relation":
        """The sub-relation of tuples satisfying a Python predicate."""
        return Relation(self.name, self.arity, (row for row in self._tuples if predicate(row)))

    def column_values(self, position: int) -> Set[Any]:
        """Distinct values appearing in one column."""
        return {row[position] for row in self._tuples}

    def active_domain(self) -> Set[Any]:
        """All values appearing anywhere in the relation."""
        domain: Set[Any] = set()
        for row in self._tuples:
            domain.update(row)
        return domain

    def index_on(self, positions: Sequence[int]) -> Dict[Tuple[Any, ...], List[Tuple[Any, ...]]]:
        """A hash index mapping key projections to the tuples carrying them."""
        index: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        for row in self._tuples:
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)
        return index
