"""Relations: named sets of fixed-arity tuples, and Skolem values."""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.errors import SchemaError


class SkolemValue:
    """An opaque value invented by the inverse-rules algorithm.

    A Skolem value ``f(v1, ..., vk)`` stands for the unknown witness of a
    view's existential variable.  Two Skolem values are equal iff they were
    built from the same function name and the same arguments; they are never
    equal to ordinary values.  Query answers containing Skolem values are not
    certain answers and are filtered out by the certain-answer computation.
    """

    __slots__ = ("function", "args")

    def __init__(self, function: str, args: Sequence[Any] = ()):
        object.__setattr__(self, "function", function)
        object.__setattr__(self, "args", tuple(args))

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("SkolemValue is immutable")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SkolemValue)
            and other.function == self.function
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("skolem", self.function, self.args))

    def __repr__(self) -> str:
        return f"SkolemValue({self.function!r}, {list(self.args)!r})"

    def __str__(self) -> str:
        return f"{self.function}({', '.join(str(a) for a in self.args)})"


def contains_skolem(values: Iterable[Any]) -> bool:
    """Whether any value in a tuple (or iterable) is a Skolem value."""
    return any(isinstance(v, SkolemValue) for v in values)


class Relation:
    """A named, fixed-arity set of tuples of plain Python values.

    The relation stores raw values (``str``/``int``/``float``/``bool`` or
    :class:`SkolemValue`), not term objects, which keeps joins cheap.
    """

    __slots__ = ("name", "arity", "_tuples", "_indexes")

    def __init__(self, name: str, arity: int, tuples: Iterable[Tuple[Any, ...]] = ()):
        if arity < 0:
            raise SchemaError("relation arity must be non-negative")
        self.name = name
        self.arity = arity
        self._tuples: Set[Tuple[Any, ...]] = set()
        # Lazily-built hash indexes keyed by column positions, maintained
        # incrementally by add/discard so deltas never force a rebuild.
        self._indexes: Dict[
            Tuple[int, ...], Dict[Tuple[Any, ...], List[Tuple[Any, ...]]]
        ] = {}
        for row in tuples:
            self.add(row)

    # -- mutation --------------------------------------------------------------
    def add(self, row: Sequence[Any]) -> bool:
        """Insert a tuple; returns True if it was new."""
        tup = tuple(row)
        if len(tup) != self.arity:
            raise SchemaError(
                f"relation {self.name} has arity {self.arity}, got tuple of length {len(tup)}"
            )
        if tup in self._tuples:
            return False
        self._tuples.add(tup)
        for positions, index in self._indexes.items():
            index.setdefault(tuple(tup[p] for p in positions), []).append(tup)
        return True

    def add_all(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many tuples; returns the number of new tuples."""
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def discard(self, row: Sequence[Any]) -> bool:
        """Remove a tuple if present; returns True if it was there.

        Note: a bare relation carries no version counter.  When the relation
        belongs to a :class:`repro.engine.database.Database` and cache
        invalidation matters, mutate through :meth:`Database.remove_fact` (or
        :meth:`Database.apply_delta`) so the database's version counter — and
        any change log — observes the mutation.
        """
        tup = tuple(row)
        if tup not in self._tuples:
            return False
        self._tuples.remove(tup)
        for positions, index in self._indexes.items():
            key = tuple(tup[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                try:
                    bucket.remove(tup)
                except ValueError:  # pragma: no cover - indexes mirror _tuples
                    pass
                if not bucket:
                    del index[key]
        return True

    # -- access -----------------------------------------------------------------
    def tuples(self) -> FrozenSet[Tuple[Any, ...]]:
        return frozenset(self._tuples)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, row: object) -> bool:
        return tuple(row) in self._tuples if isinstance(row, (tuple, list)) else False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._tuples == other._tuples
        )

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, size={len(self._tuples)})"

    # -- relational helpers -------------------------------------------------------
    def copy(self) -> "Relation":
        return Relation(self.name, self.arity, self._tuples)

    def project(self, positions: Sequence[int]) -> Set[Tuple[Any, ...]]:
        """The projection of the relation onto the given column positions."""
        for position in positions:
            if not 0 <= position < self.arity:
                raise SchemaError(
                    f"projection position {position} out of range for arity {self.arity}"
                )
        return {tuple(row[p] for p in positions) for row in self._tuples}

    def select(self, predicate: Callable[[Tuple[Any, ...]], bool]) -> "Relation":
        """The sub-relation of tuples satisfying a Python predicate."""
        return Relation(self.name, self.arity, (row for row in self._tuples if predicate(row)))

    def column_values(self, position: int) -> Set[Any]:
        """Distinct values appearing in one column."""
        return {row[position] for row in self._tuples}

    def active_domain(self) -> Set[Any]:
        """All values appearing anywhere in the relation."""
        domain: Set[Any] = set()
        for row in self._tuples:
            domain.update(row)
        return domain

    def index_on(self, positions: Sequence[int]) -> Dict[Tuple[Any, ...], List[Tuple[Any, ...]]]:
        """A hash index mapping key projections to the tuples carrying them.

        The index is built once per position tuple and then maintained
        incrementally by :meth:`add`/:meth:`discard`, so repeated lookups (and
        lookups after small deltas) never rescan the relation.  The returned
        mapping is the live internal index: treat it as read-only.
        """
        key_positions = tuple(positions)
        for position in key_positions:
            if not 0 <= position < self.arity:
                raise SchemaError(
                    f"index position {position} out of range for arity {self.arity}"
                )
        index = self._indexes.get(key_positions)
        if index is None:
            index = {}
            for row in self._tuples:
                key = tuple(row[p] for p in key_positions)
                index.setdefault(key, []).append(row)
            self._indexes[key_positions] = index
        return index
