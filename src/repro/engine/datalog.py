"""Positive datalog programs evaluated to fixpoint.

The inverse-rules rewriting algorithm produces a datalog program whose rules
have view predicates in their bodies and base predicates (possibly with Skolem
function terms) in their heads, plus the original query on top.  Evaluating
that program over the materialized view instance yields exactly the certain
answers of the query, after discarding answers containing Skolem values.

The evaluator here is a straightforward naive/semi-naive iteration: it applies
every rule to the current database until no new facts are produced.  Programs
produced by the library are non-recursive, so the fixpoint is reached after a
bounded number of rounds, but the evaluator does not rely on that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import EvaluationError
from repro.datalog.atoms import Atom
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.engine.database import Database
from repro.engine.evaluate import (
    EvaluationStatistics,
    _ground_term,
    evaluate_substitutions,
)


@dataclass
class DatalogProgram:
    """A positive datalog program: a list of rules plus designated output predicates.

    Each rule is a :class:`ConjunctiveQuery`; the rule's head predicate is an
    intensional (derived) predicate.  ``outputs`` names the predicates whose
    facts the caller is interested in (defaults to all intensional predicates).
    """

    rules: List[ConjunctiveQuery] = field(default_factory=list)
    outputs: Optional[Sequence[str]] = None

    def intensional_predicates(self) -> Set[str]:
        return {rule.head.predicate for rule in self.rules}

    def extensional_predicates(self) -> Set[str]:
        idb = self.intensional_predicates()
        edb: Set[str] = set()
        for rule in self.rules:
            for atom in rule.body:
                if atom.predicate not in idb:
                    edb.add(atom.predicate)
        return edb

    def add_rule(self, rule: ConjunctiveQuery) -> None:
        self.rules.append(rule)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def __str__(self) -> str:
        from repro.datalog.printer import to_datalog

        return "\n".join(to_datalog(rule) for rule in self.rules)

    def stratify(self) -> List[List[ConjunctiveQuery]]:
        """Group rules into strata such that each stratum only reads from earlier ones.

        Positive programs always admit such an ordering when they are
        non-recursive; recursive components end up in the same stratum and are
        iterated to fixpoint together.
        """
        # Build dependency graph between intensional predicates.
        idb = self.intensional_predicates()
        depends: Dict[str, Set[str]] = {p: set() for p in idb}
        for rule in self.rules:
            for atom in rule.body:
                if atom.predicate in idb:
                    depends[rule.head.predicate].add(atom.predicate)
        # Compute strongly connected components via Tarjan-lite (iterative Kosaraju).
        order = _topological_components(depends)
        strata: List[List[ConjunctiveQuery]] = []
        for component in order:
            stratum = [r for r in self.rules if r.head.predicate in component]
            if stratum:
                strata.append(stratum)
        return strata


def _topological_components(depends: Dict[str, Set[str]]) -> List[Set[str]]:
    """Strongly connected components of the dependency graph, in topological order."""
    # Kosaraju's algorithm over a small graph.
    nodes = list(depends)
    visited: Set[str] = set()
    finish_order: List[str] = []

    def dfs(start: str, graph: Dict[str, Set[str]], seen: Set[str], out: List[str]) -> None:
        stack: List[Tuple[str, Iterable[str]]] = [(start, iter(graph.get(start, ())))]
        seen.add(start)
        while stack:
            node, it = stack[-1]
            advanced = False
            for neighbour in it:
                if neighbour in graph and neighbour not in seen:
                    seen.add(neighbour)
                    stack.append((neighbour, iter(graph.get(neighbour, ()))))
                    advanced = True
                    break
            if not advanced:
                out.append(node)
                stack.pop()

    for node in nodes:
        if node not in visited:
            dfs(node, depends, visited, finish_order)

    reverse: Dict[str, Set[str]] = {n: set() for n in nodes}
    for node, targets in depends.items():
        for target in targets:
            if target in reverse:
                reverse[target].add(node)

    components: List[Set[str]] = []
    assigned: Set[str] = set()
    for node in reversed(finish_order):
        if node in assigned:
            continue
        component: List[str] = []
        dfs(node, reverse, assigned, component)
        components.append(set(component))
    # Kosaraju yields reverse topological order over the condensation of the
    # original graph; reverse to get dependencies-first order.
    components.reverse()
    return components


def _apply_rule(
    rule: ConjunctiveQuery, database: Database, statistics: EvaluationStatistics
) -> List[Tuple[str, Tuple[Any, ...]]]:
    """All head facts derivable by one rule over the current database."""
    facts: List[Tuple[str, Tuple[Any, ...]]] = []
    for binding in evaluate_substitutions(rule, database, statistics):
        row = []
        ok_all = True
        for term in rule.head.args:
            ok, value = _ground_term(term, binding)
            if not ok:
                ok_all = False
                break
            row.append(value)
        if not ok_all:
            raise EvaluationError(
                f"rule head {rule.head} is not ground under a body match; "
                "datalog rules must be safe"
            )
        facts.append((rule.head.predicate, tuple(row)))
    return facts


def evaluate_program(
    program: DatalogProgram,
    database: Database,
    statistics: Optional[EvaluationStatistics] = None,
    max_rounds: int = 10_000,
) -> Database:
    """Evaluate a datalog program to fixpoint over a database.

    Returns a new database containing the input facts plus every derived fact.
    ``max_rounds`` guards against runaway recursion (Skolem-generating
    programs built by this library always terminate, but user programs might
    not).
    """
    stats = statistics if statistics is not None else EvaluationStatistics()
    current = database.copy()
    for stratum in program.stratify():
        for _round in range(max_rounds):
            new_facts = 0
            for rule in stratum:
                for predicate, row in _apply_rule(rule, current, stats):
                    if current.add_fact(predicate, row):
                        new_facts += 1
            if new_facts == 0:
                break
        else:  # pragma: no cover - defensive
            raise EvaluationError(
                f"datalog evaluation did not converge within {max_rounds} rounds"
            )
    return current
