"""In-memory relational / datalog engine substrate.

The engine exists for two reasons:

* to *verify* rewritings empirically (a rewriting evaluated over materialized
  view instances must return the same answers as the original query over the
  base database), and
* to reproduce the query-optimization use case of the paper: compare the cost
  of answering a query directly against the cost of answering it through its
  rewriting over (smaller) materialized views.

It is deliberately simple — sets of tuples, hash-join style backtracking
evaluation, naive-to-fixpoint datalog — but complete enough to run every
experiment in the benchmark harness.
"""

from repro.engine.relation import Relation, SkolemValue
from repro.engine.database import Database
from repro.engine.evaluate import (
    EvaluationStatistics,
    evaluate,
    evaluate_boolean,
    evaluate_substitutions,
    materialize_views,
)
from repro.engine.datalog import DatalogProgram, evaluate_program
from repro.engine.cost import CostModel, estimate_cost, measured_cost

__all__ = [
    "CostModel",
    "Database",
    "DatalogProgram",
    "EvaluationStatistics",
    "Relation",
    "SkolemValue",
    "estimate_cost",
    "evaluate",
    "evaluate_boolean",
    "evaluate_program",
    "evaluate_substitutions",
    "materialize_views",
    "measured_cost",
]
