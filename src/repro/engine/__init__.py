"""In-memory relational / datalog engine substrate.

The engine exists for two reasons:

* to *verify* rewritings empirically (a rewriting evaluated over materialized
  view instances must return the same answers as the original query over the
  base database), and
* to reproduce the query-optimization use case of the paper: compare the cost
  of answering a query directly against the cost of answering it through its
  rewriting over (smaller) materialized views.

The substrate is deliberately simple — sets of tuples with incrementally
maintained hash indexes, naive-to-fixpoint datalog — and evaluation is
pluggable: :func:`evaluate` routes through the compiled set-at-a-time
engine of :mod:`repro.exec` by default, with this package's backtracking
interpreter as the lazy-enumeration engine and compiler fallback.  Fast
enough to serve, complete enough to run every experiment in the benchmark
harness.
"""

from repro.engine.relation import Relation, SkolemValue
from repro.engine.database import Database
from repro.engine.evaluate import (
    EvaluationStatistics,
    evaluate,
    evaluate_boolean,
    evaluate_substitutions,
    materialize_views,
)
from repro.engine.datalog import DatalogProgram, evaluate_program
from repro.engine.cost import CostModel, estimate_cost, measured_cost

__all__ = [
    "CostModel",
    "Database",
    "DatalogProgram",
    "EvaluationStatistics",
    "Relation",
    "SkolemValue",
    "estimate_cost",
    "evaluate",
    "evaluate_boolean",
    "evaluate_program",
    "evaluate_substitutions",
    "materialize_views",
    "measured_cost",
]
