"""Change logs: what a delta actually changed, per predicate and per view.

The :class:`MaterializedViewStore` returns one :class:`ChangeLog` per applied
delta.  It records the *effective* base delta (rows that really changed), the
base predicates touched, and — per maintained view — the extent rows gained
and lost plus the maintenance strategy used.  The serving layer reads
:meth:`ChangeLog.affected_predicates` to evict exactly the cache entries
whose queries can observe the change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Tuple

from repro.materialize.delta import Delta, Row

#: Maintenance strategies a ViewChange can report.
STRATEGY_INCREMENTAL = "incremental"
STRATEGY_RECOMPUTE = "recompute"
STRATEGY_UNAFFECTED = "unaffected"


@dataclass(frozen=True)
class ViewChange:
    """The effect of one delta on one materialized view."""

    view: str
    inserted: FrozenSet[Row]
    removed: FrozenSet[Row]
    #: How the new extent was obtained (incremental delta rules or recompute).
    strategy: str = STRATEGY_INCREMENTAL

    @property
    def changed(self) -> bool:
        return bool(self.inserted or self.removed)

    def __str__(self) -> str:
        return (
            f"{self.view}: +{len(self.inserted)} -{len(self.removed)} [{self.strategy}]"
        )


@dataclass(frozen=True)
class ChangeLog:
    """Everything one delta changed: base relations and view extents."""

    #: The effective base delta (only rows that actually changed).
    delta: Delta
    #: Per-view effects, in view-set order, for every view that was examined.
    view_changes: Tuple[ViewChange, ...] = ()

    @property
    def base_predicates(self) -> FrozenSet[str]:
        """Base relations whose contents actually changed."""
        return self.delta.predicates()

    @property
    def changed_views(self) -> Tuple[str, ...]:
        """Names of views whose extent gained or lost at least one row."""
        return tuple(c.view for c in self.view_changes if c.changed)

    @property
    def is_empty(self) -> bool:
        return self.delta.is_empty() and not any(c.changed for c in self.view_changes)

    def affected_predicates(self) -> FrozenSet[str]:
        """Predicates a cached query must be checked against: base + changed views."""
        return self.base_predicates | frozenset(self.changed_views)

    def view_change(self, view_name: str) -> ViewChange:
        for change in self.view_changes:
            if change.view == view_name:
                return change
        return ViewChange(view_name, frozenset(), frozenset(), STRATEGY_UNAFFECTED)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly summary (row sets reduced to counts)."""
        return {
            "base_predicates": sorted(self.base_predicates),
            "delta_size": self.delta.size(),
            "views": [
                {
                    "view": c.view,
                    "inserted": len(c.inserted),
                    "removed": len(c.removed),
                    "strategy": c.strategy,
                }
                for c in self.view_changes
            ],
            "changed_views": list(self.changed_views),
        }

    def __str__(self) -> str:
        parts = [f"base: {', '.join(sorted(self.base_predicates)) or '(none)'}"]
        parts.extend(str(c) for c in self.view_changes if c.changed)
        return "; ".join(parts)
