"""Deltas: batches of inserted and removed facts, keyed by relation name.

A :class:`Delta` is the unit of change flowing through the materialization
subsystem: workload generators produce streams of them, the engine applies
them (:meth:`repro.engine.database.Database.apply_delta`), the store maintains
view extents from them, and the serving layer scopes cache invalidation to
the predicates they touch.

Deltas are immutable and *normalized sequencing-aware*: application order is
always removals first, then insertions (the engine's staging), so a row
listed as both inserted and removed for the same relation means "delete, then
insert" — the row is present afterwards on **every** base state.  The
insertion therefore wins at construction: the row stays in ``inserted`` and
is dropped from ``removed``.  (The old order-insensitive cancellation
silently dropped a delete+reinsert of an absent row.)  A chronological
sequence of changes should be folded through :meth:`Delta.merge`, which is
equivalent to applying the deltas one after the other.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

from repro.errors import SchemaError
from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_database

Row = Tuple[Any, ...]
RowSets = Mapping[str, FrozenSet[Row]]


def _freeze(side: Mapping[str, Iterable[Sequence[Any]]]) -> Dict[str, FrozenSet[Row]]:
    out: Dict[str, FrozenSet[Row]] = {}
    for name, rows in side.items():
        frozen = frozenset(tuple(row) for row in rows)
        if not frozen:
            continue
        arities = {len(row) for row in frozen}
        if len(arities) > 1:
            raise SchemaError(
                f"delta rows for relation {name} have mixed arities {sorted(arities)}"
            )
        out[name] = frozen
    return out


class Delta:
    """An immutable batch of per-relation insertions and deletions."""

    __slots__ = ("inserted", "removed")

    def __init__(
        self,
        inserted: Mapping[str, Iterable[Sequence[Any]]] = (),
        removed: Mapping[str, Iterable[Sequence[Any]]] = (),
    ):
        ins = _freeze(dict(inserted) if inserted else {})
        rem = _freeze(dict(removed) if removed else {})
        # Normalize sequencing-aware: removals apply before insertions, so a
        # row in both sides is removed then re-inserted — present afterwards
        # on every base state.  The insertion wins; the removal is redundant.
        for name in set(ins) & set(rem):
            overlap = ins[name] & rem[name]
            if overlap:
                rem[name] = rem[name] - overlap
        object.__setattr__(
            self, "inserted", {name: rows for name, rows in ins.items() if rows}
        )
        object.__setattr__(
            self, "removed", {name: rows for name, rows in rem.items() if rows}
        )

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("Delta is immutable")

    # -- construction ----------------------------------------------------------
    @classmethod
    def insertion(cls, relation_name: str, rows: Iterable[Sequence[Any]]) -> "Delta":
        """A pure-insert delta over one relation."""
        return cls(inserted={relation_name: rows})

    @classmethod
    def deletion(cls, relation_name: str, rows: Iterable[Sequence[Any]]) -> "Delta":
        """A pure-delete delta over one relation."""
        return cls(removed={relation_name: rows})

    @classmethod
    def from_atoms(
        cls, inserted: Iterable[Atom] = (), removed: Iterable[Atom] = ()
    ) -> "Delta":
        """Build a delta from ground atoms (the datalog-facing constructor)."""
        return cls(inserted=_atoms_to_rows(inserted), removed=_atoms_to_rows(removed))

    # -- inspection ------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.inserted and not self.removed

    def size(self) -> int:
        """Total number of changed rows (insertions plus deletions)."""
        return sum(len(rows) for rows in self.inserted.values()) + sum(
            len(rows) for rows in self.removed.values()
        )

    def predicates(self) -> FrozenSet[str]:
        """Names of the relations this delta touches."""
        return frozenset(self.inserted) | frozenset(self.removed)

    def inserted_rows(self, relation_name: str) -> FrozenSet[Row]:
        return self.inserted.get(relation_name, frozenset())

    def removed_rows(self, relation_name: str) -> FrozenSet[Row]:
        return self.removed.get(relation_name, frozenset())

    # -- algebra -----------------------------------------------------------------
    def inverted(self) -> "Delta":
        """The delta undoing this one (insertions and deletions swapped)."""
        return Delta(inserted=self.removed, removed=self.inserted)

    def merge(self, other: "Delta") -> "Delta":
        """The sequential composition ``self`` then ``other``, as one delta.

        Sequencing-aware: per row, the *later* operation wins, so applying the
        merged delta to any base state leaves exactly the state that applying
        ``self`` and then ``other`` would (``apply(merge(d1, d2)) ==
        apply(d1); apply(d2)``, set-semantically).  In particular
        ``(+r).merge(-r)`` removes ``r`` — it does not cancel to the empty
        delta.
        """
        inserted: Dict[str, set] = {name: set(rows) for name, rows in self.inserted.items()}
        removed: Dict[str, set] = {name: set(rows) for name, rows in self.removed.items()}
        for name, rows in other.removed.items():
            if name in inserted:
                inserted[name] -= rows
            removed.setdefault(name, set()).update(rows)
        for name, rows in other.inserted.items():
            if name in removed:
                removed[name] -= rows
            inserted.setdefault(name, set()).update(rows)
        return Delta(inserted=inserted, removed=removed)

    # -- protocol ---------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Delta):
            return NotImplemented
        return self.inserted == other.inserted and self.removed == other.removed

    def __hash__(self) -> int:
        return hash(
            (
                tuple(sorted((n, rows) for n, rows in self.inserted.items())),
                tuple(sorted((n, rows) for n, rows in self.removed.items())),
            )
        )

    def __repr__(self) -> str:
        plus = sum(len(r) for r in self.inserted.values())
        minus = sum(len(r) for r in self.removed.values())
        return f"Delta(+{plus}, -{minus} over {sorted(self.predicates())})"

    def __str__(self) -> str:
        return self.to_text()

    # -- (de)serialization ---------------------------------------------------------
    def to_text(self) -> str:
        """A datalog-style listing: one ``+ fact.`` / ``- fact.`` line per change.

        Removals are listed first, mirroring the application order (a
        normalized delta's sides are disjoint, so either order round-trips
        through :func:`parse_delta`).
        """
        lines = []
        for sign, side in (("-", self.removed), ("+", self.inserted)):
            for name in sorted(side):
                for row in sorted(side[name], key=repr):
                    args = ", ".join(_value_to_text(v) for v in row)
                    lines.append(f"{sign} {name}({args}).")
        return "\n".join(lines)


def _atoms_to_rows(atoms: Iterable[Atom]) -> Dict[str, list]:
    from repro.engine.database import term_to_value  # local import to avoid a cycle

    rows: Dict[str, list] = {}
    for atom in atoms:
        if not atom.is_ground():
            raise SchemaError(f"delta facts must be ground, got {atom}")
        rows.setdefault(atom.predicate, []).append(
            tuple(term_to_value(t) for t in atom.args)
        )
    return rows


#: Characters that must be escaped inside a double-quoted string literal:
#: the delimiter and backslash, plus the common named controls.
_STRING_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\r": "\\r", "\t": "\\t"}


def _escape_string(value: str) -> str:
    out = []
    for char in value:
        escaped = _STRING_ESCAPES.get(char)
        if escaped is not None:
            out.append(escaped)
        elif char.isprintable():
            out.append(char)
        else:
            # Non-printable characters include every code point
            # ``str.splitlines`` treats as a line boundary (\x0b, \x0c,
            # \x85,  , ...) — they MUST be escaped or the line-based
            # delta format (and the WAL built on it) would split the fact.
            code = ord(char)
            out.append(f"\\u{code:04x}" if code <= 0xFFFF else f"\\U{code:08x}")
    return "".join(out)


def _value_to_text(value: Any) -> str:
    """One value as a datalog term that parses back to an equal value.

    Strings are quoted with backslash escapes; bools are written as ints
    (``True == 1`` in Python, so row equality is preserved); floats use
    ``repr`` (shortest exact form, exponents included).  Values the datalog
    syntax cannot express — non-finite floats, Skolem values, arbitrary
    objects — raise :class:`SchemaError` so a delta that cannot round-trip
    fails loudly at serialization time, not at WAL replay.
    """
    if isinstance(value, str):
        return f'"{_escape_string(value)}"'
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise SchemaError(
                f"non-finite float {value!r} cannot be written as delta text"
            )
        return repr(value)
    raise SchemaError(
        f"value {value!r} of type {type(value).__name__} cannot be written "
        "as delta text (only str, bool, int and finite float round-trip)"
    )


def parse_delta(text: str) -> Delta:
    """Parse the ``+ fact.`` / ``- fact.`` format produced by :meth:`Delta.to_text`.

    Blank lines and ``#`` comments are ignored; every other line must start
    with ``+`` or ``-`` followed by a ground fact in datalog syntax.  Lines
    are folded *sequentially* (each line is a singleton delta merged onto the
    previous ones), so listing ``+ r(1).`` and then ``- r(1).`` removes the
    row while the opposite order inserts it — the text reads as a change
    script, top to bottom.
    """
    from repro.engine.database import term_to_value  # local import to avoid a cycle

    inserted: Dict[str, set] = {}
    removed: Dict[str, set] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        if line.startswith("+"):
            sign, later, earlier = "+", inserted, removed
        elif line.startswith("-"):
            sign, later, earlier = "-", removed, inserted
        else:
            raise SchemaError(
                f"delta line {lineno} must start with '+' or '-': {raw!r}"
            )
        for atom in parse_database(line[1:].strip()):
            if not atom.is_ground():
                raise SchemaError(f"delta facts must be ground, got {atom}")
            row = tuple(term_to_value(t) for t in atom.args)
            earlier.get(atom.predicate, set()).discard(row)
            later.setdefault(atom.predicate, set()).add(row)
    return Delta(inserted=inserted, removed=removed)
