"""Materialized views with incremental maintenance.

The paper's core scenario is answering queries from *materialized* views;
this package makes those materializations first-class and keeps them fresh
under data churn:

* :class:`~repro.materialize.delta.Delta` — an immutable batch of inserted
  and removed facts (with a ``+ fact.`` / ``- fact.`` text format);
* :mod:`~repro.materialize.counting` — the counting (multiplicity) delta
  rules that maintain conjunctive view extents exactly, deletions included;
* :class:`~repro.materialize.store.MaterializedViewStore` — extents plus
  derivation counts over a live base database, maintained per delta with
  automatic fallback to full recomputation;
* :class:`~repro.materialize.changelog.ChangeLog` — which predicates and
  views a delta actually changed, driving the serving layer's delta-scoped
  cache invalidation.
"""

from repro.materialize.changelog import ChangeLog, ViewChange
from repro.materialize.compare import assert_consistent, recomputed_extents, verify_extents
from repro.materialize.counting import (
    CountInconsistencyError,
    UnsupportedViewDefinition,
    apply_count_changes,
    delta_counts,
    derivation_counts,
)
from repro.materialize.delta import Delta, parse_delta
from repro.materialize.store import MaterializedViewStore

__all__ = [
    "ChangeLog",
    "CountInconsistencyError",
    "Delta",
    "MaterializedViewStore",
    "UnsupportedViewDefinition",
    "ViewChange",
    "apply_count_changes",
    "assert_consistent",
    "delta_counts",
    "derivation_counts",
    "parse_delta",
    "recomputed_extents",
    "verify_extents",
]
