"""The materialized-view store: extents over a base database, kept fresh.

A :class:`MaterializedViewStore` owns the *view instance* — one relation per
view holding the view's current answers over a live base
:class:`~repro.engine.database.Database` — together with the per-row
derivation counts that make incremental maintenance exact under deletions.

Change flows through :meth:`apply_delta`: the delta is applied to the base
database (deletions first — the staging the counting rules assume), then each
view whose definition mentions an affected predicate is maintained by the
delta rules of :mod:`repro.materialize.counting`; views that cannot be
maintained incrementally (unsupported definitions, or a detected count
inconsistency) fall back to full recomputation automatically.  Views whose
definitions do not mention any touched predicate are left alone — their
extents (and anything cached against them) survive the churn.  Every call
returns a :class:`~repro.materialize.changelog.ChangeLog` saying exactly
which base predicates and which views changed.

Out-of-band mutations (callers touching the base database directly) are
detected through the database's version counter and resolved by a full
re-materialization on the next access — correctness never depends on callers
being disciplined, only performance does.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import MaterializationError
from repro.datalog.views import View, ViewSet
from repro.engine.database import Database
from repro.materialize.changelog import (
    STRATEGY_INCREMENTAL,
    STRATEGY_RECOMPUTE,
    STRATEGY_UNAFFECTED,
    ChangeLog,
    ViewChange,
)
from repro.materialize.counting import (
    UnsupportedViewDefinition,
    CountInconsistencyError,
    apply_count_changes,
    delta_counts,
    derivation_counts,
)
from repro.materialize.delta import Delta, Row


#: Version tag of the exported-state structure (bumped on layout change).
STATE_FORMAT = 1


class MaterializedViewStore:
    """Materialized extents of a view set over a live base database.

    ``state`` may carry a previously :meth:`export_state`-ed set of
    derivation counters taken against *exactly* the current base database
    (the recovery path's contract); views present in it skip the initial
    full computation.  An unusable state is ignored — the store falls back
    to :meth:`materialize`, its normal self-heal.
    """

    def __init__(
        self,
        views: "ViewSet | Iterable[View]",
        database: Database,
        state: Optional[Dict[str, Any]] = None,
    ):
        self._views: ViewSet = views if isinstance(views, ViewSet) else ViewSet(list(views))
        self._database = database
        #: predicate name -> names of views whose definitions mention it.
        self._views_by_predicate: Dict[str, List[str]] = {}
        for view in self._views:
            for predicate, _arity in view.definition.predicates():
                self._views_by_predicate.setdefault(predicate, []).append(view.name)
        self._counts: Dict[str, Counter] = {}
        self._instance = Database()
        self._db_version: Optional[int] = None
        # Maintenance accounting (surfaced through stats()).
        self.deltas_applied = 0
        self.views_maintained = 0
        self.views_recomputed = 0
        self.views_skipped = 0
        self.full_refreshes = 0
        self.restored_views = 0
        if state is None or not self._restore_state(state):
            self.materialize()

    # -- accessors ---------------------------------------------------------------
    @property
    def views(self) -> ViewSet:
        return self._views

    @property
    def database(self) -> Database:
        return self._database

    def extent(self, view_name: str) -> FrozenSet[Row]:
        """The current rows of one view (refreshing first if the base moved)."""
        self._ensure_fresh()
        if view_name not in self._views:
            raise MaterializationError(f"unknown view {view_name!r}")
        return self._instance.tuples(view_name)

    def derivation_count(self, view_name: str, row: Tuple[Any, ...]) -> int:
        """How many derivations currently support ``row`` in ``view_name``."""
        self._ensure_fresh()
        counts = self._counts.get(view_name)
        return counts.get(tuple(row), 0) if counts is not None else 0

    def as_database(self) -> Database:
        """The live view instance: one relation per view, named after it.

        The same object is returned across calls and maintained in place by
        :meth:`apply_delta`, so evaluation plans holding it see updates
        without re-materialization.
        """
        self._ensure_fresh()
        return self._instance

    def views_affected_by(self, predicates: Iterable[str]) -> Tuple[str, ...]:
        """Names of views whose definitions mention any of ``predicates``."""
        affected = {
            name
            for predicate in predicates
            for name in self._views_by_predicate.get(predicate, ())
        }
        return tuple(view.name for view in self._views if view.name in affected)

    # -- full (re)computation -------------------------------------------------------
    def materialize(self) -> None:
        """(Re)compute every extent and derivation count from scratch."""
        self._instance = Database()
        self._counts = {}
        for view in self._views:
            self._instance.ensure_relation(view.name, view.arity)
            self._recompute_view(view)
        self._db_version = self._database.version
        self.full_refreshes += 1

    def refresh(self, view_name: str) -> None:
        """Fully recompute one view's extent and counts."""
        view = self._views.get(view_name)
        if view is None:
            raise MaterializationError(f"unknown view {view_name!r}")
        self._recompute_view(view)

    def _recompute_view(self, view: View) -> Tuple[FrozenSet[Row], FrozenSet[Row]]:
        """Recompute one view; returns the extent (inserted, removed) diff."""
        try:
            counts = derivation_counts(view.definition, self._database)
        except UnsupportedViewDefinition:
            # Count-free fallback: store multiplicity 1 per distinct row.
            from repro.engine.evaluate import evaluate

            counts = Counter(dict.fromkeys(evaluate(view.definition, self._database), 1))
        old_rows = self._instance.tuples(view.name)
        new_rows = frozenset(counts)
        self._instance.ensure_relation(view.name, view.arity)
        for row in old_rows - new_rows:
            self._instance.remove_fact(view.name, row)
        for row in new_rows - old_rows:
            self._instance.add_fact(view.name, row)
        self._counts[view.name] = counts
        return new_rows - old_rows, old_rows - new_rows

    # -- incremental maintenance -----------------------------------------------------
    def apply_delta(self, delta: Delta) -> ChangeLog:
        """Apply ``delta`` to the base database and maintain every extent.

        Returns a change log recording the effective base delta and, per
        view, the extent rows gained/lost and the strategy used.
        """
        self._ensure_fresh()
        effective = self._database.apply_delta(delta)
        self._db_version = self._database.version
        self.deltas_applied += 1
        affected = set(self.views_affected_by(effective.predicates()))
        view_changes: List[ViewChange] = []
        for view in self._views:
            if view.name not in affected:
                self.views_skipped += 1
                view_changes.append(
                    ViewChange(view.name, frozenset(), frozenset(), STRATEGY_UNAFFECTED)
                )
                continue
            view_changes.append(self._maintain_view(view, effective))
        return ChangeLog(delta=effective, view_changes=tuple(view_changes))

    def _maintain_view(self, view: View, effective: Delta) -> ViewChange:
        try:
            changes = delta_counts(view.definition, self._database, effective)
            inserted, removed = apply_count_changes(self._counts[view.name], changes)
            strategy = STRATEGY_INCREMENTAL
            self.views_maintained += 1
        except (UnsupportedViewDefinition, CountInconsistencyError):
            inserted, removed = self._recompute_view(view)
            self.views_recomputed += 1
            return ViewChange(view.name, inserted, removed, STRATEGY_RECOMPUTE)
        self._instance.ensure_relation(view.name, view.arity)
        for row in removed:
            self._instance.remove_fact(view.name, row)
        for row in inserted:
            self._instance.add_fact(view.name, row)
        return ViewChange(view.name, inserted, removed, strategy)

    # -- checkpoint state ---------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """A picklable image of the derivation counters (for snapshots).

        Valid only against the base database as it is *right now*; the
        storage layer records the matching WAL sequence number alongside it.
        """
        self._ensure_fresh()
        return {
            "format": STATE_FORMAT,
            "counts": {
                name: dict(counts) for name, counts in self._counts.items()
            },
        }

    def _restore_state(self, state: Dict[str, Any]) -> bool:
        """Adopt exported counters instead of computing; False when unusable."""
        if not isinstance(state, dict) or state.get("format") != STATE_FORMAT:
            return False
        counts_by_view = state.get("counts")
        if not isinstance(counts_by_view, dict):
            return False
        self._instance = Database()
        self._counts = {}
        for view in self._views:
            self._instance.ensure_relation(view.name, view.arity)
            saved = counts_by_view.get(view.name)
            if saved is None:
                # A view added since the snapshot: compute it the normal way.
                self._recompute_view(view)
                self.views_recomputed += 1
                continue
            counter = Counter({tuple(row): int(n) for row, n in saved.items()})
            self._counts[view.name] = counter
            for row in counter:
                self._instance.add_fact(view.name, row)
            self.restored_views += 1
        self._db_version = self._database.version
        return True

    # -- freshness ----------------------------------------------------------------
    def is_stale(self) -> bool:
        """Whether the base database changed behind the store's back."""
        return self._db_version != self._database.version

    def _ensure_fresh(self) -> None:
        if self.is_stale():
            self.materialize()

    # -- introspection ----------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "views": len(self._views),
            "extent_rows": self._instance.size(),
            "tracked_derivations": sum(
                sum(c.values()) for c in self._counts.values()
            ),
            "deltas_applied": self.deltas_applied,
            "views_maintained": self.views_maintained,
            "views_recomputed": self.views_recomputed,
            "views_skipped": self.views_skipped,
            "full_refreshes": self.full_refreshes,
            "restored_views": self.restored_views,
            "base_version": self._db_version,
        }

    def __repr__(self) -> str:
        return (
            f"MaterializedViewStore(views={len(self._views)}, "
            f"rows={self._instance.size()}, deltas={self.deltas_applied})"
        )
