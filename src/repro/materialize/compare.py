"""Cross-checking incremental maintenance against full recomputation.

Used by the tests and the E12 benchmark: after every applied delta, the
maintained extents must be *exactly* the extents a from-scratch
materialization would produce (including after deletions — the case naive
insert-only maintenance gets wrong).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List

from repro.engine.evaluate import evaluate
from repro.materialize.delta import Row
from repro.materialize.store import MaterializedViewStore


@dataclass(frozen=True)
class ExtentMismatch:
    """One disagreement between a maintained and a recomputed extent."""

    view: str
    missing: FrozenSet[Row]  # rows the recompute has but the store lost
    spurious: FrozenSet[Row]  # rows the store kept but the recompute lacks

    def __str__(self) -> str:
        return (
            f"{self.view}: missing {sorted(self.missing, key=repr)[:5]} "
            f"spurious {sorted(self.spurious, key=repr)[:5]}"
        )


def recomputed_extents(store: MaterializedViewStore) -> Dict[str, FrozenSet[Row]]:
    """From-scratch extents of the store's views over its current base."""
    return {
        view.name: evaluate(view.definition, store.database) for view in store.views
    }


def verify_extents(store: MaterializedViewStore) -> List[ExtentMismatch]:
    """Differences between maintained and recomputed extents (empty = consistent)."""
    mismatches: List[ExtentMismatch] = []
    for name, expected in recomputed_extents(store).items():
        actual = store.extent(name)
        if actual != expected:
            mismatches.append(
                ExtentMismatch(name, expected - actual, actual - expected)
            )
    return mismatches


def assert_consistent(store: MaterializedViewStore) -> None:
    """Raise ``AssertionError`` with a readable diff if any extent is stale."""
    mismatches = verify_extents(store)
    assert not mismatches, "; ".join(str(m) for m in mismatches)
