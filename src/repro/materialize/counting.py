"""Counting-based incremental maintenance of conjunctive views.

The classical counting (multiplicity) algorithm: alongside each view extent,
keep the number of *derivations* of every output row — the number of
satisfying assignments of the view body producing it.  A delta then adjusts
counts instead of recomputing extents, which makes deletions exact: a row
leaves the extent only when its last derivation disappears.

For a view body ``A1, ..., An`` and a batch delta applied as deletions
``Δ⁻`` followed by insertions ``Δ⁺`` (three database states
``S0 --Δ⁻--> S1 --Δ⁺--> S2``), the signed count changes are the standard
delta rules, one per subgoal occurrence:

* lost derivations (sign −1), classified by the **first** subgoal using a
  deleted tuple::

      A1@S1, ..., A(i-1)@S1,  Δ⁻Ai,  A(i+1)@S0, ..., An@S0

* gained derivations (sign +1), classified by the first subgoal using an
  inserted tuple::

      A1@S1, ..., A(i-1)@S1,  Δ⁺Ai,  A(i+1)@S2, ..., An@S2

Each rule seeds its join from the (small) delta tuples and probes the base
relations through their incrementally-maintained hash indexes; no database
state is ever copied — ``S0`` and ``S1`` are realized as the current state
``S2`` plus small overlay sets.

Self-joins are handled because every subgoal *occurrence* gets its own rule;
comparison subgoals are checked as soon as they are ground.  Definitions
using function terms are rejected with :class:`UnsupportedViewDefinition`
(the store falls back to full recomputation for those views), and a count
that would go negative raises :class:`CountInconsistencyError` (defensive:
it means the tracked counts no longer match the database).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import MaterializationError
from repro.datalog.atoms import Atom, Comparison
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.terms import Constant, Term, Variable
from repro.engine.database import Database
from repro.engine.evaluate import evaluate_substitutions
from repro.engine.relation import Relation
from repro.materialize.delta import Delta, Row


class UnsupportedViewDefinition(MaterializationError):
    """The definition uses a feature the counting rules cannot maintain."""


class CountInconsistencyError(MaterializationError):
    """A derivation count would go negative — tracked state is out of sync."""


def check_supported(definition: ConjunctiveQuery) -> None:
    """Raise :class:`UnsupportedViewDefinition` for non-maintainable definitions.

    The counting rules handle plain conjunctive definitions: variables and
    constants in the head, the body and the comparisons.  Function terms
    (Skolems) would require maintaining invented values and are rejected.
    """
    terms: List[Term] = list(definition.head.args)
    for atom in definition.body:
        terms.extend(atom.args)
    for comparison in definition.comparisons:
        terms.extend((comparison.left, comparison.right))
    for term in terms:
        if not isinstance(term, (Variable, Constant)):
            raise UnsupportedViewDefinition(
                f"view {definition.name} uses unsupported term {term!s}; "
                "only variables and constants can be maintained incrementally"
            )


def derivation_counts(definition: ConjunctiveQuery, database: Database) -> Counter:
    """Full derivation counts: output row -> number of satisfying assignments."""
    check_supported(definition)
    counts: Counter = Counter()
    head_args = definition.head.args
    for binding in evaluate_substitutions(definition, database):
        counts[_project_head(head_args, binding)] += 1
    return counts


def delta_counts(
    definition: ConjunctiveQuery, database: Database, delta: Delta
) -> Counter:
    """Signed derivation-count changes caused by ``delta``.

    ``database`` must be the state **after** the (effective) delta was
    applied; ``delta`` must be effective — deletions were present before,
    insertions were absent before (``Database.apply_delta`` returns exactly
    this).  The result maps output rows to signed count adjustments.
    """
    check_supported(definition)
    # The delta rules realize S0/S1 as the current state plus overlays built
    # from the two sides independently, which is only coherent when they are
    # disjoint.  Normalized deltas always are (insertions win construction),
    # and effective deltas are subsets of normalized ones — this guards
    # against a hand-built mapping smuggled past the Delta constructor.
    for name in delta.predicates():
        overlap = delta.inserted_rows(name) & delta.removed_rows(name)
        if overlap:
            raise MaterializationError(
                f"delta for {name} lists {len(overlap)} row(s) as both inserted "
                "and removed; counting maintenance needs disjoint sides"
            )
    body = definition.body
    comparisons = definition.comparisons
    head_args = definition.head.args
    changes: Counter = Counter()
    if not body:
        return changes

    versions = _VersionedStates(database, delta)
    for index, atom in enumerate(body):
        removed = delta.removed_rows(atom.predicate)
        if removed:
            sources = versions.sources(body, index, later="S0")
            _count_rule(body, comparisons, head_args, index, removed, sources, -1, changes)
        inserted = delta.inserted_rows(atom.predicate)
        if inserted:
            sources = versions.sources(body, index, later="S2")
            _count_rule(body, comparisons, head_args, index, inserted, sources, +1, changes)
    return changes


def apply_count_changes(
    counts: Counter, changes: Counter
) -> Tuple[FrozenSet[Row], FrozenSet[Row]]:
    """Fold signed changes into ``counts`` (mutated); returns (inserted, removed).

    ``inserted`` are rows whose count rose from zero, ``removed`` rows whose
    count fell to zero — exactly the extent delta.
    """
    inserted: Set[Row] = set()
    removed: Set[Row] = set()
    for row, change in changes.items():
        if change == 0:
            continue
        old = counts.get(row, 0)
        new = old + change
        if new < 0:
            raise CountInconsistencyError(
                f"derivation count for row {row!r} would become {new}"
            )
        if new == 0:
            if old > 0:
                removed.add(row)
            counts.pop(row, None)
        else:
            counts[row] = new
            if old == 0:
                inserted.add(row)
    return frozenset(inserted), frozenset(removed)


# ---------------------------------------------------------------------------
# Delta-rule join machinery
# ---------------------------------------------------------------------------


class _Versioned:
    """One relation *state* realized as the live relation ± small overlays."""

    __slots__ = ("relation", "plus", "minus")

    def __init__(
        self,
        relation: Optional[Relation],
        plus: FrozenSet[Row] = frozenset(),
        minus: FrozenSet[Row] = frozenset(),
    ):
        self.relation = relation
        self.plus = plus
        self.minus = minus

    def size(self) -> int:
        base = len(self.relation) if self.relation is not None else 0
        return base + len(self.plus)

    def candidates(
        self, positions: Tuple[int, ...], key: Tuple[Any, ...]
    ) -> List[Row]:
        rows: List[Row] = []
        if self.relation is not None:
            base: Sequence[Row]
            if positions:
                base = self.relation.index_on(positions).get(key, ())
            else:
                base = tuple(self.relation)
            if self.minus:
                rows.extend(row for row in base if row not in self.minus)
            else:
                rows.extend(base)
        for row in self.plus:
            if all(row[p] == value for p, value in zip(positions, key)):
                rows.append(row)
        return rows


class _VersionedStates:
    """The three database states S0/S1/S2 around one applied delta."""

    def __init__(self, database: Database, delta: Delta):
        self._database = database
        self._delta = delta

    def state(self, predicate: str, tag: str) -> _Versioned:
        relation = self._database.relation(predicate)
        inserted = self._delta.inserted_rows(predicate)
        removed = self._delta.removed_rows(predicate)
        if tag == "S2" or (not inserted and not removed):
            return _Versioned(relation)
        if tag == "S1":  # before insertions: hide what the delta added
            return _Versioned(relation, minus=inserted)
        if tag == "S0":  # original state: also restore what the delta removed
            return _Versioned(relation, plus=removed, minus=inserted)
        raise MaterializationError(f"unknown state tag {tag!r}")  # pragma: no cover

    def sources(
        self, body: Sequence[Atom], seed_index: int, later: str
    ) -> Dict[int, _Versioned]:
        """Per-subgoal states for one delta rule (earlier @S1, later @``later``)."""
        return {
            j: self.state(body[j].predicate, "S1" if j < seed_index else later)
            for j in range(len(body))
            if j != seed_index
        }


def _project_head(head_args: Sequence[Term], binding: Dict[Variable, Any]) -> Row:
    row = []
    for term in head_args:
        if isinstance(term, Constant):
            row.append(term.value)
        else:
            row.append(binding[term])
    return tuple(row)


def _bind_atom(atom: Atom, row: Row) -> Optional[Dict[Variable, Any]]:
    """Match a delta tuple against a subgoal; None when constants/joins clash."""
    if len(row) != len(atom.args):
        return None
    binding: Dict[Variable, Any] = {}
    for term, value in zip(atom.args, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = binding.get(term, _MISSING)
            if bound is _MISSING:
                binding[term] = value
            elif bound != value:
                return None
    return binding


_MISSING = object()


def _comparisons_ok(
    comparisons: Sequence[Comparison], binding: Dict[Variable, Any]
) -> bool:
    """False only when some comparison is ground under ``binding`` and fails."""
    for comparison in comparisons:
        left = _resolve(comparison.left, binding)
        right = _resolve(comparison.right, binding)
        if left is _MISSING or right is _MISSING:
            continue
        if not comparison.op.evaluate(left, right):
            return False
    return True


def _resolve(term: Term, binding: Dict[Variable, Any]) -> Any:
    if isinstance(term, Constant):
        return term.value
    return binding.get(term, _MISSING)


def _count_rule(
    body: Sequence[Atom],
    comparisons: Sequence[Comparison],
    head_args: Sequence[Term],
    seed_index: int,
    seed_rows: FrozenSet[Row],
    sources: Dict[int, _Versioned],
    sign: int,
    changes: Counter,
) -> None:
    """Count the derivations of one delta rule and fold them into ``changes``."""
    seed_atom = body[seed_index]
    # Static greedy join order over the remaining subgoals: prefer subgoals
    # sharing the most already-bound variables, then smaller states.  The
    # bound-variable set after the seed is the same for every seed row, so the
    # order is computed once per rule.
    bound: Set[Variable] = set(seed_atom.variables())
    remaining = [j for j in range(len(body)) if j != seed_index]
    order: List[int] = []
    while remaining:
        remaining.sort(
            key=lambda j: (
                -sum(1 for v in body[j].variables() if v in bound),
                sources[j].size(),
            )
        )
        chosen = remaining.pop(0)
        order.append(chosen)
        bound.update(body[chosen].variables())

    def extend(step: int, binding: Dict[Variable, Any]) -> None:
        if step == len(order):
            changes[_project_head(head_args, binding)] += sign
            return
        atom = body[order[step]]
        source = sources[order[step]]
        positions: List[int] = []
        key: List[Any] = []
        for position, term in enumerate(atom.args):
            value = _resolve(term, binding)
            if value is not _MISSING:
                positions.append(position)
                key.append(value)
        for row in source.candidates(tuple(positions), tuple(key)):
            new_binding = dict(binding)
            ok = True
            for position, term in enumerate(atom.args):
                value = row[position]
                if isinstance(term, Constant):
                    if term.value != value:
                        ok = False
                        break
                else:
                    bound_value = new_binding.get(term, _MISSING)
                    if bound_value is _MISSING:
                        new_binding[term] = value
                    elif bound_value != value:
                        ok = False
                        break
            if ok and _comparisons_ok(comparisons, new_binding):
                extend(step + 1, new_binding)

    for seed_row in seed_rows:
        binding = _bind_atom(seed_atom, seed_row)
        if binding is not None and _comparisons_ok(comparisons, binding):
            extend(0, binding)
