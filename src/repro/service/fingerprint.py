"""Order-insensitive canonical fingerprints for conjunctive queries.

The serving layer caches rewritings keyed by *query structure*, not query
text: two queries that differ only in variable names and subgoal order must
share a cache entry.  The fingerprint computed here is a canonical
serialization of the query obtained by

1. **colour refinement** over the query's variables (a Weisfeiler–Lehman-style
   iteration on the hypergraph whose hyperedges are the head atom, the body
   subgoals and the comparison subgoals), followed by
2. **exact tie-breaking**: all orderings of same-colour variables are tried
   (up to a budget) and the lexicographically smallest serialization wins.

The construction parallels the canonical-database freezing of
:mod:`repro.datalog.canonical` — variables are renamed to position-only
markers so the serialization depends only on structure — but unlike freezing
it is insensitive to the order in which variables and subgoals happen to be
written.

Soundness: equal fingerprints imply the queries are *isomorphic* (identical
up to a bijective variable renaming and subgoal reordering), because each
fingerprint text is a faithful serialization of the query under a bijective
renaming.  Completeness: isomorphic queries receive equal fingerprints
whenever the tie-break search completes within its budget; when the budget is
exceeded the fingerprint falls back to a first-occurrence canonical form
(still sound, possibly missing some cache hits) and is marked ``exact=False``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.datalog.atoms import Atom, Comparison
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.substitution import Substitution
from repro.datalog.terms import Constant, Term, Variable

#: Maximum number of same-colour variable orderings tried before falling back
#: to the (sound but less complete) first-occurrence canonical form.
DEFAULT_TIE_BREAK_LIMIT = 20160

#: Prefix of canonical variable names; chosen to be unlikely in user queries.
CANONICAL_PREFIX = "V"


@dataclass(frozen=True, eq=False)
class QueryFingerprint:
    """The fingerprint of a query plus the renaming that produced it.

    Attributes
    ----------
    text:
        The canonical serialization — the cache key.  Equal texts imply
        isomorphic queries.
    renaming:
        Bijective substitution from the query's variables to the canonical
        variables ``V1 .. Vk``; applying it to the query yields the canonical
        representative shared by every isomorphic variant.
    exact:
        ``True`` when the tie-break search completed, i.e. every isomorphic
        query is guaranteed the same ``text``.
    """

    text: str
    renaming: Substitution
    exact: bool

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryFingerprint):
            return NotImplemented
        return self.text == other.text

    def __hash__(self) -> int:
        return hash(self.text)

    def inverse_renaming(self) -> Substitution:
        """The substitution mapping canonical variables back to query variables."""
        return Substitution({term: var for var, term in self.renaming.items()})


# ---------------------------------------------------------------------------
# Colour refinement
# ---------------------------------------------------------------------------

#: Pseudo-predicate names marking the head and comparison hyperedges so they
#: cannot collide with relation names (which never contain spaces).
_HEAD_MARK = "head "
_CMP_MARK = "cmp "


def _structural_atoms(query: ConjunctiveQuery) -> List[Tuple[str, Tuple[Term, ...]]]:
    """The query as a list of (predicate, args) hyperedges including head/comparisons."""
    edges: List[Tuple[str, Tuple[Term, ...]]] = [
        (_HEAD_MARK + query.head.predicate, tuple(query.head.args))
    ]
    for atom in query.body:
        edges.append((atom.predicate, tuple(atom.args)))
    for comparison in query.comparisons:
        normal = comparison.canonical()
        edges.append((_CMP_MARK + normal.op.value, (normal.left, normal.right)))
    return edges


def _constant_key(constant: Constant) -> str:
    return f"{type(constant.value).__name__}:{constant.value!r}"


def _refine_colors(
    edges: Sequence[Tuple[str, Tuple[Term, ...]]], variables: Sequence[Variable]
) -> Dict[Variable, int]:
    """Iterated colour refinement; the final colours are renaming-invariant."""
    color: Dict[Variable, int] = {v: 0 for v in variables}
    if not variables:
        return color
    occurrences: Dict[Variable, List[Tuple[str, Tuple[Term, ...]]]] = {v: [] for v in variables}
    for predicate, args in edges:
        for term in set(t for t in args if isinstance(t, Variable)):
            occurrences[term].append((predicate, args))
    while True:
        signatures: Dict[Variable, Tuple] = {}
        for var in variables:
            local = []
            for predicate, args in occurrences[var]:
                rendered = tuple(
                    ("self",)
                    if term == var
                    else ("const", _constant_key(term))
                    if isinstance(term, Constant)
                    else ("var", color[term])
                    for term in args
                )
                local.append((predicate, rendered))
            signatures[var] = (color[var], tuple(sorted(local)))
        palette = {sig: index for index, sig in enumerate(sorted(set(signatures.values())))}
        refined = {var: palette[signatures[var]] for var in variables}
        if refined == color:
            return color
        color = refined


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

def _serialize(
    edges: Sequence[Tuple[str, Tuple[Term, ...]]], index_of: Dict[Variable, int]
) -> str:
    """Serialize hyperedges under a total variable order (sorted, so order-free)."""
    def render_term(term: Term) -> str:
        if isinstance(term, Variable):
            return f"?{index_of[term]}"
        return f"k{_constant_key(term)}"  # constants carry their type and repr

    rendered = [
        f"{predicate}({','.join(render_term(t) for t in args)})"
        for predicate, args in edges
    ]
    head, rest = rendered[0], sorted(rendered[1:])
    return head + "|" + ";".join(rest)


def _first_occurrence_order(query: ConjunctiveQuery) -> List[Variable]:
    """The deterministic variable order used by the non-exact fallback.

    Mirrors :meth:`ConjunctiveQuery.canonical`: head variables first, then
    body variables in sort-key order of the subgoals, then comparison
    variables.  Not renaming-invariant — hence only a fallback.
    """
    order: List[Variable] = []
    for var in query.head.variables():
        if var not in order:
            order.append(var)
    for atom in sorted(query.body, key=Atom.sort_key):
        for var in atom.variables():
            if var not in order:
                order.append(var)
    for comparison in sorted(query.comparisons, key=Comparison.sort_key):
        for var in comparison.variables():
            if var not in order:
                order.append(var)
    return order


# ---------------------------------------------------------------------------
# Front door
# ---------------------------------------------------------------------------

def fingerprint(
    query: ConjunctiveQuery, tie_break_limit: int = DEFAULT_TIE_BREAK_LIMIT
) -> QueryFingerprint:
    """Compute the canonical fingerprint of a conjunctive query."""
    variables = list(query.variables())
    edges = _structural_atoms(query)
    if not variables:
        text = _serialize(edges, {})
        return QueryFingerprint(text=text, renaming=Substitution({}), exact=True)

    colors = _refine_colors(edges, variables)
    classes: Dict[int, List[Variable]] = {}
    for var in variables:
        classes.setdefault(colors[var], []).append(var)
    ordered_classes = [classes[c] for c in sorted(classes)]

    choices = math.prod(math.factorial(len(group)) for group in ordered_classes)
    if choices > tie_break_limit:
        order = _first_occurrence_order(query)
        index_of = {var: i for i, var in enumerate(order)}
        return QueryFingerprint(
            text=_serialize(edges, index_of),
            renaming=_renaming_for(order),
            exact=False,
        )

    best_text: Optional[str] = None
    best_order: Optional[List[Variable]] = None
    for parts in itertools.product(
        *(itertools.permutations(group) for group in ordered_classes)
    ):
        order = [var for part in parts for var in part]
        index_of = {var: i for i, var in enumerate(order)}
        text = _serialize(edges, index_of)
        if best_text is None or text < best_text:
            best_text, best_order = text, order
    assert best_text is not None and best_order is not None
    return QueryFingerprint(
        text=best_text, renaming=_renaming_for(best_order), exact=True
    )


def _renaming_for(order: Sequence[Variable]) -> Substitution:
    return Substitution(
        {var: Variable(f"{CANONICAL_PREFIX}{i + 1}") for i, var in enumerate(order)}
    )


def fingerprint_text(query: ConjunctiveQuery) -> str:
    """Just the cache key of a query (convenience wrapper)."""
    return fingerprint(query).text


def canonical_names(query: ConjunctiveQuery) -> frozenset:
    """The canonical variable names ``V1..Vk`` used for a query of this size."""
    return frozenset(
        f"{CANONICAL_PREFIX}{i + 1}" for i in range(len(query.variables()))
    )


def isomorphism_witness(
    left: ConjunctiveQuery, right: ConjunctiveQuery
) -> Optional[Substitution]:
    """A bijective renaming carrying ``left`` onto ``right``, or ``None``.

    Only isomorphisms discoverable through the fingerprint machinery are
    found: when both fingerprints are exact this is a complete decision
    procedure for query isomorphism.
    """
    fp_left, fp_right = fingerprint(left), fingerprint(right)
    if fp_left.text != fp_right.text:
        return None
    inverse_right = fp_right.inverse_renaming()
    mapping = {
        var: inverse_right[canonical]
        for var, canonical in fp_left.renaming.items()
    }
    witness = Substitution(mapping)
    if _same_query(left.apply(witness, require_safe=False), right):
        return witness
    return None


def _same_query(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Syntactic equality up to subgoal order (delegates to ConjunctiveQuery.__eq__)."""
    return left == right
