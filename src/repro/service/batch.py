"""Batch processing of query workloads through a :class:`RewritingSession`.

The batch API accepts a stream of queries (objects or datalog text), feeds
them through one session, and reports per-query outcomes plus aggregate
throughput.  An optional ``processes`` fan-out partitions the stream across
worker processes, each owning its own session; queries and views travel as
datalog text (the printed form round-trips through the parser), so nothing
unpicklable crosses the process boundary.

Per-worker caches are independent: fan-out trades cache sharing for
parallelism and pays off when the workload is dominated by distinct queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import ReproError
from repro.datalog.parser import parse_database, parse_query, parse_views
from repro.datalog.printer import to_datalog, views_to_datalog
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.views import View, ViewSet
from repro.engine.database import Database
from repro.exec import default_executor_name
from repro.service.session import RewritingSession


@dataclass
class BatchItem:
    """The outcome of one query in a batch."""

    index: int
    query: str
    fingerprint: str = ""
    cache_hit: bool = False
    rewritings: int = 0
    equivalent: bool = False
    best: Optional[str] = None
    answers: Optional[int] = None
    elapsed: float = 0.0
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "query": self.query,
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
            "rewritings": self.rewritings,
            "equivalent": self.equivalent,
            "best": self.best,
            "answers": self.answers,
            "elapsed": self.elapsed,
            "error": self.error,
        }


@dataclass
class BatchReport:
    """Aggregate outcome of a batch run."""

    items: List[BatchItem] = field(default_factory=list)
    elapsed: float = 0.0
    processes: int = 1
    session_stats: Optional[Dict[str, Any]] = None

    @property
    def requests(self) -> int:
        return len(self.items)

    @property
    def cache_hits(self) -> int:
        return sum(1 for item in self.items if item.cache_hit)

    @property
    def errors(self) -> int:
        return sum(1 for item in self.items if item.error is not None)

    @property
    def throughput(self) -> float:
        """Requests per second over the whole batch."""
        return self.requests / self.elapsed if self.elapsed > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
            "elapsed": self.elapsed,
            "throughput": self.throughput,
            "processes": self.processes,
            "session_stats": self.session_stats,
            "items": [item.to_dict() for item in self.items],
        }


def _as_query_text(query: "ConjunctiveQuery | str") -> str:
    if isinstance(query, ConjunctiveQuery):
        return to_datalog(query)
    return str(query)


def _process_one(
    session: RewritingSession, index: int, query_text: str, with_answers: bool
) -> BatchItem:
    item = BatchItem(index=index, query=query_text)
    started = time.perf_counter()
    try:
        query = parse_query(query_text)
        if with_answers:
            answers, result = session.answer_with_plan(query)
            item.answers = len(answers)
        else:
            result = session.rewrite_cached(query)
        item.fingerprint = session.last_fingerprint
        item.cache_hit = session.last_cache_hit
        item.rewritings = len(result.rewritings)
        item.equivalent = result.has_equivalent
        best = result.best
        if best is not None:
            item.best = to_datalog(best.query)
    except ReproError as error:
        item.error = str(error)
    item.elapsed = time.perf_counter() - started
    return item


# ---------------------------------------------------------------------------
# Multiprocessing workers (module-level so they pickle)
# ---------------------------------------------------------------------------

_WORKER_SESSION: Optional[RewritingSession] = None
_WORKER_WITH_ANSWERS = False


def _init_worker(
    views_text: str,
    facts_text: Optional[str],
    algorithm: str,
    mode: str,
    cache_size: int,
    use_view_index: bool,
    with_answers: bool,
    executor: str = "compiled",
) -> None:
    global _WORKER_SESSION, _WORKER_WITH_ANSWERS
    database = (
        Database.from_atoms(parse_database(facts_text)) if facts_text else None
    )
    _WORKER_SESSION = RewritingSession(
        parse_views(views_text),
        database=database,
        algorithm=algorithm,
        mode=mode,
        cache_size=cache_size,
        use_view_index=use_view_index,
        executor=executor,
    )
    _WORKER_WITH_ANSWERS = with_answers


def _worker_run(task: "tuple[int, str]") -> Dict[str, Any]:
    assert _WORKER_SESSION is not None
    index, query_text = task
    return _process_one(_WORKER_SESSION, index, query_text, _WORKER_WITH_ANSWERS).to_dict()


def _database_to_facts_text(database: Database) -> str:
    return "\n".join(f"{atom}." for atom in database.facts())


# ---------------------------------------------------------------------------
# Front door
# ---------------------------------------------------------------------------

def run_batch(
    queries: Sequence["ConjunctiveQuery | str"],
    views: "ViewSet | Iterable[View]",
    database: Optional[Database] = None,
    algorithm: str = "minicon",
    mode: str = "equivalent",
    cache_size: int = 512,
    use_view_index: bool = True,
    with_answers: bool = False,
    processes: int = 1,
    executor: Optional[str] = None,
) -> BatchReport:
    """Process a workload of queries and report per-query and aggregate results.

    ``processes > 1`` fans the stream out over a :mod:`multiprocessing` pool
    (one session per worker).  If the pool cannot be created the batch falls
    back to sequential processing rather than failing.  ``executor`` picks
    the evaluation engine of every session (see :class:`RewritingSession`);
    ``None`` resolves to the process-wide configured default here, in the
    parent, so workers never re-read the default themselves.
    """
    if executor is None:
        executor = default_executor_name()
    view_set = views if isinstance(views, ViewSet) else ViewSet(list(views))
    texts = [_as_query_text(q) for q in queries]
    if with_answers and database is None:
        raise ReproError("run_batch(with_answers=True) requires a database")

    started = time.perf_counter()
    if processes > 1 and len(texts) > 1:
        report = _run_parallel(
            texts, view_set, database, algorithm, mode, cache_size,
            use_view_index, with_answers, processes, executor,
        )
        if report is not None:
            report.elapsed = time.perf_counter() - started
            return report
        # Pool creation failed; fall through to the sequential path.

    session = RewritingSession(
        view_set,
        database=database,
        algorithm=algorithm,
        mode=mode,
        cache_size=cache_size,
        use_view_index=use_view_index,
        executor=executor,
    )
    items = [
        _process_one(session, index, text, with_answers)
        for index, text in enumerate(texts)
    ]
    return BatchReport(
        items=items,
        elapsed=time.perf_counter() - started,
        processes=1,
        session_stats=session.stats(),
    )


def _run_parallel(
    texts: List[str],
    views: ViewSet,
    database: Optional[Database],
    algorithm: str,
    mode: str,
    cache_size: int,
    use_view_index: bool,
    with_answers: bool,
    processes: int,
    executor: str = "compiled",
) -> Optional[BatchReport]:
    try:
        import multiprocessing
    except ImportError:  # pragma: no cover - multiprocessing is stdlib
        return None
    views_text = views_to_datalog(views)
    facts_text = _database_to_facts_text(database) if database is not None else None
    worker_count = max(2, min(processes, len(texts)))
    try:
        context = multiprocessing.get_context()
        with context.Pool(
            processes=worker_count,
            initializer=_init_worker,
            initargs=(
                views_text, facts_text, algorithm, mode, cache_size,
                use_view_index, with_answers, executor,
            ),
        ) as pool:
            raw = pool.map(_worker_run, list(enumerate(texts)))
    except (OSError, ValueError):  # pragma: no cover - depends on host limits
        return None
    items = sorted((BatchItem(**entry) for entry in raw), key=lambda i: i.index)
    return BatchReport(items=list(items), processes=worker_count, session_stats=None)
