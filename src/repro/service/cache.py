"""Bounded LRU caches with hit/miss/eviction accounting.

The serving layer keeps three of these (rewritings, answers, containment
verdicts) plus a single-slot cache for the materialized view instance.  The
implementation is a plain ``OrderedDict`` LRU — deliberately simple, since
entries are small and the working sets of realistic workloads fit easily; the
interesting part is the *keying* (canonical fingerprints and version tokens),
which lives in :mod:`repro.service.session`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterator, Optional, Tuple


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry on overflow.

    ``maxsize <= 0`` disables caching entirely (every ``get`` misses and
    ``put`` is a no-op), which keeps the session code free of special cases.
    """

    __slots__ = ("maxsize", "_data", "hits", "misses", "evictions")

    #: Sentinel distinguishing "absent" from a cached ``None``.
    _MISSING = object()

    def __init__(self, maxsize: int = 512):
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting the hit/miss and refreshing recency."""
        value = self._data.get(key, self._MISSING)
        if value is self._MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or update an entry, evicting the LRU entry when full."""
        if self.maxsize <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key`` without counting a hit/miss or refreshing recency.

        Used by maintenance sweeps (delta-scoped invalidation) that must not
        skew hit-rate statistics or entry recency.
        """
        value = self._data.get(key, self._MISSING)
        return default if value is self._MISSING else value

    def discard(self, key: Hashable) -> bool:
        """Remove one entry if present; returns whether it was there."""
        return self._data.pop(key, self._MISSING) is not self._MISSING

    def clear(self) -> int:
        """Drop every entry (counters are kept); returns how many were dropped."""
        dropped = len(self._data)
        self._data.clear()
        return dropped

    def __contains__(self, key: Hashable) -> bool:
        # Membership does not count as a hit and does not refresh recency.
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        """Keys from least to most recently used."""
        return iter(self._data)

    def __repr__(self) -> str:
        return (
            f"LRUCache(size={len(self._data)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }
