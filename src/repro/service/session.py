"""The :class:`RewritingSession` facade: a long-lived, caching rewriting server.

One session owns a view set, an optional database, a view-relevance index and
three bounded LRU caches:

* **rewritings**, keyed by the query's canonical fingerprint (so isomorphic
  queries share one entry) plus algorithm and mode;
* **answers**, keyed the same way and explicitly invalidated whenever the
  database's version counter moves;
* **containment verdicts**, keyed by the fingerprint pair (containment is
  invariant under renaming either side).

Cached rewritings are stored in *canonical variables*: on a miss, the result
is renamed through the fingerprint's canonicalizing substitution before being
stored; on a hit, the stored rewriting is renamed into the incoming query's
own variables.  A repeated identical query therefore gets back exactly the
result an uncached :func:`repro.rewriting.rewriter.rewrite` call would have
produced, and an isomorphic variant gets the correctly renamed equivalent.

Answering evaluates plans through a session-owned executor (the compiled
set-at-a-time engine of :mod:`repro.exec` by default), so compiled physical
plans are cached next to the rewriting caches and the disjuncts of a union
rewriting share hash-join build sides on the materialized view relations.

Data churn is handled at two granularities.  Mutating the database behind the
session's back still triggers the coarse path: the version counter moves and
the whole answer cache (plus the materialization) is flushed.  The fast path
is :meth:`RewritingSession.apply_delta`: the delta flows through a
:class:`~repro.materialize.store.MaterializedViewStore`, which maintains the
view extents incrementally and reports *which* predicates and views actually
changed; only answer-cache entries whose fingerprinted query touches an
affected predicate are evicted, so cached answers (and every cached
rewriting) for untouched predicates survive the churn.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.errors import RewritingError
from repro.datalog.freshen import FreshVariableFactory
from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.datalog.substitution import Substitution
from repro.datalog.views import View, ViewSet
from repro.containment.containment import is_contained
from repro.containment.memo import containment_memo_stats
from repro.engine.database import Database
from repro.engine.evaluate import evaluate
from repro.exec import (
    EXECUTORS,
    CompiledExecutor,
    InterpretedExecutor,
    ParallelExecutor,
    default_executor_name,
    make_executor,
)
from repro.materialize.changelog import ChangeLog
from repro.materialize.delta import Delta
from repro.materialize.store import MaterializedViewStore
from repro.obs.instrument import Instrumentation
from repro.rewriting.plans import Rewriting, RewritingKind, RewritingResult
from repro.rewriting.rewriter import ALGORITHMS, MODES, rewrite
from repro.service.cache import LRUCache
from repro.service.fingerprint import QueryFingerprint, fingerprint
from repro.service.view_index import ViewRelevanceIndex

QueryLike = Union[ConjunctiveQuery, UnionQuery]


@dataclass(frozen=True)
class _CachedRewriting:
    """One rewriting stored in canonical variables."""

    query: Any  # ConjunctiveQuery | UnionQuery (or an opaque plan object)
    kind: RewritingKind
    algorithm: str
    views_used: Tuple[str, ...]
    expansion: Any  # ConjunctiveQuery | UnionQuery | None


@dataclass(frozen=True)
class _CacheEntry:
    """A cached rewriting result, minus the query-specific parts."""

    algorithm: str
    rewritings: Tuple[_CachedRewriting, ...]
    candidates_examined: int


def _retarget(obj: Any, renaming: Substitution, avoid_names: FrozenSet[str]) -> Any:
    """Rename a query-like object through ``renaming``.

    Variables outside the renaming's domain (an algorithm's fresh variables)
    are kept, but first renamed apart when their names collide with
    ``avoid_names`` (the names the renaming maps *onto*), so the result never
    conflates two distinct variables.  Non-query objects pass through.
    """
    if isinstance(obj, UnionQuery):
        return UnionQuery([_retarget(q, renaming, avoid_names) for q in obj.disjuncts])
    if not isinstance(obj, ConjunctiveQuery):
        return obj
    extras = [v for v in obj.variables() if v not in renaming]
    clashing = [v for v in extras if v.name in avoid_names]
    if clashing:
        factory = FreshVariableFactory(
            reserved=set(avoid_names) | {v.name for v in obj.variables()}, prefix="_S"
        )
        apart = Substitution({v: factory.fresh(v.name) for v in clashing})
        obj = obj.apply(apart, require_safe=False)
    return obj.apply(renaming, require_safe=False)


class _SessionStats(dict):
    """The ``stats()`` mapping, with a deprecation shim for one renamed key.

    The containment-memo entry describes *process-global* state (the memo is
    shared by every engine in the process — see :mod:`repro.containment.memo`)
    while every sibling entry is per-session, so it now lives under
    ``"global.containment_memo"``.  Reading the old ``"containment_memo"``
    key still works but warns, so multi-engine dashboards migrate instead of
    silently misattributing global counters to one engine.
    """

    _OLD_KEY = "containment_memo"
    _NEW_KEY = "global.containment_memo"

    def __missing__(self, key: str) -> Any:
        if key == self._OLD_KEY:
            warnings.warn(
                f"stats()[{self._OLD_KEY!r}] is deprecated: the containment "
                f"memo is process-global, not per-session; read "
                f"{self._NEW_KEY!r} instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return self[self._NEW_KEY]
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key: object) -> bool:
        return dict.__contains__(self, key) or key == self._OLD_KEY


def _query_predicates(query: QueryLike) -> FrozenSet[str]:
    """The base predicate names a query's answers can depend on."""
    if isinstance(query, UnionQuery):
        names: set = set()
        for disjunct in query.disjuncts:
            names.update(name for name, _arity in disjunct.predicates())
        return frozenset(names)
    return frozenset(name for name, _arity in query.predicates())


class RewritingSession:
    """A persistent rewriting service over one view set (and optional database).

    Parameters
    ----------
    views:
        The materialized views available for rewriting.
    database:
        Optional base database; required for :meth:`answer`.
    algorithm / mode:
        Defaults forwarded to :func:`repro.rewriting.rewriter.rewrite`.
    cache_size:
        Bound of each LRU cache (0 disables caching).
    use_view_index:
        Consult a :class:`ViewRelevanceIndex` to prune views per request.
    executor:
        ``"compiled"`` evaluates plans through a session-owned
        :class:`repro.exec.CompiledExecutor`, so compiled physical plans are
        cached alongside the rewriting caches and a union rewriting's many
        disjuncts share their hash-join build sides (the indexes live on the
        materialized view relations).  ``"interpreted"`` uses the
        backtracking interpreter; ``"parallel"`` fans large probe pipelines
        across a forked worker pool (:class:`repro.exec.ParallelExecutor`).
        ``None`` (the default) uses the process-wide configured default —
        ``"compiled"`` unless overridden by :func:`set_default_executor` or
        the ``REPRO_DEFAULT_EXECUTOR`` environment variable.
    instrumentation:
        Optional :class:`repro.obs.Instrumentation`.  When given, the session
        records per-stage latency histograms (rewrite cold/hit, execute,
        delta apply), cache-event counters (rewrite/answer/plan caches and
        containment-memo outcomes) and trace spans through it; when omitted
        (the default) the hooks cost one ``is None`` test each.
    """

    def __init__(
        self,
        views: "ViewSet | Iterable[View]",
        database: Optional[Database] = None,
        algorithm: str = "minicon",
        mode: str = "equivalent",
        cache_size: int = 512,
        use_view_index: bool = True,
        executor: Optional[str] = None,
        instrumentation: Optional[Instrumentation] = None,
    ):
        if executor is None:
            executor = default_executor_name()
        if algorithm not in ALGORITHMS:
            raise RewritingError(
                f"unknown algorithm {algorithm!r}; expected one of {', '.join(ALGORITHMS)}"
            )
        if mode not in MODES:
            raise RewritingError(
                f"unknown mode {mode!r}; expected one of {', '.join(MODES)}"
            )
        if executor not in EXECUTORS:
            raise RewritingError(
                f"unknown executor {executor!r}; expected one of {', '.join(EXECUTORS)}"
            )
        self.algorithm = algorithm
        self.mode = mode
        self.executor = executor
        #: Optional :class:`repro.obs.Instrumentation`; when None (the
        #: default for sessions built directly) every hook below is a single
        #: ``is None`` test, so the uninstrumented paths are unchanged.
        self._obs = instrumentation
        self._executor = make_executor(executor)
        self.cache_size = cache_size
        self.use_view_index = use_view_index
        self._views: ViewSet = views if isinstance(views, ViewSet) else ViewSet(list(views))
        self._views_token = self._views.version_token()
        self._index: Optional[ViewRelevanceIndex] = (
            ViewRelevanceIndex(self._views) if use_view_index else None
        )
        self._database = database
        self._db_version: Optional[int] = database.version if database is not None else None
        self._store: Optional[MaterializedViewStore] = None
        self._rewrite_cache = LRUCache(cache_size)
        # Memoizes the renaming of cached plans into a concrete query's own
        # variables; repeated identical (or identically-named) queries skip
        # the per-rewriting substitution work entirely.
        self._translation_cache = LRUCache(cache_size)
        self._answer_cache = LRUCache(cache_size)
        self._containment_cache = LRUCache(cache_size)
        self.requests = 0
        self.invalidations = 0
        #: Deltas applied through apply_delta (the fine-grained churn path).
        self.deltas_applied = 0
        #: Answer-cache entries evicted/retained by delta-scoped invalidation.
        self.delta_evictions = 0
        self.delta_retained = 0
        #: Whether the most recent rewrite_cached/answer call was served from cache.
        self.last_cache_hit = False
        #: Whether the most recent answer/answer_with_plan rows came from the
        #: answer cache (no evaluation).
        self.last_answer_from_cache = False
        #: Fingerprint text of the most recently served query.
        self.last_fingerprint = ""

    # -- configuration ----------------------------------------------------------
    @property
    def views(self) -> ViewSet:
        return self._views

    @property
    def database(self) -> Optional[Database]:
        return self._database

    @property
    def evaluation_executor(
        self,
    ) -> "CompiledExecutor | InterpretedExecutor | ParallelExecutor":
        """The executor instance evaluating this session's plans."""
        return self._executor

    @property
    def instrumentation(self) -> Optional[Instrumentation]:
        """The observability bundle recording this session's metrics, if any."""
        return self._obs

    def store(self) -> MaterializedViewStore:
        """The session's materialized-view store (created on first use).

        Requires a database; the same store backs :meth:`answer` and
        :meth:`apply_delta`, so extents read from it are the ones queries are
        answered against.
        """
        self._require_database()
        return self._view_store()

    def has_cached_answer(self, query: ConjunctiveQuery) -> bool:
        """Whether an answer for ``query`` is currently cached.

        Syncs the database version first, so an entry invalidated by an
        out-of-band mutation is never reported as cached.
        """
        if self._database is not None:
            self._refresh_database_version()
        key = (fingerprint(query).text, self.algorithm, self.mode)
        return self._answer_cache.peek(key) is not None

    def set_views(self, views: "ViewSet | Iterable[View]") -> None:
        """Swap the view set; caches are invalidated unless the contents match."""
        view_set = views if isinstance(views, ViewSet) else ViewSet(list(views))
        if view_set.version_token() == self._views_token and view_set == self._views:
            self._views = view_set
            return
        self._views = view_set
        self._views_token = view_set.version_token()
        self._index = ViewRelevanceIndex(view_set) if self.use_view_index else None
        self._store = None
        self._rewrite_cache.clear()
        self._translation_cache.clear()
        self._answer_cache.clear()
        self.invalidations += 1

    def set_database(self, database: Optional[Database]) -> None:
        """Swap the base database; answer-side caches are invalidated."""
        self._database = database
        self._db_version = database.version if database is not None else None
        self._store = None
        self._answer_cache.clear()
        self.invalidations += 1

    def invalidate(self) -> None:
        """Drop every cached rewriting, answer, verdict and materialization."""
        self._rewrite_cache.clear()
        self._translation_cache.clear()
        self._answer_cache.clear()
        self._containment_cache.clear()
        self._store = None
        self.invalidations += 1

    # -- data churn ----------------------------------------------------------------
    def apply_delta(self, delta: Delta) -> ChangeLog:
        """Apply a data delta with delta-scoped (not coarse) cache invalidation.

        The delta is applied to the session database through the
        materialized-view store, which maintains every view extent
        incrementally and reports which predicates and views actually
        changed.  Answer-cache entries are then evicted *only* when their
        query's predicates intersect the affected set — answers (and all
        cached rewritings, which depend only on the view definitions) for
        untouched predicates survive.  Mutating the database directly instead
        still works, but costs a coarse flush of the whole answer cache.
        """
        self._require_database()  # syncs any out-of-band changes first
        if self._obs is not None:
            with self._obs.stage("delta_apply", size=delta.size()):
                log = self._view_store().apply_delta(delta)
            self._obs.deltas.inc()
        else:
            log = self._view_store().apply_delta(delta)
        assert self._database is not None
        self._db_version = self._database.version
        self.deltas_applied += 1
        if log.delta.is_empty():
            return log
        affected = log.affected_predicates()
        evicted = 0
        retained = 0
        for key in list(self._answer_cache):
            entry = self._answer_cache.peek(key)
            if entry is None:
                continue
            _answers, predicates = entry
            if predicates & affected:
                self._answer_cache.discard(key)
                evicted += 1
            else:
                retained += 1
        self.delta_evictions += evicted
        self.delta_retained += retained
        if evicted:
            self.invalidations += 1
        return log

    # -- rewriting ----------------------------------------------------------------
    def rewrite_cached(self, query: ConjunctiveQuery) -> RewritingResult:
        """Rewrite ``query``, sharing work with every isomorphic earlier query."""
        return self._rewrite_with_fp(query, fingerprint(query))

    def _rewrite_with_fp(
        self, query: ConjunctiveQuery, fp: QueryFingerprint
    ) -> RewritingResult:
        """The cache lookup proper; the fingerprint is computed once per request."""
        started = time.perf_counter()
        self.requests += 1
        self.last_fingerprint = fp.text
        key = (fp.text, self.algorithm, self.mode)
        entry = self._rewrite_cache.get(key)
        obs = self._obs
        if entry is not None:
            self.last_cache_hit = True
            if obs is not None:
                with obs.stage("rewrite_hit", fingerprint=fp.text):
                    result = self._result_from_entry(entry, query, fp)
                obs.cache_event("rewrite", "hit")
            else:
                result = self._result_from_entry(entry, query, fp)
        else:
            self.last_cache_hit = False
            if obs is not None:
                result = self._observed_cold_rewrite(query, fp, obs)
            else:
                result = self._rewrite_uncached(query)
            self._rewrite_cache.put(key, self._entry_from_result(result, fp))
        result.elapsed = time.perf_counter() - started
        return result

    def _observed_cold_rewrite(
        self, query: ConjunctiveQuery, fp: QueryFingerprint, obs: Instrumentation
    ) -> RewritingResult:
        """A cold rewrite with its latency and containment-memo outcomes recorded.

        The memo is process-global, so the per-outcome counts attributed here
        are the *deltas* its counters moved by during this rewrite — exact in
        single-threaded use, approximate when concurrent engines interleave
        (the totals across engines still add up).
        """
        before = containment_memo_stats()
        with obs.stage(
            "rewrite_cold", fingerprint=fp.text, algorithm=self.algorithm
        ):
            result = self._rewrite_uncached(query)
        obs.cache_event("rewrite", "miss")
        after = containment_memo_stats()
        for field, outcome in (
            ("hits", "hit"),
            ("misses", "miss"),
            ("guard_rejections", "guard_rejection"),
            ("bypasses", "bypass"),
        ):
            # max(0, ...) guards against a concurrent memo.reset() mid-rewrite.
            obs.cache_event(
                "containment_memo", outcome, max(0, after[field] - before[field])
            )
        return result

    def _candidate_filter(self, query: ConjunctiveQuery):
        if self._index is None:
            return None
        # The exhaustive search needs whole-body homomorphisms, so the
        # stronger "cover" pruning is sound there; bucket/minicon cover
        # subgoals individually and get "overlap".
        mode = "cover" if self.algorithm == "exhaustive" else "overlap"
        return self._index.make_filter(query, mode)

    def _rewrite_uncached(self, query: ConjunctiveQuery) -> RewritingResult:
        return rewrite(
            query,
            self._views,
            algorithm=self.algorithm,
            mode=self.mode,
            candidate_filter=self._candidate_filter(query),
        )

    def _entry_from_result(
        self, result: RewritingResult, fp: QueryFingerprint
    ) -> _CacheEntry:
        canonical_names = frozenset(term.name for term in fp.renaming.values())
        cached = tuple(
            _CachedRewriting(
                query=_retarget(r.query, fp.renaming, canonical_names),
                kind=r.kind,
                algorithm=r.algorithm,
                views_used=r.views_used,
                expansion=_retarget(r.expansion, fp.renaming, canonical_names),
            )
            for r in result.rewritings
        )
        return _CacheEntry(
            algorithm=result.algorithm,
            rewritings=cached,
            candidates_examined=result.candidates_examined,
        )

    def _result_from_entry(
        self, entry: _CacheEntry, query: ConjunctiveQuery, fp: QueryFingerprint
    ) -> RewritingResult:
        mapping_key = tuple(
            sorted((canonical.name, var.name) for var, canonical in fp.renaming.items())
        )
        translation_key = (fp.text, self.algorithm, self.mode, mapping_key)
        rewritings: Optional[Tuple[Rewriting, ...]] = self._translation_cache.get(
            translation_key
        )
        if rewritings is None:
            inverse = fp.inverse_renaming()
            target_names = frozenset(v.name for v in query.variables())
            rewritings = tuple(
                Rewriting(
                    query=_retarget(cached.query, inverse, target_names),
                    kind=cached.kind,
                    algorithm=cached.algorithm,
                    views_used=cached.views_used,
                    expansion=_retarget(cached.expansion, inverse, target_names),
                )
                for cached in entry.rewritings
            )
            self._translation_cache.put(translation_key, rewritings)
        return RewritingResult(
            query=query,
            views=self._views,
            algorithm=entry.algorithm,
            rewritings=list(rewritings),
            candidates_examined=entry.candidates_examined,
        )

    # -- answering ---------------------------------------------------------------
    def answer(self, query: ConjunctiveQuery) -> FrozenSet[Tuple[Any, ...]]:
        """Answer ``query`` over the session database, preferring view plans.

        An equivalent rewriting (when one exists) is evaluated over the
        materialized view instance; a partial rewriting over views plus base
        relations; otherwise the query is evaluated directly.  Either way the
        result equals direct evaluation of the query — rewritings are only
        used when their kind guarantees equivalence.
        """
        self._require_database()
        fp = fingerprint(query)
        self.last_fingerprint = fp.text
        key = (fp.text, self.algorithm, self.mode)
        cached = self._answer_cache.get(key)
        if cached is not None:
            self.last_cache_hit = True
            self.last_answer_from_cache = True
            if self._obs is not None:
                self._obs.cache_event("answer", "hit")
            return cached[0]
        self.last_answer_from_cache = False
        if self._obs is not None:
            self._obs.cache_event("answer", "miss")
        result = self._rewrite_with_fp(query, fp)
        answers = self._evaluate_observed(query, result)
        self.last_cache_hit = False
        self._answer_cache.put(key, (answers, _query_predicates(query)))
        return answers

    def answer_with_plan(
        self, query: ConjunctiveQuery
    ) -> Tuple[FrozenSet[Tuple[Any, ...]], RewritingResult]:
        """Answers plus the rewriting result that produced (or would produce) them.

        One fingerprint computation and one rewrite-cache lookup serve both —
        the call front ends use when they need the plan *and* the rows, so a
        served query is accounted once, not twice.  ``last_cache_hit`` reports
        the rewrite-cache outcome.
        """
        self._require_database()
        fp = fingerprint(query)
        result = self._rewrite_with_fp(query, fp)
        rewrite_hit = self.last_cache_hit
        key = (fp.text, self.algorithm, self.mode)
        cached = self._answer_cache.get(key)
        self.last_answer_from_cache = cached is not None
        if self._obs is not None:
            self._obs.cache_event("answer", "hit" if cached is not None else "miss")
        if cached is None:
            answers = self._evaluate_observed(query, result)
            self._answer_cache.put(key, (answers, _query_predicates(query)))
        else:
            answers = cached[0]
        self.last_cache_hit = rewrite_hit
        return answers, result

    def _require_database(self) -> None:
        if self._database is None:
            raise RewritingError("this session has no database; pass one to answer queries")
        self._refresh_database_version()

    def _evaluate_observed(
        self, query: ConjunctiveQuery, result: RewritingResult
    ) -> FrozenSet[Tuple[Any, ...]]:
        """Evaluate the chosen plan, recording latency and plan-cache outcomes."""
        obs = self._obs
        if obs is None:
            return self._evaluate_plan(query, result)
        executor = self._executor
        hits_before = getattr(executor, "plan_hits", 0)
        misses_before = getattr(executor, "plan_misses", 0)
        with obs.stage("execute", executor=self.executor):
            answers = self._evaluate_plan(query, result)
        obs.cache_event("plan", "hit", getattr(executor, "plan_hits", 0) - hits_before)
        obs.cache_event(
            "plan", "compile", getattr(executor, "plan_misses", 0) - misses_before
        )
        # The parallel executor reports per-partition worker wall times; feed
        # them into their own stage histogram so partition skew is visible.
        drain = getattr(executor, "drain_partition_timings", None)
        if drain is not None:
            for seconds in drain():
                obs.observe_stage("execute_partition", seconds)
        return answers

    def _evaluate_plan(
        self, query: ConjunctiveQuery, result: RewritingResult
    ) -> FrozenSet[Tuple[Any, ...]]:
        assert self._database is not None
        best = result.best
        if best is not None and best.kind is RewritingKind.EQUIVALENT:
            return evaluate(best.query, self._materialized_instance(), executor=self._executor)
        if best is not None and best.kind is RewritingKind.PARTIAL:
            merged = self._materialized_instance().merge(self._database)
            return evaluate(best.query, merged, executor=self._executor)
        return evaluate(query, self._database, executor=self._executor)

    def _refresh_database_version(self) -> None:
        # The coarse path: an out-of-band mutation moved the version counter,
        # so every cached answer is suspect.  The store self-heals (it
        # re-materializes on next access when stale); the answer cache is
        # flushed wholesale.  apply_delta avoids all of this.
        assert self._database is not None
        version = self._database.version
        if version != self._db_version:
            self._db_version = version
            self._answer_cache.clear()
            self.invalidations += 1

    def _view_store(self) -> MaterializedViewStore:
        assert self._database is not None
        if self._store is None:
            self._store = MaterializedViewStore(self._views, self._database)
        return self._store

    def _materialized_instance(self) -> Database:
        return self._view_store().as_database()

    # -- checkpoint state (the storage layer's hooks) -------------------------------
    def export_store_state(self) -> Optional[Dict[str, Any]]:
        """The view store's exported counters, or None when nothing is live.

        Used by checkpointing: a snapshot that carries this state restores
        without recomputing any extent.  Only meaningful together with the
        base database as it is right now.  Returns None when no store has
        been materialized — checkpointing then records no view state rather
        than forcing a full materialization.
        """
        if self._database is None or self._store is None:
            return None
        return self._view_store().export_state()

    def restore_store_state(self, state: Optional[Dict[str, Any]]) -> bool:
        """Build the view store from checkpointed counters (recovery path).

        Returns True when the state was adopted; an unusable state falls
        back to normal materialization (the store's own self-heal) and
        returns False.  Must be called before any delta or query touches
        the session.
        """
        if self._database is None or state is None:
            return False
        store = MaterializedViewStore(self._views, self._database, state=state)
        adopted = store.restored_views > 0 or not len(self._views)
        self._store = store
        self._db_version = self._database.version
        return adopted

    # -- containment --------------------------------------------------------------
    def contained_cached(self, left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
        """Cached ``left ⊑ right`` (sound: containment is renaming-invariant)."""
        key = (fingerprint(left).text, fingerprint(right).text)
        verdict = self._containment_cache.get(key)
        if verdict is None:
            verdict = is_contained(left, right)
            self._containment_cache.put(key, verdict)
        return verdict

    # -- introspection -------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """A machine-readable snapshot of the session's state and cache health.

        Every entry is per-session except ``"global.containment_memo"``,
        which snapshots the process-wide containment memo; the pre-PR-7
        ``"containment_memo"`` key is kept as a deprecated read-only alias
        (it warns on access and is absent from iteration, so serialized
        stats carry only the namespaced form).
        """
        return _SessionStats({
            "algorithm": self.algorithm,
            "mode": self.mode,
            "executor": self._executor.stats(),
            "requests": self.requests,
            "invalidations": self.invalidations,
            "views": len(self._views),
            "views_token": self._views_token,
            "database_version": self._db_version,
            "materialized": self._store is not None,
            "deltas_applied": self.deltas_applied,
            "delta_evictions": self.delta_evictions,
            "delta_retained": self.delta_retained,
            "store": self._store.stats() if self._store is not None else None,
            "rewrite_cache": self._rewrite_cache.stats(),
            "translation_cache": self._translation_cache.stats(),
            "answer_cache": self._answer_cache.stats(),
            "containment_cache": self._containment_cache.stats(),
            # The process-wide containment memo (fingerprint-keyed verdicts
            # plus guard/bypass accounting) behind every is_contained call
            # this session issues — including the rewriting algorithms' own
            # verification, which the session-local containment_cache above
            # never sees.  Namespaced "global." because the counters are
            # shared by every engine in the process (see _SessionStats).
            "global.containment_memo": containment_memo_stats(),
            "view_index": self._index.stats() if self._index is not None else None,
            "storage": self._storage_stats(),
            "metrics": self._obs.snapshot() if self._obs is not None else None,
        })

    def _storage_stats(self) -> Optional[Dict[str, Any]]:
        """Physical storage counters: per-relation layout, backend when present."""
        if self._database is None:
            return None
        stats: Dict[str, Any] = {"relations": self._database.storage_stats()}
        backend = getattr(self._database, "backend", None)
        if backend is not None:
            stats["backend"] = backend.capabilities.to_dict()
            stats["hydrations"] = getattr(self._database, "hydrations", 0)
        return stats
