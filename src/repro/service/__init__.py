"""The serving layer: high-throughput rewriting with caching and indexes.

The library's :func:`repro.rewriting.rewriter.rewrite` is a one-shot call —
every request re-canonicalizes the query, rescans every view and re-verifies
every candidate.  This package turns it into a long-lived service:

* :mod:`repro.service.fingerprint` — order-insensitive canonical fingerprints,
  so isomorphic queries share cache entries;
* :mod:`repro.service.view_index` — a predicate → views relevance index that
  prunes views before candidate generation;
* :mod:`repro.service.cache` — bounded LRU caches with hit accounting;
* :mod:`repro.service.session` — the :class:`RewritingSession` facade
  (``rewrite_cached``, ``answer``, ``contained_cached``, ``stats``);
* :mod:`repro.service.batch` — batch workloads with optional multiprocessing
  fan-out.

The E11 benchmark (``benchmarks/bench_e11_service_throughput.py``) measures
the cold-vs-warm speedup this layer delivers on repeated workload queries.
"""

from repro.service.batch import BatchItem, BatchReport, run_batch
from repro.service.cache import LRUCache
from repro.service.fingerprint import (
    QueryFingerprint,
    fingerprint,
    fingerprint_text,
    isomorphism_witness,
)
from repro.service.session import RewritingSession
from repro.service.view_index import ViewRelevanceIndex

__all__ = [
    "BatchItem",
    "BatchReport",
    "LRUCache",
    "QueryFingerprint",
    "RewritingSession",
    "ViewRelevanceIndex",
    "fingerprint",
    "fingerprint_text",
    "isomorphism_witness",
    "run_batch",
]
