"""A predicate → views relevance index for candidate pruning.

Bucket and MiniCon candidate generation scan *every* view for every query and
rediscover, per request, that most views mention none of the query's
relations.  The index precomputes, once per view set, which views mention
which relation signatures; per query it then produces a
``candidate_filter`` (see :mod:`repro.rewriting.candidates`) that the
algorithms consult before doing any per-view work.

Two pruning modes are provided, matching the soundness requirements of the
algorithms:

``overlap``
    Keep views sharing at least one body signature with the query.  A view
    with no overlapping signature produces no bucket entries and no MCDs (the
    algorithms match subgoals by signature), so pruning it cannot change any
    result of the bucket or MiniCon algorithms.

``cover``
    Keep views whose *every* body signature occurs in the query.  The
    candidate atoms of :mod:`repro.rewriting.candidates` require a
    homomorphism of the entire view body into the query body, which is
    impossible when the view mentions a relation the query does not; this is
    the right mode for the exhaustive (equivalent-rewriting) search.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.views import View, ViewSet

#: Relation signature: (predicate name, arity).
Signature = Tuple[str, int]

#: The pruning modes accepted by :meth:`ViewRelevanceIndex.make_filter`.
MODES = ("overlap", "cover")


class ViewRelevanceIndex:
    """Maps relation signatures to the views whose definitions mention them."""

    def __init__(self, views: "ViewSet | Iterable[View]"):
        view_set = views if isinstance(views, ViewSet) else ViewSet(list(views))
        self.views = view_set
        self._by_signature: Dict[Signature, List[str]] = {}
        self._view_signatures: Dict[str, FrozenSet[Signature]] = {}
        for view in view_set:
            signatures = view.definition.predicates()
            self._view_signatures[view.name] = signatures
            for signature in signatures:
                self._by_signature.setdefault(signature, []).append(view.name)
        # Pruning counters (reported through RewritingSession.stats()).
        self.queries_filtered = 0
        self.views_admitted = 0
        self.views_pruned = 0

    # -- lookups ---------------------------------------------------------------
    def views_for_signature(self, signature: Signature) -> Tuple[str, ...]:
        """Names of the views mentioning a relation signature."""
        return tuple(self._by_signature.get(signature, ()))

    def signatures(self) -> Tuple[Signature, ...]:
        """All indexed relation signatures (deterministic order)."""
        return tuple(sorted(self._by_signature))

    def relevant_names(self, query: ConjunctiveQuery, mode: str = "overlap") -> Set[str]:
        """Names of views passing the given pruning mode for ``query``."""
        if mode not in MODES:
            raise ValueError(f"unknown relevance mode {mode!r}; expected one of {MODES}")
        query_signatures = query.predicates()
        overlapping: Set[str] = set()
        for signature in query_signatures:
            overlapping.update(self._by_signature.get(signature, ()))
        if mode == "overlap":
            return overlapping
        return {
            name
            for name in overlapping
            if self._view_signatures[name] <= query_signatures
        }

    def relevant_views(self, query: ConjunctiveQuery, mode: str = "overlap") -> ViewSet:
        """The subset of the indexed views relevant to ``query`` (order preserved)."""
        return self.views.restrict(self.relevant_names(query, mode))

    # -- filter construction -----------------------------------------------------
    def make_filter(
        self, query: ConjunctiveQuery, mode: str = "overlap"
    ) -> Callable[[ConjunctiveQuery, View], bool]:
        """A ``candidate_filter`` closure for one query.

        The relevant-name set is computed once here, so the per-view check the
        algorithms perform is a set lookup.
        """
        names = self.relevant_names(query, mode)
        self.queries_filtered += 1

        def candidate_filter(_query: ConjunctiveQuery, view: View) -> bool:
            if view.name in names:
                self.views_admitted += 1
                return True
            self.views_pruned += 1
            return False

        return candidate_filter

    def stats(self) -> Dict[str, int]:
        """Pruning counters plus index shape."""
        return {
            "views": len(self.views),
            "signatures": len(self._by_signature),
            "queries_filtered": self.queries_filtered,
            "views_admitted": self.views_admitted,
            "views_pruned": self.views_pruned,
        }
