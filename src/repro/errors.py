"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so client
code can catch a single type.  More specific subclasses indicate the layer in
which the problem occurred (parsing, query construction, engine evaluation,
rewriting).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ParseError(ReproError):
    """Raised when the datalog text parser cannot interpret its input.

    Attributes
    ----------
    text:
        The full input text being parsed.
    position:
        The character offset at which the error was detected (or ``None``).
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        location = self.location()
        if location is None:
            return base
        line, col = location
        return f"{base} (line {line}, column {col})"

    def location(self) -> "tuple[int, int] | None":
        """The 1-based ``(line, column)`` of the error, when known."""
        if self.position is None or not self.text:
            return None
        line = self.text.count("\n", 0, self.position) + 1
        last_newline = self.text.rfind("\n", 0, self.position)
        col = self.position - last_newline
        return line, col

    def caret_context(self, max_width: int = 78) -> "str | None":
        """The offending source line with a caret under the error column.

        Returns ``None`` when no position is attached.  Long lines are
        windowed around the error so the caret always fits in ``max_width``
        columns.
        """
        location = self.location()
        if location is None:
            return None
        line_no, col = location
        lines = self.text.splitlines()
        # An at-end-of-input position on newline-terminated text points one
        # line past the last: caret an empty line rather than crash.
        source_line = lines[line_no - 1] if line_no <= len(lines) else ""
        caret_index = min(col - 1, len(source_line))
        start = 0
        if caret_index >= max_width:
            start = caret_index - max_width // 2
        window = source_line[start : start + max_width]
        if start > 0:
            window = "..." + window[3:]
        return f"{window}\n{' ' * (caret_index - start)}^"


class QueryConstructionError(ReproError):
    """Raised when a query, view or atom is built from inconsistent parts."""


class UnsafeQueryError(QueryConstructionError):
    """Raised for unsafe queries (head or comparison variables not bound in the body)."""


class SchemaError(ReproError):
    """Raised when relations are used with inconsistent arities."""


class EvaluationError(ReproError):
    """Raised by the engine when a query cannot be evaluated."""


class RewritingError(ReproError):
    """Raised when a rewriting request is malformed (e.g. unknown algorithm)."""


class MaterializationError(ReproError):
    """Raised by the materialized-view store (delta application, maintenance)."""


class ConstraintViolationError(ReproError):
    """Raised when attached data violates a catalog integrity constraint.

    Carries the names of the violated (denial) constraints in ``violated``.
    """

    def __init__(self, message: str, violated: "tuple[str, ...]" = ()):
        super().__init__(message)
        self.violated = tuple(violated)


class StorageError(ReproError):
    """Raised by the persistence layer (:mod:`repro.storage`).

    Covers backend failures (unsupported values or relation names, closed
    backends), write-ahead-log problems and snapshot problems.  The two
    recovery-relevant corruption cases carry their own subclasses below so
    callers can distinguish "repairable tail damage" from "unusable file".
    """


class WalCorruptionError(StorageError):
    """Raised when a write-ahead log is damaged beyond tail repair.

    Torn tails and CRC-corrupt trailing records are *not* errors — recovery
    truncates them cleanly (see :meth:`repro.storage.WriteAheadLog.replay`).
    This is raised only when the file itself is unrecognizable (bad magic),
    or when a corrupt record is found while repair is disabled.
    """


class SnapshotError(StorageError):
    """Raised when a snapshot file is unreadable (bad magic, short, CRC).

    Recovery treats this as "snapshot missing": it falls back to an older
    snapshot or a full WAL replay rather than crashing (see
    :meth:`repro.storage.StorageManager.recover`).
    """


class UnsupportedFeatureError(ReproError):
    """Raised when an algorithm is asked to handle a feature it does not support.

    For example the MiniCon implementation rejects queries with comparison
    predicates in positions it cannot reason about soundly.
    """
