"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so client
code can catch a single type.  More specific subclasses indicate the layer in
which the problem occurred (parsing, query construction, engine evaluation,
rewriting).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ParseError(ReproError):
    """Raised when the datalog text parser cannot interpret its input.

    Attributes
    ----------
    text:
        The full input text being parsed.
    position:
        The character offset at which the error was detected (or ``None``).
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position is None or not self.text:
            return base
        line = self.text.count("\n", 0, self.position) + 1
        last_newline = self.text.rfind("\n", 0, self.position)
        col = self.position - last_newline
        return f"{base} (line {line}, column {col})"


class QueryConstructionError(ReproError):
    """Raised when a query, view or atom is built from inconsistent parts."""


class UnsafeQueryError(QueryConstructionError):
    """Raised for unsafe queries (head or comparison variables not bound in the body)."""


class SchemaError(ReproError):
    """Raised when relations are used with inconsistent arities."""


class EvaluationError(ReproError):
    """Raised by the engine when a query cannot be evaluated."""


class RewritingError(ReproError):
    """Raised when a rewriting request is malformed (e.g. unknown algorithm)."""


class MaterializationError(ReproError):
    """Raised by the materialized-view store (delta application, maintenance)."""


class UnsupportedFeatureError(ReproError):
    """Raised when an algorithm is asked to handle a feature it does not support.

    For example the MiniCon implementation rejects queries with comparison
    predicates in positions it cannot reason about soundly.
    """
