"""Checkpoint files: base extents plus view-store state, atomically written.

A snapshot captures everything recovery needs to skip the WAL prefix up to
its sequence number:

* magic ``b"RSNAP1\\n"``;
* a u32 header length followed by a JSON header
  ``{"format": 1, "seq": <wal seq>, "version": <db version>}``;
* a u64 payload length, the payload's CRC-32 (u32), then the pickled
  payload ``{"relations": {name: (arity, [rows...])}, "store": state}``
  where ``store`` is :meth:`MaterializedViewStore.export_state` output or
  ``None`` when no store existed at checkpoint time.

Snapshots are written atomically — temp file, fsync, rename to
``snapshot-<seq:016d>.snap``, fsync the directory — so a crash mid-write
leaves either the old snapshot set or the new one, never a half file.
Older snapshots are pruned after a successful write (the latest is always
kept); a snapshot that fails to read raises
:class:`~repro.errors.SnapshotError`, which recovery treats as "try the
next older one, else replay the whole WAL".
"""

from __future__ import annotations

import json
import os
import pickle
import re
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SnapshotError

MAGIC = b"RSNAP1\n"
FORMAT = 1
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_FILE_RE = re.compile(r"snapshot-(\d{16})\.snap\Z")


@dataclass(frozen=True)
class Snapshot:
    """One loaded checkpoint."""

    seq: int
    version: int
    relations: Dict[str, Tuple[int, List[Tuple[Any, ...]]]]
    store_state: Optional[Dict[str, Any]]
    path: str
    size_bytes: int


def snapshot_path(directory: str, seq: int) -> str:
    return os.path.join(directory, f"snapshot-{seq:016d}.snap")


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """(seq, path) for every snapshot file, newest first."""
    out: List[Tuple[int, str]] = []
    if not os.path.isdir(directory):
        return out
    for entry in os.listdir(directory):
        match = _FILE_RE.match(entry)
        if match is not None:
            out.append((int(match.group(1)), os.path.join(directory, entry)))
    out.sort(reverse=True)
    return out


def latest_snapshot(directory: str) -> Optional[Tuple[int, str]]:
    """The newest snapshot's (seq, path), or None."""
    snapshots = list_snapshots(directory)
    return snapshots[0] if snapshots else None


def write_snapshot(
    directory: str,
    seq: int,
    version: int,
    relations: Dict[str, Tuple[int, List[Tuple[Any, ...]]]],
    store_state: Optional[Dict[str, Any]] = None,
    prune: bool = True,
) -> Tuple[str, int]:
    """Atomically write a checkpoint; returns (path, size in bytes)."""
    os.makedirs(directory, exist_ok=True)
    header = json.dumps({"format": FORMAT, "seq": seq, "version": version}).encode(
        "utf-8"
    )
    payload = pickle.dumps(
        {"relations": relations, "store": store_state},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    final = snapshot_path(directory, seq)
    temp = final + ".tmp"
    with open(temp, "wb") as handle:
        handle.write(MAGIC)
        handle.write(_U32.pack(len(header)))
        handle.write(header)
        handle.write(_U64.pack(len(payload)))
        handle.write(_U32.pack(zlib.crc32(payload)))
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, final)
    _fsync_dir(directory)
    size = os.path.getsize(final)
    if prune:
        for other_seq, other_path in list_snapshots(directory):
            if other_path != final:
                try:
                    os.remove(other_path)
                except OSError:
                    pass
    return final, size


def read_snapshot(path: str) -> Snapshot:
    """Load one checkpoint file; any malformation raises :class:`SnapshotError`."""
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(MAGIC))
            if magic != MAGIC:
                raise SnapshotError(
                    f"{path} does not start with the snapshot magic (found {magic!r})"
                )
            header_len_raw = handle.read(_U32.size)
            if len(header_len_raw) < _U32.size:
                raise SnapshotError(f"{path}: truncated header length")
            (header_len,) = _U32.unpack(header_len_raw)
            header_raw = handle.read(header_len)
            if len(header_raw) < header_len:
                raise SnapshotError(f"{path}: truncated header")
            try:
                header = json.loads(header_raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise SnapshotError(f"{path}: unreadable header ({exc})") from exc
            if header.get("format") != FORMAT:
                raise SnapshotError(
                    f"{path}: unsupported snapshot format {header.get('format')!r}"
                )
            length_raw = handle.read(_U64.size)
            crc_raw = handle.read(_U32.size)
            if len(length_raw) < _U64.size or len(crc_raw) < _U32.size:
                raise SnapshotError(f"{path}: truncated payload framing")
            (payload_len,) = _U64.unpack(length_raw)
            (crc,) = _U32.unpack(crc_raw)
            payload = handle.read(payload_len)
            if len(payload) < payload_len:
                raise SnapshotError(f"{path}: truncated payload")
            if zlib.crc32(payload) != crc:
                raise SnapshotError(f"{path}: payload CRC mismatch")
            try:
                data = pickle.loads(payload)
            except Exception as exc:  # pickle raises a zoo of types
                raise SnapshotError(f"{path}: unreadable payload ({exc})") from exc
    except OSError as exc:
        raise SnapshotError(f"{path}: {exc}") from exc
    if not isinstance(data, dict) or "relations" not in data:
        raise SnapshotError(f"{path}: payload is not a snapshot body")
    return Snapshot(
        seq=int(header["seq"]),
        version=int(header.get("version", 0)),
        relations=data["relations"],
        store_state=data.get("store"),
        path=path,
        size_bytes=os.path.getsize(path),
    )


def _fsync_dir(directory: str) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
