"""The SQLite storage backend: persistent rows, scans pushed down to SQL.

One SQLite database file (or ``:memory:``) holds:

* ``repro_catalog`` — relation name → arity;
* ``repro_meta`` — the recovery metadata (e.g. ``applied_seq``);
* one table ``r_<name>`` per relation, one ``TEXT`` column per position,
  with a primary key over all columns (set semantics enforced by the
  engine-side ``INSERT OR IGNORE``).

Values are stored as *tagged text* so heterogeneous columns round-trip with
Python equality intact: ``s<chars>`` for strings, ``i<digits>`` for ints,
``f<repr>`` for floats, ``k<json>`` for Skolem values.  Numerics are
canonicalized before tagging — bools become ints and integral floats become
ints — so two values that compare equal in Python (``True == 1``,
``2.0 == 2``) always share one encoding; without this, a sqlite-backed
relation could hold "duplicate" rows a memory relation would deduplicate.

Scans with constant bindings become SQL ``WHERE`` clauses (the pushdown the
capability flag advertises); full scans hydrate columnar relations.  Join
execution stays in :mod:`repro.exec`.
"""

from __future__ import annotations

import json
import re
import sqlite3
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.engine.relation import SkolemValue
from repro.storage.backend import BackendCapabilities, Row, StorageBackend

#: Relation names must be identifier-shaped; they become (quoted) table names.
_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


# -- value encoding ---------------------------------------------------------------
def encode_value(value: Any) -> str:
    """One stored value as tagged text (see the module docs for the scheme)."""
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, str):
        return "s" + value
    if isinstance(value, int):
        return "i" + str(value)
    if isinstance(value, float):
        if value != value:
            raise StorageError("NaN cannot be stored (it breaks set semantics)")
        if value.is_integer():
            return "i" + str(int(value))
        return "f" + repr(value)
    if isinstance(value, SkolemValue):
        return "k" + json.dumps(_skolem_to_obj(value), separators=(",", ":"))
    raise StorageError(
        f"value {value!r} of type {type(value).__name__} cannot be stored in a "
        "sqlite backend (str, bool, int, float and SkolemValue are supported)"
    )


def decode_value(text: str) -> Any:
    tag, body = text[:1], text[1:]
    if tag == "s":
        return body
    if tag == "i":
        return int(body)
    if tag == "f":
        return float(body)
    if tag == "k":
        return _skolem_from_obj(json.loads(body))
    raise StorageError(f"unknown value tag {tag!r} in stored text {text!r}")


def _skolem_to_obj(value: SkolemValue) -> Dict[str, Any]:
    return {
        "f": value.function,
        "a": [
            _skolem_to_obj(arg) if isinstance(arg, SkolemValue) else encode_value(arg)
            for arg in value.args
        ],
    }


def _skolem_from_obj(obj: Dict[str, Any]) -> SkolemValue:
    return SkolemValue(
        obj["f"],
        tuple(
            _skolem_from_obj(arg) if isinstance(arg, dict) else decode_value(arg)
            for arg in obj["a"]
        ),
    )


class SQLiteBackend(StorageBackend):
    """A :class:`StorageBackend` over one SQLite database.

    Parameters
    ----------
    path:
        Database file path; ``None`` uses ``:memory:`` (persistence off,
        useful for differential testing and the ``REPRO_DEFAULT_BACKEND``
        CI leg).
    """

    def __init__(self, path: Optional[str] = None):
        self._path = str(path) if path is not None else None
        self._lock = threading.RLock()
        self._txn_depth = 0
        self._closed = False
        # One connection, guarded by the lock: the HTTP layer serializes
        # engine access anyway, and check_same_thread=False lets worker
        # threads reuse it under that discipline.
        self._conn = sqlite3.connect(
            self._path if self._path is not None else ":memory:",
            check_same_thread=False,
            isolation_level=None,  # autocommit; transaction() issues BEGIN itself
        )
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS repro_catalog "
            "(name TEXT PRIMARY KEY, arity INTEGER NOT NULL)"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS repro_meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        self._arities: Dict[str, int] = {
            name: arity
            for name, arity in self._conn.execute(
                "SELECT name, arity FROM repro_catalog"
            )
        }

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("this sqlite backend is closed")

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="sqlite",
            persistent=self._path is not None,
            durable=self._path is not None,
            filter_pushdown=True,
        )

    # -- SQL helpers -------------------------------------------------------------
    @staticmethod
    def _table(name: str) -> str:
        if not _NAME_RE.match(name):
            raise StorageError(
                f"relation name {name!r} is not storable in a sqlite backend "
                "(identifier-shaped names only)"
            )
        return f'"r_{name}"'

    @staticmethod
    def _columns(arity: int) -> List[str]:
        # Arity-0 (boolean) relations get one marker column holding ''.
        return [f"c{i}" for i in range(max(arity, 1))]

    # -- catalog -----------------------------------------------------------------
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._arities)

    def arity(self, name: str) -> int:
        arity = self._arities.get(name)
        if arity is None:
            raise StorageError(f"unknown relation {name!r}")
        return arity

    def create_relation(self, name: str, arity: int) -> None:
        self._check_open()
        with self._lock:
            existing = self._arities.get(name)
            if existing is not None:
                if existing != arity:
                    raise StorageError(
                        f"relation {name!r} exists with arity {existing}, "
                        f"requested {arity}"
                    )
                return
            columns = self._columns(arity)
            spec = ", ".join(f"{c} TEXT NOT NULL" for c in columns)
            keys = ", ".join(columns)
            self._conn.execute(
                f"CREATE TABLE IF NOT EXISTS {self._table(name)} "
                f"({spec}, PRIMARY KEY ({keys})) WITHOUT ROWID"
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO repro_catalog (name, arity) VALUES (?, ?)",
                (name, arity),
            )
            self._arities[name] = arity

    def drop_relation(self, name: str) -> None:
        self._check_open()
        with self._lock:
            if self._arities.pop(name, None) is None:
                return
            self._conn.execute(f"DROP TABLE IF EXISTS {self._table(name)}")
            self._conn.execute("DELETE FROM repro_catalog WHERE name = ?", (name,))

    # -- rows --------------------------------------------------------------------
    def scan(
        self, name: str, bindings: Optional[Mapping[int, Any]] = None
    ) -> Iterator[Row]:
        self._check_open()
        with self._lock:
            arity = self._arities.get(name)
            if arity is None:
                return iter(())
            columns = self._columns(arity)
            sql = f"SELECT {', '.join(columns)} FROM {self._table(name)}"
            params: List[str] = []
            if bindings:
                clauses = []
                for position, value in sorted(bindings.items()):
                    if not 0 <= position < arity:
                        raise StorageError(
                            f"binding position {position} out of range for "
                            f"{name!r}/{arity}"
                        )
                    clauses.append(f"c{position} = ?")
                    params.append(encode_value(value))
                sql += " WHERE " + " AND ".join(clauses)
            raw = self._conn.execute(sql, params).fetchall()
        if arity == 0:
            return iter([()] * len(raw))
        return (tuple(decode_value(text) for text in row) for row in raw)

    def _encode_row(self, name: str, arity: int, row: Sequence[Any]) -> Tuple[str, ...]:
        values = tuple(row)
        if len(values) != arity:
            raise StorageError(
                f"row of arity {len(values)} for relation {name!r}/{arity}"
            )
        if arity == 0:
            return ("",)
        return tuple(encode_value(value) for value in values)

    def insert(self, name: str, arity: int, rows: Iterable[Sequence[Any]]) -> int:
        self._check_open()
        with self._lock:
            self.create_relation(name, arity)
            columns = self._columns(arity)
            sql = (
                f"INSERT OR IGNORE INTO {self._table(name)} "
                f"({', '.join(columns)}) VALUES ({', '.join('?' for _ in columns)})"
            )
            before = self._conn.total_changes
            self._conn.executemany(
                sql, (self._encode_row(name, arity, row) for row in rows)
            )
            return self._conn.total_changes - before

    def delete(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        self._check_open()
        with self._lock:
            arity = self._arities.get(name)
            if arity is None:
                raise StorageError(f"unknown relation {name!r}")
            columns = self._columns(arity)
            sql = (
                f"DELETE FROM {self._table(name)} WHERE "
                + " AND ".join(f"{c} = ?" for c in columns)
            )
            before = self._conn.total_changes
            self._conn.executemany(
                sql, (self._encode_row(name, arity, row) for row in rows)
            )
            return self._conn.total_changes - before

    def count(self, name: str) -> int:
        self._check_open()
        with self._lock:
            if name not in self._arities:
                return 0
            (count,) = self._conn.execute(
                f"SELECT COUNT(*) FROM {self._table(name)}"
            ).fetchone()
            return int(count)

    # -- metadata ----------------------------------------------------------------
    def get_meta(self, key: str) -> Optional[str]:
        self._check_open()
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM repro_meta WHERE key = ?", (key,)
            ).fetchone()
            return row[0] if row is not None else None

    def set_meta(self, key: str, value: str) -> None:
        self._check_open()
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO repro_meta (key, value) VALUES (?, ?)",
                (key, str(value)),
            )

    # -- grouping ----------------------------------------------------------------
    @contextmanager
    def transaction(self) -> Iterator[None]:
        """One SQLite transaction; nested calls join the outermost one."""
        self._check_open()
        with self._lock:
            if self._txn_depth == 0:
                self._conn.execute("BEGIN IMMEDIATE")
            self._txn_depth += 1
            try:
                yield
            except BaseException:
                self._txn_depth -= 1
                if self._txn_depth == 0:
                    self._conn.execute("ROLLBACK")
                raise
            else:
                self._txn_depth -= 1
                if self._txn_depth == 0:
                    self._conn.execute("COMMIT")

    # -- introspection -----------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        stats["path"] = self._path or ":memory:"
        return stats
