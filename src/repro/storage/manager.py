"""The :class:`StorageManager`: one durable directory = WAL + snapshots + backend.

Directory layout::

    <dir>/wal.log                  the write-ahead delta log
    <dir>/data.sqlite              base rows (sqlite backend only)
    <dir>/snapshot-<seq>.snap      checkpoints (latest kept, older pruned)

The manager owns the recovery contract.  Recovered state is always *base
state as of* ``base_seq`` *plus the WAL tail* ``seq > base_seq``:

* **memory backend** — the base is the newest readable snapshot
  (``base_seq`` = its WAL sequence number, 0 when none exists: full replay
  from an empty database);
* **sqlite backend** — the base is the sqlite file itself, which records
  ``applied_seq`` in its metadata table inside the same transaction as each
  delta's rows; a snapshot then only contributes the materialized-view
  store's counters, and only when its sequence number matches
  (otherwise the store recomputes from the recovered base — the existing
  self-heal path).

Deltas are idempotent under set semantics, so at-least-once replay of the
tail is safe across every crash window (journaled-but-unapplied,
applied-but-unmarked, marked-but-unsnapshotted).  Unreadable snapshots are
skipped oldest-ward and the log replays from further back — corruption
degrades recovery time, never correctness.

The *durable apply* protocol (driven by the engine) is::

    seq = manager.journal(delta)      # WAL first
    session.apply_delta(delta)        # then the engine (+ sqlite write-through)
    manager.mark_applied(seq)         # then the applied-watermark (sqlite only)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SnapshotError, StorageError
from repro.engine.database import Database
from repro.storage.backed import BackedDatabase
from repro.storage.backend import StorageBackend
from repro.storage.snapshot import (
    Snapshot,
    list_snapshots,
    read_snapshot,
    write_snapshot,
)
from repro.storage.wal import WalRecord, WalReplayReport, WriteAheadLog

WAL_FILENAME = "wal.log"
SQLITE_FILENAME = "data.sqlite"
APPLIED_SEQ_KEY = "applied_seq"


@dataclass
class RecoveryResult:
    """Everything :meth:`StorageManager.recover` reconstructed."""

    database: Database
    #: Exported view-store state usable as-of ``base_seq``, or None.
    store_state: Optional[Dict[str, Any]]
    #: WAL records with ``seq > base_seq``, to be replayed through a session.
    tail: List[WalRecord]
    base_seq: int
    report: Dict[str, Any] = field(default_factory=dict)


class StorageManager:
    """Owns one durable directory: journal, checkpoint, recover.

    Parameters
    ----------
    directory:
        The storage directory (created when absent).
    backend:
        ``"memory"`` or ``"sqlite"`` — where base rows live between
        checkpoints (see the module docs).
    fsync:
        The WAL fsync policy (``always`` / ``batch`` / ``none``).
    """

    def __init__(
        self,
        directory: str,
        backend: str = "memory",
        fsync: str = "batch",
    ):
        if backend not in ("memory", "sqlite"):
            raise StorageError(
                f"unknown storage backend {backend!r} for a durable directory "
                "(choose 'memory' or 'sqlite')"
            )
        self._directory = str(directory)
        self._backend_name = backend
        self._closed = False
        os.makedirs(self._directory, exist_ok=True)
        # Observability hooks are late-bound (bind_metrics) because the
        # engine creates its Instrumentation after the manager exists.
        self._append_hook: Optional[Callable[[float, int], None]] = None
        self._fsync_hook: Optional[Callable[[float], None]] = None
        self._wal = WriteAheadLog(
            os.path.join(self._directory, WAL_FILENAME),
            fsync=fsync,
            on_append=self._on_append,
            on_fsync=self._on_fsync,
        )
        self._backend: Optional[StorageBackend] = None
        self._applied_seq = 0
        self._checkpoints = 0
        self._last_snapshot_seq: Optional[int] = None
        self._last_snapshot_bytes = 0
        existing = list_snapshots(self._directory)
        if existing:
            self._last_snapshot_seq = existing[0][0]
            self._last_snapshot_bytes = os.path.getsize(existing[0][1])

    # -- observability -----------------------------------------------------------
    def _on_append(self, seconds: float, nbytes: float) -> None:
        if self._append_hook is not None:
            self._append_hook(seconds, nbytes)

    def _on_fsync(self, seconds: float) -> None:
        if self._fsync_hook is not None:
            self._fsync_hook(seconds)

    def bind_metrics(self, instrumentation: Any) -> None:
        """Register WAL/snapshot series on an :class:`Instrumentation` bundle."""
        registry = instrumentation.registry
        append_seconds = registry.histogram(
            "repro_wal_append_seconds", "Latency of one WAL record append."
        )
        fsync_seconds = registry.histogram(
            "repro_wal_fsync_seconds", "Latency of one WAL fsync."
        )
        append_bytes = registry.counter(
            "repro_wal_bytes_total", "Payload bytes appended to the WAL."
        )
        self._snapshot_bytes_gauge = registry.gauge(
            "repro_snapshot_bytes", "Size of the newest snapshot, in bytes."
        )
        self._replay_counter = registry.counter(
            "repro_wal_replayed_records_total",
            "WAL records replayed during recovery.",
        )
        if self._last_snapshot_bytes:
            self._snapshot_bytes_gauge.set(self._last_snapshot_bytes)

        def on_append(seconds: float, nbytes: int) -> None:
            append_seconds.observe(seconds)
            append_bytes.inc(nbytes)

        self._append_hook = on_append
        self._fsync_hook = fsync_seconds.observe

    # -- properties --------------------------------------------------------------
    @property
    def directory(self) -> str:
        return self._directory

    @property
    def backend_name(self) -> str:
        return self._backend_name

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def last_seq(self) -> int:
        return self._wal.last_seq

    @property
    def applied_seq(self) -> int:
        return self._applied_seq

    # -- recovery ----------------------------------------------------------------
    def recover(self) -> RecoveryResult:
        """Rebuild base state + WAL tail from the directory (see module docs)."""
        skipped: List[Dict[str, str]] = []
        snapshot: Optional[Snapshot] = None
        for seq, path in list_snapshots(self._directory):
            try:
                snapshot = read_snapshot(path)
                break
            except SnapshotError as exc:
                skipped.append({"path": path, "error": str(exc)})
        store_state: Optional[Dict[str, Any]] = None

        if self._backend_name == "sqlite":
            backend = _make_sqlite_backend(
                os.path.join(self._directory, SQLITE_FILENAME)
            )
            self._backend = backend
            database: Database = BackedDatabase(backend)
            base_seq = int(backend.get_meta(APPLIED_SEQ_KEY) or 0)
            if snapshot is not None and snapshot.seq == base_seq:
                store_state = snapshot.store_state
        else:
            database = Database()
            base_seq = 0
            if snapshot is not None:
                base_seq = snapshot.seq
                store_state = snapshot.store_state
                for name, (arity, rows) in snapshot.relations.items():
                    relation = database.ensure_relation(name, arity)
                    for row in rows:
                        relation.add(tuple(row))

        tail, wal_report = self._wal.replay(after_seq=base_seq)
        self._applied_seq = base_seq
        if getattr(self, "_replay_counter", None) is not None:
            self._replay_counter.inc(len(tail))
        report = {
            "backend": self._backend_name,
            "base_seq": base_seq,
            "snapshot": None
            if snapshot is None
            else {"path": snapshot.path, "seq": snapshot.seq},
            "snapshots_skipped": skipped,
            "store_state_used": store_state is not None,
            "wal": wal_report.to_dict(),
            "tail_records": len(tail),
        }
        return RecoveryResult(
            database=database,
            store_state=store_state,
            tail=tail,
            base_seq=base_seq,
            report=report,
        )

    def attach_database(self, database: Database) -> Database:
        """Wrap/ingest a *fresh* dataset into the managed base store.

        Only valid when the directory holds no prior state; loading data over
        an existing log would silently fork history.
        """
        if self.last_seq or list_snapshots(self._directory):
            raise StorageError(
                f"storage directory {self._directory!r} already holds state; "
                "recover it instead of loading fresh data (or point at a new "
                "directory)"
            )
        if self._backend_name == "sqlite":
            backend = _make_sqlite_backend(
                os.path.join(self._directory, SQLITE_FILENAME)
            )
            self._backend = backend
            return BackedDatabase.from_database(database, backend)
        # The memory backend has no base store: attached facts only survive a
        # restart through a snapshot, so write the baseline one immediately.
        if database.size():
            self.checkpoint(database)
        return database

    # -- the durable-apply protocol ----------------------------------------------
    def journal(self, delta: Any, db_version: int) -> int:
        """Append one delta to the WAL (before applying it); returns its seq."""
        if self._closed:
            raise StorageError("this storage manager is closed")
        return self._wal.append(delta.to_text(), db_version)

    def mark_applied(self, seq: int) -> None:
        """Record that everything up to ``seq`` is in the base store."""
        self._applied_seq = seq
        if self._backend is not None:
            self._backend.set_meta(APPLIED_SEQ_KEY, str(seq))

    def checkpoint(
        self,
        database: Database,
        store_state: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Write a snapshot of the current state at the current WAL position."""
        if self._closed:
            raise StorageError("this storage manager is closed")
        self._wal.flush()
        seq = self._applied_seq
        relations = {
            relation.name: (relation.arity, sorted(relation.tuples(), key=repr))
            for relation in database
        }
        path, size = write_snapshot(
            self._directory,
            seq=seq,
            version=database.version,
            relations=relations,
            store_state=store_state,
        )
        self._checkpoints += 1
        self._last_snapshot_seq = seq
        self._last_snapshot_bytes = size
        if getattr(self, "_snapshot_bytes_gauge", None) is not None:
            self._snapshot_bytes_gauge.set(size)
        return {"path": path, "seq": seq, "bytes": size}

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._wal.close()
        if self._backend is not None:
            self._backend.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- introspection -----------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """Health summary (the server's ``/healthz`` embeds this)."""
        return {
            "directory": self._directory,
            "backend": self._backend_name,
            "wal": self._wal.stats(),
            "applied_seq": self._applied_seq,
            "wal_lag": max(0, self._wal.last_seq - self._applied_seq),
            "snapshot_seq": self._last_snapshot_seq,
            "snapshot_bytes": self._last_snapshot_bytes,
            "checkpoints": self._checkpoints,
        }


def _make_sqlite_backend(path: str) -> StorageBackend:
    from repro.storage.sqlite import SQLiteBackend  # local import: keep sqlite lazy

    return SQLiteBackend(path)
