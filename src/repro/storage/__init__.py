"""repro.storage — pluggable persistent backends, WAL durability, recovery.

The persistence subsystem under the engine facade:

* :class:`StorageBackend` / :class:`BackendCapabilities` — the row-store
  protocol (:class:`MemoryBackend` is the reference implementation,
  :class:`~repro.storage.sqlite.SQLiteBackend` the persistent adapter);
* :class:`BackedDatabase` — a :class:`~repro.engine.database.Database`
  write-through mirrored onto a backend, with lazy hydration and scan
  pushdown;
* :class:`WriteAheadLog` — the CRC-framed durable delta journal;
* snapshots (:func:`write_snapshot` / :func:`read_snapshot`) and the
  :class:`StorageManager` that ties journal + checkpoints + backend into
  restart-replay recovery.

Quickstart::

    import repro

    engine = repro.connect(views=VIEWS, data=FACTS,
                           storage="state.d", wal="always", snapshot=1000)
    engine.apply("+ cites(a, b).")       # journaled, then applied
    engine.checkpoint()                  # snapshot now
    engine.close()

    engine = repro.connect(views=VIEWS, storage="state.d")   # restart: replays
    engine.recovery_report                                   # what happened

The backend for plain (non-durable) engines is selected by ``backend=`` on
:func:`repro.connect` or the ``REPRO_DEFAULT_BACKEND`` environment variable
(``memory`` — the default columnar store — or ``sqlite``).  See
``docs/persistence.md`` for the WAL format, fsync policies and recovery
semantics.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import StorageError
from repro.storage.backed import BackedDatabase
from repro.storage.backend import (
    BackendCapabilities,
    MemoryBackend,
    Row,
    StorageBackend,
)
from repro.storage.manager import RecoveryResult, StorageManager
from repro.storage.snapshot import (
    Snapshot,
    latest_snapshot,
    list_snapshots,
    read_snapshot,
    write_snapshot,
)
from repro.storage.wal import (
    FSYNC_POLICIES,
    WalRecord,
    WalReplayReport,
    WriteAheadLog,
    read_wal,
)

#: Registered backend names, in documentation order.
BACKENDS = ("memory", "sqlite")

#: Environment variable selecting the default backend for plain engines.
DEFAULT_BACKEND_ENV = "REPRO_DEFAULT_BACKEND"


def default_backend_name() -> str:
    """The backend ``repro.connect`` uses when none is requested explicitly.

    Reads :data:`DEFAULT_BACKEND_ENV`; unset or empty means ``"memory"``.
    An unknown name raises :class:`~repro.errors.StorageError` (loudly, at
    connect time — not deep inside a query).
    """
    name = os.environ.get(DEFAULT_BACKEND_ENV, "").strip().lower()
    if not name:
        return "memory"
    if name not in BACKENDS:
        raise StorageError(
            f"{DEFAULT_BACKEND_ENV}={name!r} is not a registered backend; "
            f"choose from {', '.join(BACKENDS)}"
        )
    return name


def make_backend(name: str, path: Optional[str] = None) -> StorageBackend:
    """Instantiate a registered backend by name."""
    if name == "memory":
        return MemoryBackend()
    if name == "sqlite":
        from repro.storage.sqlite import SQLiteBackend

        return SQLiteBackend(path)
    raise StorageError(
        f"unknown storage backend {name!r}; choose from {', '.join(BACKENDS)}"
    )


__all__ = [
    "BACKENDS",
    "BackedDatabase",
    "BackendCapabilities",
    "DEFAULT_BACKEND_ENV",
    "FSYNC_POLICIES",
    "MemoryBackend",
    "RecoveryResult",
    "Row",
    "Snapshot",
    "StorageBackend",
    "StorageManager",
    "WalRecord",
    "WalReplayReport",
    "WriteAheadLog",
    "default_backend_name",
    "latest_snapshot",
    "list_snapshots",
    "make_backend",
    "read_snapshot",
    "read_wal",
    "write_snapshot",
]
