"""The :class:`StorageBackend` protocol and the in-memory reference backend.

A storage backend is a plain *row store*: named relations of fixed arity,
set-semantics insert/delete, full scans and (optionally pushed-down)
constant-filtered scans, plus a tiny key/value metadata table the recovery
machinery uses to record how far the write-ahead log has been applied.  Join
execution never happens here — :mod:`repro.exec` owns that; a backend's job
is to hold rows durably and to serve scans.

:class:`MemoryBackend` is the reference implementation (dict-of-sets, no
durability); :class:`repro.storage.sqlite.SQLiteBackend` is the persistent
adapter.  :class:`repro.storage.backed.BackedDatabase` sits on top of either
and keeps the columnar :class:`~repro.engine.relation.Relation` world in sync
with the backend write-through.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import StorageError

Row = Tuple[Any, ...]


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can promise; read by the engine and surfaced in stats.

    Attributes
    ----------
    name:
        The registry name (``"memory"`` / ``"sqlite"``).
    persistent:
        Whether rows survive process restart (the backend has a file).
    durable:
        Whether committed writes survive ``kill -9`` (the backend syncs).
    filter_pushdown:
        Whether constant-filtered scans are evaluated *inside* the backend
        (e.g. a SQL ``WHERE``) rather than filtered in Python by the caller.
    """

    name: str
    persistent: bool
    durable: bool
    filter_pushdown: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "persistent": self.persistent,
            "durable": self.durable,
            "filter_pushdown": self.filter_pushdown,
        }


class StorageBackend(ABC):
    """Abstract row store behind a :class:`~repro.storage.backed.BackedDatabase`.

    Implementations must be usable immediately after construction (no
    separate ``open()`` step) and must tolerate :meth:`close` being called
    more than once.  Scans of unknown relations yield nothing; mutations of
    unknown relations raise :class:`~repro.errors.StorageError`.
    """

    # -- lifecycle ---------------------------------------------------------------
    @abstractmethod
    def close(self) -> None:
        """Release resources; further mutations raise :class:`StorageError`."""

    @property
    @abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """The backend's capability flags (see :class:`BackendCapabilities`)."""

    # -- catalog -----------------------------------------------------------------
    @abstractmethod
    def relation_names(self) -> Tuple[str, ...]:
        """The names of every stored relation."""

    @abstractmethod
    def arity(self, name: str) -> int:
        """The arity of one relation; raises for unknown names."""

    @abstractmethod
    def create_relation(self, name: str, arity: int) -> None:
        """Create a relation (idempotent; an arity conflict raises)."""

    @abstractmethod
    def drop_relation(self, name: str) -> None:
        """Drop a relation and its rows (missing names are a no-op)."""

    # -- rows --------------------------------------------------------------------
    @abstractmethod
    def scan(
        self, name: str, bindings: Optional[Mapping[int, Any]] = None
    ) -> Iterator[Row]:
        """Yield the rows of a relation, optionally equality-filtered.

        ``bindings`` maps column positions to required values; a backend
        with ``filter_pushdown`` evaluates them internally, others may
        filter in Python.  Unknown relations yield nothing.
        """

    @abstractmethod
    def insert(self, name: str, arity: int, rows: Iterable[Sequence[Any]]) -> int:
        """Insert rows (set semantics); returns how many were actually new."""

    @abstractmethod
    def delete(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Delete rows; returns how many were actually present."""

    @abstractmethod
    def count(self, name: str) -> int:
        """The number of rows in one relation (0 for unknown names)."""

    # -- metadata ----------------------------------------------------------------
    @abstractmethod
    def get_meta(self, key: str) -> Optional[str]:
        """Read one metadata value (None when unset)."""

    @abstractmethod
    def set_meta(self, key: str, value: str) -> None:
        """Write one metadata value (overwrites)."""

    # -- grouping ----------------------------------------------------------------
    @contextmanager
    def transaction(self) -> Iterator[None]:
        """Group mutations atomically where the backend supports it.

        The default implementation is a no-op grouping (memory semantics);
        transactional backends override it.  Nested use must be safe.
        """
        yield

    # -- introspection -----------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Sizing information for observability snapshots."""
        return {
            "backend": self.capabilities.name,
            "relations": {name: self.count(name) for name in self.relation_names()},
        }


class MemoryBackend(StorageBackend):
    """The reference backend: plain dict-of-sets, process-lifetime only.

    Exists so the protocol has a trivially correct implementation to test
    adapters against, and so a :class:`BackedDatabase` can be exercised
    without SQLite.  The default engine path does not use it — a plain
    :class:`~repro.engine.database.Database` *is* the memory backend, with
    the columnar store as its physical layout.
    """

    CAPABILITIES = BackendCapabilities(
        name="memory", persistent=False, durable=False, filter_pushdown=False
    )

    def __init__(self) -> None:
        self._relations: Dict[str, Tuple[int, Set[Row]]] = {}
        self._meta: Dict[str, str] = {}
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("this memory backend is closed")

    @property
    def capabilities(self) -> BackendCapabilities:
        return self.CAPABILITIES

    # -- catalog -----------------------------------------------------------------
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def arity(self, name: str) -> int:
        entry = self._relations.get(name)
        if entry is None:
            raise StorageError(f"unknown relation {name!r}")
        return entry[0]

    def create_relation(self, name: str, arity: int) -> None:
        self._check_open()
        entry = self._relations.get(name)
        if entry is None:
            self._relations[name] = (arity, set())
        elif entry[0] != arity:
            raise StorageError(
                f"relation {name!r} exists with arity {entry[0]}, requested {arity}"
            )

    def drop_relation(self, name: str) -> None:
        self._check_open()
        self._relations.pop(name, None)

    # -- rows --------------------------------------------------------------------
    def scan(
        self, name: str, bindings: Optional[Mapping[int, Any]] = None
    ) -> Iterator[Row]:
        entry = self._relations.get(name)
        if entry is None:
            return iter(())
        rows: Iterable[Row] = entry[1]
        if bindings:
            wanted = tuple(bindings.items())
            rows = (
                row for row in rows if all(row[pos] == value for pos, value in wanted)
            )
        return iter(tuple(rows))

    def insert(self, name: str, arity: int, rows: Iterable[Sequence[Any]]) -> int:
        self._check_open()
        self.create_relation(name, arity)
        stored = self._relations[name][1]
        added = 0
        for row in rows:
            values = tuple(row)
            if len(values) != arity:
                raise StorageError(
                    f"row of arity {len(values)} for relation {name!r}/{arity}"
                )
            if values not in stored:
                stored.add(values)
                added += 1
        return added

    def delete(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        self._check_open()
        entry = self._relations.get(name)
        if entry is None:
            raise StorageError(f"unknown relation {name!r}")
        stored = entry[1]
        removed = 0
        for row in rows:
            values = tuple(row)
            if values in stored:
                stored.discard(values)
                removed += 1
        return removed

    def count(self, name: str) -> int:
        entry = self._relations.get(name)
        return len(entry[1]) if entry is not None else 0

    # -- metadata ----------------------------------------------------------------
    def get_meta(self, key: str) -> Optional[str]:
        return self._meta.get(key)

    def set_meta(self, key: str, value: str) -> None:
        self._check_open()
        self._meta[key] = str(value)
