"""A :class:`Database` whose rows live in (and write through to) a backend.

:class:`BackedDatabase` keeps the engine's world unchanged — every consumer
sees a normal :class:`~repro.engine.database.Database` of columnar
:class:`~repro.engine.relation.Relation` objects — while delegating physical
storage to a :class:`~repro.storage.backend.StorageBackend`:

* **Write-through.**  Every mutation that goes through the database
  (``add_fact`` / ``remove_fact`` / ``apply_delta`` / relation DDL) is
  mirrored to the backend; ``apply_delta`` batches inside one backend
  transaction.  Mutating a :class:`Relation` object directly bypasses the
  backend exactly as it bypasses the version counter — the long-standing
  caveat on :meth:`Database.ensure_relation` extends to durability.
* **Lazy hydration.**  Relations start *cold*: the catalog (names and
  arities) is loaded at construction, rows are pulled from the backend on
  the first in-memory read of each relation.  Hydration happens before any
  content is observable, so it never moves the version counter and never
  invalidates a cache.
* **Scan pushdown.**  :meth:`storage_scan` serves full and
  constant-filtered scans of *cold* relations straight from the backend —
  the executors' single-atom fast path uses it to answer point queries on a
  million-row relation without hydrating it.  Hot relations are always
  served from the columnar store (it is strictly faster).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import StorageError
from repro.datalog.atoms import Atom
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.storage.backend import Row, StorageBackend


class BackedDatabase(Database):
    """A database write-through mirrored onto a storage backend."""

    def __init__(self, backend: StorageBackend):
        super().__init__()
        self._backend = backend
        #: Relation names whose rows have not been loaded from the backend.
        self._cold: Set[str] = set()
        #: How many relations have been hydrated (for stats).
        self.hydrations = 0
        for name in backend.relation_names():
            self._relations[name] = Relation(name, backend.arity(name))
            self._cold.add(name)

    @property
    def backend(self) -> StorageBackend:
        return self._backend

    @classmethod
    def from_database(
        cls, database: Database, backend: StorageBackend
    ) -> "BackedDatabase":
        """Load a plain database's rows into ``backend`` and wrap them.

        The source database is copied, not adopted: later mutations of the
        original object are not seen by the backed database (or the backend).
        """
        backed = cls(backend)
        with backend.transaction():
            for relation in database:
                backed.add_relation(relation)
        return backed

    # -- hydration ---------------------------------------------------------------
    def _hydrate(self, name: str) -> None:
        if name not in self._cold:
            return
        self._cold.discard(name)
        relation = self._relations[name]
        for row in self._backend.scan(name):
            relation.add(row)
        self.hydrations += 1

    def _hydrate_all(self) -> None:
        for name in tuple(self._cold):
            self._hydrate(name)

    def is_hydrated(self, name: str) -> bool:
        """Whether a relation's rows are resident in the columnar store."""
        return name in self._relations and name not in self._cold

    # -- pushdown ----------------------------------------------------------------
    def storage_scan(
        self, name: str, bindings: Optional[Mapping[int, Any]] = None
    ) -> Optional[Iterable[Row]]:
        """Rows straight from the backend, or None when memory should serve.

        Only cold relations of a filter-pushdown-capable backend are served
        here; for hot relations (and backends without pushdown) the caller
        should use the hydrated columnar relation — its hash indexes beat a
        backend round trip.
        """
        if name in self._cold and self._backend.capabilities.filter_pushdown:
            return self._backend.scan(name, bindings)
        return None

    # -- mutation (write-through) ------------------------------------------------
    def add_fact(self, relation_name: str, row: Sequence[Any]) -> bool:
        values = tuple(row)
        if relation_name in self._relations:
            self._hydrate(relation_name)
        else:
            self._backend.create_relation(relation_name, len(values))
        added = super().add_fact(relation_name, values)
        if added:
            self._backend.insert(relation_name, len(values), [values])
        return added

    def remove_fact(self, relation_name: str, row: Sequence[Any]) -> bool:
        if relation_name not in self._relations:
            return False
        self._hydrate(relation_name)
        removed = super().remove_fact(relation_name, row)
        if removed:
            self._backend.delete(relation_name, [tuple(row)])
        return removed

    def apply_delta(self, delta: Any) -> Any:
        for name in delta.predicates():
            if name in self._relations:
                self._hydrate(name)
        with self._backend.transaction():
            return super().apply_delta(delta)

    def add_relation(self, relation: Relation) -> None:
        with self._backend.transaction():
            if relation.name in self._backend.relation_names():
                self._backend.drop_relation(relation.name)
            self._backend.create_relation(relation.name, relation.arity)
            self._backend.insert(relation.name, relation.arity, relation.tuples())
        self._cold.discard(relation.name)
        super().add_relation(relation)

    def ensure_relation(self, name: str, arity: int) -> Relation:
        if name in self._relations:
            self._hydrate(name)
        else:
            self._backend.create_relation(name, arity)
        return super().ensure_relation(name, arity)

    def remove_relation(self, name: str) -> None:
        self._backend.drop_relation(name)
        self._cold.discard(name)
        super().remove_relation(name)

    # -- reads (hydrate first) ---------------------------------------------------
    def relation(self, name: str) -> Optional[Relation]:
        if name in self._relations:
            self._hydrate(name)
        return super().relation(name)

    def tuples(self, name: str) -> frozenset:
        if name in self._relations:
            self._hydrate(name)
        return super().tuples(name)

    def relations(self) -> Tuple[Relation, ...]:
        self._hydrate_all()
        return super().relations()

    def __iter__(self) -> Iterator[Relation]:
        self._hydrate_all()
        return super().__iter__()

    def __eq__(self, other: object) -> bool:
        self._hydrate_all()
        return super().__eq__(other)

    __hash__ = None  # type: ignore[assignment] - same as the base class

    def size(self) -> int:
        # Cold relations are counted in the backend (SQL COUNT) rather than
        # hydrated — stats on a million-row extent stay cheap.
        return sum(
            self._backend.count(name) if name in self._cold else len(relation)
            for name, relation in self._relations.items()
        )

    def copy(self) -> Database:
        """A detached plain-memory copy (not write-through)."""
        self._hydrate_all()
        return Database(self._relations.values())

    def merge(self, other: Database) -> Database:
        self._hydrate_all()
        return super().merge(other)

    def facts(self) -> List[Atom]:
        self._hydrate_all()
        return super().facts()

    def active_domain(self) -> Set[Any]:
        self._hydrate_all()
        return super().active_domain()

    def restrict(self, names: Iterable[str]) -> Database:
        self._hydrate_all()
        return super().restrict(names)

    def rename_relation(self, old: str, new: str) -> Database:
        self._hydrate_all()
        return super().rename_relation(old, new)

    # -- serialization -----------------------------------------------------------
    def __reduce__(self):
        # Backends hold unpicklable resources (sqlite connections); crossing
        # a process boundary degrades gracefully to a plain-memory snapshot
        # (exactly what the multiprocessing batch fan-out needs).
        self._hydrate_all()
        return (_rebuild_plain, (tuple(self._relations.values()),))

    # -- introspection -----------------------------------------------------------
    def storage_stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name, relation in self._relations.items():
            if name in self._cold:
                out[name] = {
                    "rows": self._backend.count(name),
                    "hydrated": False,
                }
            else:
                stats = relation.storage_stats()
                stats["hydrated"] = True
                out[name] = stats
        return out

    def __repr__(self) -> str:
        cold = len(self._cold)
        return (
            f"BackedDatabase({self._backend.capabilities.name}, "
            f"relations={len(self._relations)}, cold={cold})"
        )


def _rebuild_plain(relations: Tuple[Relation, ...]) -> Database:
    return Database(relations)
