"""The write-ahead delta log: durable, CRC-framed, repairable by truncation.

Every ``apply_delta`` batch is journaled *before* it touches the engine, as
one framed record:

* file magic ``b"RWAL1\\n"`` (written once, checked on open);
* per record a fixed header ``<QQII`` — sequence number (u64, strictly
  monotonic from 1), the database version the delta was applied *on top of*
  (u64), payload length (u32) and the CRC-32 of the payload (u32);
* the payload: the delta's :meth:`~repro.materialize.delta.Delta.to_text`
  form, UTF-8 encoded.  Reusing the human-readable delta text means a WAL
  can be inspected with ``strings`` and a record can be replayed by the
  normal :func:`~repro.materialize.delta.parse_delta` path.

Durability is governed by the *fsync policy*: ``"always"`` syncs after every
append (safe against power loss), ``"batch"`` syncs on :meth:`flush` and
:meth:`close` (safe against process crash, one fsync per batch), ``"none"``
never syncs (safe against ``kill -9`` via the OS page cache, fastest —
the E17 benchmark's setting).

Recovery reads the log front to back and **repairs by truncation**: a torn
tail (partial header or payload), a CRC mismatch, or a non-monotonic
sequence number marks the end of the trustworthy prefix — everything from
the first bad byte on is discarded and, with ``repair=True``, physically
truncated so the next append continues a clean log.  Only a bad *magic*
raises :class:`~repro.errors.WalCorruptionError` outright: that file is not
ours to repair.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import StorageError, WalCorruptionError

MAGIC = b"RWAL1\n"
_HEADER = struct.Struct("<QQII")  # seq, db_version, payload_len, crc32

#: Refuse records claiming more than this many payload bytes — a corrupt
#: length field must not make replay allocate gigabytes.
MAX_PAYLOAD = 1 << 30

FSYNC_POLICIES = ("always", "batch", "none")


@dataclass(frozen=True)
class WalRecord:
    """One journaled delta batch."""

    seq: int
    db_version: int
    payload: str

    def __repr__(self) -> str:
        return f"WalRecord(seq={self.seq}, version={self.db_version}, {len(self.payload)}B)"


@dataclass
class WalReplayReport:
    """What a front-to-back read of the log found (and possibly repaired)."""

    records: int = 0
    last_seq: int = 0
    bytes_read: int = 0
    #: Why the scan stopped early, or None for a clean end-of-file.
    corruption: Optional[str] = None
    #: File offset of the first untrustworthy byte (== file size when clean).
    truncated_at: Optional[int] = None
    #: Whether the file was physically truncated to drop the bad tail.
    repaired: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "records": self.records,
            "last_seq": self.last_seq,
            "bytes_read": self.bytes_read,
            "corruption": self.corruption,
            "truncated_at": self.truncated_at,
            "repaired": self.repaired,
        }


class WriteAheadLog:
    """An append-only delta journal at ``path``.

    Parameters
    ----------
    path:
        The log file; created (with magic) when absent.
    fsync:
        One of :data:`FSYNC_POLICIES` — see the module docs.
    on_append / on_fsync:
        Optional observability callbacks, called with the elapsed seconds of
        each append (payload bytes as a second argument) and each fsync.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "batch",
        on_append: Optional[Callable[[float, int], None]] = None,
        on_fsync: Optional[Callable[[float], None]] = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise StorageError(
                f"unknown fsync policy {fsync!r}; choose from {FSYNC_POLICIES}"
            )
        self._path = str(path)
        self._fsync = fsync
        self._on_append = on_append
        self._on_fsync = on_fsync
        self._appended = 0
        self._synced = 0
        self._dirty = False
        self._closed = False

        existed = os.path.exists(self._path)
        self._file = open(self._path, "ab")
        if not existed or os.path.getsize(self._path) == 0:
            self._file.write(MAGIC)
            self._file.flush()
            self._do_fsync()
        self._last_seq = self._scan_last_seq()

    # -- properties --------------------------------------------------------------
    @property
    def path(self) -> str:
        return self._path

    @property
    def last_seq(self) -> int:
        """The sequence number of the newest appended record (0 when empty)."""
        return self._last_seq

    @property
    def fsync_policy(self) -> str:
        return self._fsync

    # -- writing -----------------------------------------------------------------
    def append(self, payload: str, db_version: int) -> int:
        """Journal one delta text; returns its sequence number."""
        import time

        if self._closed:
            raise StorageError("this write-ahead log is closed")
        data = payload.encode("utf-8")
        if len(data) > MAX_PAYLOAD:
            raise StorageError(
                f"delta payload of {len(data)} bytes exceeds the WAL record limit"
            )
        seq = self._last_seq + 1
        header = _HEADER.pack(seq, db_version, len(data), zlib.crc32(data))
        started = time.perf_counter()
        self._file.write(header)
        self._file.write(data)
        self._file.flush()
        if self._fsync == "always":
            self._do_fsync()
        else:
            self._dirty = True
        if self._on_append is not None:
            self._on_append(time.perf_counter() - started, len(data))
        self._last_seq = seq
        self._appended += 1
        return seq

    def flush(self) -> None:
        """Force appended records to disk (a no-op under ``fsync="none"``)."""
        if self._closed:
            return
        self._file.flush()
        if self._fsync != "none" and self._dirty:
            self._do_fsync()
            self._dirty = False

    def _do_fsync(self) -> None:
        import time

        started = time.perf_counter()
        os.fsync(self._file.fileno())
        self._synced += 1
        if self._on_fsync is not None:
            self._on_fsync(time.perf_counter() - started)

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._closed = True
        self._file.close()

    # -- reading -----------------------------------------------------------------
    def _scan_last_seq(self) -> int:
        records, report = read_wal(self._path, repair=False)
        if report.corruption is not None:
            # Repair before continuing to append: writing past a torn tail
            # would bury the corruption inside the log.
            records, report = read_wal(self._path, repair=True)
            self._file.close()
            self._file = open(self._path, "ab")
        self._open_report = report
        return report.last_seq

    def replay(
        self, after_seq: int = 0, repair: bool = True
    ) -> Tuple[List[WalRecord], WalReplayReport]:
        """All trustworthy records with ``seq > after_seq``, plus the report.

        A corrupt tail that was already repaired when the log was *opened*
        is still reported (the file reads clean now, but recovery needs to
        know history was truncated).
        """
        self._file.flush()
        records, report = read_wal(self._path, repair=repair)
        if repair and report.repaired:
            # Reopen so our append offset agrees with the truncated size.
            self._file.close()
            self._file = open(self._path, "ab")
        opened = getattr(self, "_open_report", None)
        if report.corruption is None and opened is not None and opened.repaired:
            report.corruption = opened.corruption
            report.truncated_at = opened.truncated_at
            report.repaired = True
        return [r for r in records if r.seq > after_seq], report

    # -- introspection -----------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "path": self._path,
            "fsync": self._fsync,
            "last_seq": self._last_seq,
            "appended": self._appended,
            "fsyncs": self._synced,
            "bytes": os.path.getsize(self._path) if os.path.exists(self._path) else 0,
        }


def read_wal(path: str, repair: bool = False) -> Tuple[List[WalRecord], WalReplayReport]:
    """Read a WAL file front to back; optionally truncate a corrupt tail.

    Returns every record up to the first corruption and a
    :class:`WalReplayReport`.  A missing file reads as an empty log; a file
    whose *magic* is wrong raises :class:`WalCorruptionError` (it is not a
    WAL — truncating it would destroy someone else's data).
    """
    report = WalReplayReport()
    records: List[WalRecord] = []
    if not os.path.exists(path):
        return records, report
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if len(magic) == 0:
            return records, report
        if magic != MAGIC:
            raise WalCorruptionError(
                f"{path} does not start with the WAL magic (found {magic!r})"
            )
        offset = len(MAGIC)
        last_seq = 0
        while True:
            header = handle.read(_HEADER.size)
            if not header:
                break  # clean end of file
            if len(header) < _HEADER.size:
                report.corruption = "torn record header"
                report.truncated_at = offset
                break
            seq, db_version, payload_len, crc = _HEADER.unpack(header)
            if payload_len > MAX_PAYLOAD:
                report.corruption = f"implausible payload length {payload_len}"
                report.truncated_at = offset
                break
            payload = handle.read(payload_len)
            if len(payload) < payload_len:
                report.corruption = "torn record payload"
                report.truncated_at = offset
                break
            if zlib.crc32(payload) != crc:
                report.corruption = f"CRC mismatch at seq {seq}"
                report.truncated_at = offset
                break
            if seq != last_seq + 1:
                report.corruption = (
                    f"non-monotonic sequence {seq} after {last_seq}"
                )
                report.truncated_at = offset
                break
            try:
                text = payload.decode("utf-8")
            except UnicodeDecodeError:
                report.corruption = f"undecodable payload at seq {seq}"
                report.truncated_at = offset
                break
            records.append(WalRecord(seq=seq, db_version=db_version, payload=text))
            last_seq = seq
            offset += _HEADER.size + payload_len
        report.records = len(records)
        report.last_seq = last_seq
        report.bytes_read = offset
    if report.corruption is not None and repair:
        with open(path, "r+b") as handle:
            handle.truncate(report.truncated_at)
            handle.flush()
            os.fsync(handle.fileno())
        report.repaired = True
    return records, report
