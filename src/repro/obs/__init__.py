"""repro.obs — dependency-free metrics and request tracing for the serving stack.

The observability core under the network serving layer (:mod:`repro.server`)
and the engine facade (:mod:`repro.api`):

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — the three
  Prometheus primitives, thread-safe, with p50/p90/p99 estimation on the
  fixed-bucket histogram;
* :class:`MetricsRegistry` — named metric families with label support,
  Prometheus text exposition (:meth:`~MetricsRegistry.render`) and a
  JSON-friendly snapshot (:meth:`~MetricsRegistry.collect`);
* :class:`Span` / :class:`Trace` / :class:`Tracer` — per-request span trees
  with monotonic timings, serializable to JSON
  (``docs/trace.schema.json``);
* :class:`Instrumentation` — one registry + tracer bundle with the engine's
  core series pre-declared; the session and engine record through it.

Quickstart::

    import repro

    engine = repro.connect(views=VIEWS, data=FACTS)   # observability on by default
    engine.query("q(X) :- r(X, Y).").answers()
    print(engine.metrics())                            # Prometheus text
    engine.trace().to_json()                           # last request's span tree

See ``docs/observability.md`` for the metric catalog and trace semantics.
"""

from repro.obs.instrument import Instrumentation
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.trace import Span, Trace, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "Trace",
    "Tracer",
]
