"""The :class:`Instrumentation` bundle: one registry + tracer, pre-declared series.

The engine, session and server all record into the same small catalog of
metric families (documented in ``docs/observability.md``):

=============================  =========  ===========================  ==========================================
name                           type       labels                       meaning
=============================  =========  ===========================  ==========================================
``repro_requests_total``       counter    ``verb``, ``outcome``        engine verbs served (ok / error)
``repro_stage_seconds``        histogram  ``stage``                    per-stage latency (parse, rewrite_cold,
                                                                       rewrite_hit, execute, delta_apply)
``repro_cache_events_total``   counter    ``cache``, ``outcome``       rewrite/answer/plan cache hits & misses,
                                                                       containment-memo outcomes
``repro_deltas_total``         counter    —                            deltas applied through the engine
=============================  =========  ===========================  ==========================================

The server adds its own ``repro_http_*`` / ``repro_server_*`` series on the
same registry (see :mod:`repro.server`), so one ``GET /metrics`` scrape shows
the whole picture.

Instrumentation is opt-in per layer: a session constructed without it keeps
exactly its old zero-overhead behaviour (``self._obs`` is None and every hook
is a single ``is None`` test), while engines create a live bundle by default
(``repro.connect(..., observability=False)`` opts out).  The
:meth:`Instrumentation.stage` timer doubles as the trace hook — it records
the elapsed time into ``repro_stage_seconds`` *and* opens a span on the
active trace, so metrics and traces can never disagree about what a stage
cost.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["Instrumentation"]


class Instrumentation:
    """A metrics registry and tracer wired together, with the core series declared."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.requests = self.registry.counter(
            "repro_requests_total",
            "Engine verbs served, by verb and outcome (ok/error).",
            labels=("verb", "outcome"),
        )
        self.stage_seconds = self.registry.histogram(
            "repro_stage_seconds",
            "Latency of one pipeline stage (parse, rewrite_cold, rewrite_hit, "
            "execute, delta_apply), in seconds.",
            labels=("stage",),
        )
        self.cache_events = self.registry.counter(
            "repro_cache_events_total",
            "Cache lookups by cache (rewrite/answer/plan/containment_memo) "
            "and outcome.",
            labels=("cache", "outcome"),
        )
        self.deltas = self.registry.counter(
            "repro_deltas_total", "Data deltas applied through the engine."
        )

    @contextmanager
    def stage(self, stage: str, **annotations: Any) -> Iterator[None]:
        """Time a pipeline stage: histogram sample + span on the active trace."""
        started = time.perf_counter()
        with self.tracer.span(stage, **annotations):
            yield
        self.stage_seconds.labels(stage).observe(time.perf_counter() - started)

    def observe_stage(self, stage: str, seconds: float) -> None:
        """Record an already-measured stage duration (no span)."""
        self.stage_seconds.labels(stage).observe(seconds)

    def cache_event(self, cache: str, outcome: str, count: int = 1) -> None:
        """Record ``count`` lookups against one cache with one outcome."""
        if count:
            self.cache_events.labels(cache, outcome).inc(count)

    def count_request(self, verb: str, outcome: str = "ok") -> None:
        self.requests.labels(verb, outcome).inc()

    # -- verb wrapper --------------------------------------------------------------
    @contextmanager
    def request(
        self, verb: str, trace_id: Optional[str] = None, **annotations: Any
    ) -> Iterator[None]:
        """Trace one engine verb and count its outcome (errors re-raise)."""
        with self.tracer.trace(verb, trace_id=trace_id, **annotations):
            try:
                yield
            except BaseException:
                self.count_request(verb, "error")
                raise
            self.count_request(verb, "ok")

    def snapshot(self) -> Dict[str, Any]:
        """The registry snapshot (``stats()`` embeds this)."""
        return self.registry.collect()
