"""A dependency-free metrics core: counters, gauges, latency histograms.

The serving layer needs the three Prometheus primitives and nothing else, so
this module implements them directly instead of depending on an external
client library (the container bakes in only the test toolchain):

* :class:`Counter` — a monotonically increasing float;
* :class:`Gauge` — a float that can move both ways;
* :class:`Histogram` — fixed cumulative buckets plus sum/count, with
  p50/p90/p99 estimation by linear interpolation inside the bucket that
  crosses the requested rank (the standard ``histogram_quantile`` estimate).

Metrics are declared on a :class:`MetricsRegistry` as *families*: a family
has a name, a help string and a tuple of label names, and hands out one child
per label-value combination via :meth:`MetricFamily.labels`.  A family
declared without labels proxies the mutating calls straight to its single
child, so ``registry.counter("x_total").inc()`` works without ceremony.

Everything is thread-safe: children guard their state with a lock (the
serving layer hammers them from a worker pool), and the registry guards the
family table.  :meth:`MetricsRegistry.render` emits the Prometheus text
exposition format (``text/plain; version=0.0.4``) and
:meth:`MetricsRegistry.collect` a JSON-friendly snapshot for ``stats()``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default latency buckets (seconds): 100 µs .. 10 s, roughly log-spaced.
#: Chosen to straddle the engine's observed range — cache hits are tens of
#: microseconds, cold maximally-contained rewritings tens of milliseconds,
#: and a loaded server should never sit above a few seconds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_INF = float("inf")


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (ints without '.0')."""
    if value == _INF:
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value (thread-safe)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount!r}) is invalid")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self._value!r})"


class Gauge:
    """A value that can go up and down (thread-safe)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self._value!r})"


class Histogram:
    """Fixed-bucket latency histogram with quantile estimation (thread-safe).

    ``buckets`` are the finite upper bounds, strictly increasing; an implicit
    ``+Inf`` bucket catches the tail.  Counts are stored per bucket
    (non-cumulative internally; the exposition renders the cumulative view).

    Quantiles are estimated the way Prometheus' ``histogram_quantile`` does:
    find the bucket where the cumulative count crosses the rank, then
    interpolate linearly between the bucket's bounds.  Ranks landing in the
    ``+Inf`` bucket report the highest finite bound (the estimate is a floor,
    not an invention of data beyond the instrumented range).
    """

    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one finite bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        if bounds[-1] == _INF:
            bounds = bounds[:-1]
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def cumulative_counts(self) -> List[int]:
        """Cumulative per-bucket counts, ``+Inf`` last (equals ``count``)."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        cumulative = []
        for bucket_count in counts:
            total += bucket_count
            cumulative.append(total)
        return cumulative

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1); NaN when empty."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q!r}")
        cumulative = self.cumulative_counts()
        total = cumulative[-1]
        if total == 0:
            return float("nan")
        rank = q * total
        for index, running in enumerate(cumulative):
            if running >= rank:
                break
        if index >= len(self._bounds):
            # Tail bucket: report the highest finite bound.
            return self._bounds[-1]
        upper = self._bounds[index]
        lower = self._bounds[index - 1] if index > 0 else 0.0
        below = cumulative[index - 1] if index > 0 else 0
        in_bucket = cumulative[index] - below
        if in_bucket == 0:  # pragma: no cover - crossing bucket is non-empty
            return upper
        return lower + (upper - lower) * (rank - below) / in_bucket

    @property
    def p50(self) -> float:
        return self.quantile(0.5)

    @property
    def p90(self) -> float:
        return self.quantile(0.9)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly view: count, sum, estimated quantiles."""
        count = self._count
        return {
            "count": count,
            "sum": self._sum,
            "p50": self.p50 if count else None,
            "p90": self.p90 if count else None,
            "p99": self.p99 if count else None,
        }

    def __repr__(self) -> str:
        return f"Histogram(count={self._count}, sum={self._sum:.6f})"


#: Constructors per metric type, used by the family.
_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with a fixed label-name tuple and one child per value.

    Families are created through the registry (:meth:`MetricsRegistry.counter`
    and friends).  ``labels(...)`` returns the child for a label-value
    combination, creating it on first use.  A family with *no* label names
    has exactly one child and proxies ``inc``/``set``/``dec``/``observe`` to
    it directly.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        label_names: Tuple[str, ...] = (),
        **child_kwargs: Any,
    ):
        if metric_type not in _CHILD_TYPES:
            raise ValueError(f"unknown metric type {metric_type!r}")
        self.name = name
        self.help = help_text
        self.type = metric_type
        self.label_names = label_names
        self._child_kwargs = child_kwargs
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._lock = threading.Lock()
        if not label_names:
            self._children[()] = _CHILD_TYPES[metric_type](**child_kwargs)

    def labels(self, *values: Any, **named: Any) -> Any:
        """The child for one label-value combination (created on first use)."""
        if named:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(named[name] for name in self.label_names)
            except KeyError as error:
                raise ValueError(
                    f"{self.name}: missing label {error.args[0]!r} "
                    f"(expected {self.label_names})"
                ) from None
            if len(named) != len(self.label_names):
                extra = set(named) - set(self.label_names)
                raise ValueError(f"{self.name}: unexpected labels {sorted(extra)}")
        key = tuple(str(value) for value in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label value(s) "
                f"{self.label_names}, got {len(key)}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = _CHILD_TYPES[self.type](**self._child_kwargs)
                    self._children[key] = child
        return child

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """(label values, child) pairs in insertion order."""
        with self._lock:
            return list(self._children.items())

    # -- no-label conveniences ----------------------------------------------------
    def _solo(self) -> Any:
        if self.label_names:
            raise ValueError(
                f"{self.name} has labels {self.label_names}; use .labels(...)"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def quantile(self, q: float) -> float:
        return self._solo().quantile(q)

    def snapshot(self) -> Dict[str, Any]:
        return self._solo().snapshot()

    @property
    def value(self) -> float:
        return self._solo().value

    def __repr__(self) -> str:
        return (
            f"MetricFamily({self.name!r}, type={self.type!r}, "
            f"labels={self.label_names!r}, children={len(self._children)})"
        )


class MetricsRegistry:
    """A named collection of metric families with Prometheus text exposition.

    Declarations are idempotent: asking twice for the same name returns the
    same family, provided the type and label names agree (a mismatch is a
    programming error and raises).  That lets independent layers (session,
    engine, server) share one registry without coordinating declaration
    order.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _declare(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        label_names: Tuple[str, ...],
        **child_kwargs: Any,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.type != metric_type or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already declared as {family.type} "
                        f"with labels {family.label_names}; cannot redeclare as "
                        f"{metric_type} with labels {label_names}"
                    )
                return family
            family = MetricFamily(
                name, help_text, metric_type, label_names, **child_kwargs
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, help_text, "counter", tuple(labels))

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, help_text, "gauge", tuple(labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._declare(
            name, help_text, "histogram", tuple(labels), buckets=tuple(buckets)
        )

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # -- exposition ---------------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition (``text/plain; version=0.0.4``)."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.type}")
            for label_values, child in family.children():
                if family.type == "histogram":
                    cumulative = child.cumulative_counts()
                    for bound, running in zip(
                        child.bounds + (_INF,), cumulative
                    ):
                        bucket_labels = _render_labels(
                            family.label_names + ("le",),
                            label_values + (_format_value(bound),),
                        )
                        lines.append(
                            f"{family.name}_bucket{bucket_labels} {running}"
                        )
                    suffix = _render_labels(family.label_names, label_values)
                    lines.append(
                        f"{family.name}_sum{suffix} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{suffix} {child.count}")
                else:
                    suffix = _render_labels(family.label_names, label_values)
                    lines.append(
                        f"{family.name}{suffix} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def collect(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot of every family (for ``stats()``)."""
        snapshot: Dict[str, Any] = {}
        for family in self.families():
            series: List[Dict[str, Any]] = []
            for label_values, child in family.children():
                labels = dict(zip(family.label_names, label_values))
                if family.type == "histogram":
                    entry: Dict[str, Any] = {"labels": labels, **child.snapshot()}
                else:
                    entry = {"labels": labels, "value": child.value}
                series.append(entry)
            snapshot[family.name] = {"type": family.type, "series": series}
        return snapshot
