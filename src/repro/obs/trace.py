"""Lightweight request tracing: span trees with monotonic timings.

A :class:`Trace` is one request's tree of :class:`Span`\\ s.  The engine opens
a trace per verb (``answers`` / ``rewrite`` / ``explain`` / ``apply``), the
instrumented layers below open child spans for the stages they run (rewrite
cold/hit, execute, delta apply), and the finished tree serializes to JSON
(``docs/trace.schema.json``) for the server to echo back to clients.

Timings use :func:`time.perf_counter` (monotonic), so span durations are
immune to wall-clock adjustments; the trace additionally records one wall
timestamp at its start so traces can be correlated with logs.

The :class:`Tracer` is thread-safe in the way a threaded server needs: the
*active* span stack is thread-local (two worker threads never splice spans
into each other's traces), while the bounded ring of recently finished traces
is shared and lock-guarded.  All tracing is scoped — with no active trace,
:meth:`Tracer.span` is a cheap no-op — so layers can instrument
unconditionally and pay nothing when nobody is looking.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Trace", "Tracer"]

#: Traces kept in the tracer's finished-ring by default.
DEFAULT_KEEP = 64

_trace_counter = itertools.count(1)


def _new_trace_id() -> str:
    """A unique id: 8 random hex chars + a process-local sequence number."""
    return f"{os.urandom(4).hex()}-{next(_trace_counter):06d}"


class Span:
    """One timed operation inside a trace (possibly with child spans)."""

    __slots__ = ("name", "started", "ended", "annotations", "children")

    def __init__(self, name: str, started: float):
        self.name = name
        self.started = started  # perf_counter seconds
        self.ended: Optional[float] = None
        self.annotations: Dict[str, Any] = {}
        self.children: List["Span"] = []

    @property
    def duration(self) -> Optional[float]:
        """Seconds from start to finish; None while the span is open."""
        if self.ended is None:
            return None
        return self.ended - self.started

    def annotate(self, **values: Any) -> None:
        self.annotations.update(values)

    def to_json(self, origin: float) -> Dict[str, Any]:
        """The span subtree relative to the trace origin (milliseconds)."""
        ended = self.ended if self.ended is not None else self.started
        return {
            "name": self.name,
            "start_ms": (self.started - origin) * 1000.0,
            "duration_ms": (ended - self.started) * 1000.0,
            "annotations": dict(self.annotations),
            "children": [child.to_json(origin) for child in self.children],
        }

    def __repr__(self) -> str:
        duration = self.duration
        timing = f"{duration * 1000:.3f}ms" if duration is not None else "open"
        return f"Span({self.name!r}, {timing}, children={len(self.children)})"


class Trace:
    """One request's span tree, addressable by its unique ``trace_id``."""

    __slots__ = ("trace_id", "root", "started_at")

    def __init__(self, name: str, trace_id: Optional[str] = None):
        self.trace_id = trace_id or _new_trace_id()
        self.root = Span(name, time.perf_counter())
        #: Wall-clock start (epoch seconds), for correlating with logs.
        self.started_at = time.time()

    @property
    def name(self) -> str:
        return self.root.name

    @property
    def duration(self) -> Optional[float]:
        return self.root.duration

    def to_json(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.root.name,
            "started_at": self.started_at,
            "duration_ms": (self.root.duration or 0.0) * 1000.0,
            "root": self.root.to_json(self.root.started),
        }

    def __repr__(self) -> str:
        return f"Trace({self.trace_id!r}, {self.root!r})"


class Tracer:
    """Scoped span recording with a bounded ring of finished traces."""

    def __init__(self, keep: int = DEFAULT_KEEP, enabled: bool = True):
        self.enabled = enabled
        self._local = threading.local()
        self._finished: "deque[Trace]" = deque(maxlen=max(1, keep))
        self._lock = threading.Lock()

    # -- the active stack (thread-local) ------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def active_trace(self) -> Optional[Trace]:
        """The trace open on *this* thread, if any."""
        return getattr(self._local, "trace", None)

    @contextmanager
    def trace(
        self, name: str, trace_id: Optional[str] = None, **annotations: Any
    ) -> Iterator[Optional[Trace]]:
        """Open a trace for the current thread (no-op when disabled).

        Nested calls do not start a second trace — they open a child span on
        the enclosing one, so layered verbs (``explain`` calling ``rewrite``)
        produce one tree, not two.
        """
        if not self.enabled:
            yield None
            return
        if self.active_trace is not None:
            with self.span(name, **annotations):
                yield self.active_trace
            return
        current = Trace(name, trace_id)
        if annotations:
            current.root.annotate(**annotations)
        self._local.trace = current
        stack = self._stack()
        stack.append(current.root)
        try:
            yield current
        finally:
            stack.pop()
            current.root.ended = time.perf_counter()
            self._local.trace = None
            with self._lock:
                self._finished.append(current)

    @contextmanager
    def span(self, name: str, **annotations: Any) -> Iterator[Optional[Span]]:
        """A child span of the innermost open span; no-op without a trace."""
        if not self.enabled or self.active_trace is None:
            yield None
            return
        stack = self._stack()
        span = Span(name, time.perf_counter())
        if annotations:
            span.annotations.update(annotations)
        stack[-1].children.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.ended = time.perf_counter()

    # -- finished traces -----------------------------------------------------------
    def last(self) -> Optional[Trace]:
        """The most recently finished trace (None when nothing finished yet)."""
        with self._lock:
            return self._finished[-1] if self._finished else None

    def recent(self, count: int = 10) -> List[Trace]:
        """Up to ``count`` finished traces, most recent last."""
        with self._lock:
            items = list(self._finished)
        return items[-count:]

    def find(self, trace_id: str) -> Optional[Trace]:
        """A finished trace by id, if still in the ring."""
        with self._lock:
            for trace in reversed(self._finished):
                if trace.trace_id == trace_id:
                    return trace
        return None

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
