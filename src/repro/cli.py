"""Command-line interface.

The CLI exposes the library's main entry points for quick experimentation
without writing Python:

``python -m repro rewrite``
    Rewrite a query using views and print the plans found.
``python -m repro answer``
    Evaluate a query (directly, or through its rewriting) over a database of
    facts.
``python -m repro certain``
    Compute certain answers from materialized view instances.
``python -m repro experiments``
    List the reproduced experiments (E1..E10) and the bench that regenerates
    each.

Queries and views are given inline or in files, in the datalog syntax of
:mod:`repro.datalog.parser`; databases are files of ground facts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import ReproError
from repro.datalog.parser import parse_database, parse_query, parse_views
from repro.engine.database import Database
from repro.engine.evaluate import evaluate, materialize_views
from repro.experiments.registry import all_experiments
from repro.rewriting.certain import certain_answers
from repro.rewriting.rewriter import ALGORITHMS, MODES, rewrite


def _read_text(value: str) -> str:
    """Interpret an argument as a file path if one exists, else as inline text."""
    path = Path(value)
    if path.exists() and path.is_file():
        return path.read_text()
    return value


def _load_database(value: str) -> Database:
    return Database.from_atoms(parse_database(_read_text(value)))


def _command_rewrite(args: argparse.Namespace, out) -> int:
    query = parse_query(_read_text(args.query))
    views = parse_views(_read_text(args.views))
    result = rewrite(query, views, algorithm=args.algorithm, mode=args.mode)
    print(f"# query: {query}", file=out)
    print(f"# algorithm={args.algorithm} mode={args.mode} "
          f"candidates={result.candidates_examined} time={result.elapsed:.4f}s", file=out)
    if not result.rewritings:
        print("no rewriting found", file=out)
        return 1
    for index, rewriting in enumerate(result.rewritings, start=1):
        print(f"-- rewriting {index} [{rewriting.kind.value}] "
              f"(views: {', '.join(rewriting.views_used)})", file=out)
        print(rewriting.query, file=out)
        if args.show_expansion and rewriting.expansion is not None:
            print(f"   expansion: {rewriting.expansion}", file=out)
    return 0


def _command_answer(args: argparse.Namespace, out) -> int:
    query = parse_query(_read_text(args.query))
    database = _load_database(args.database)
    if args.views:
        views = parse_views(_read_text(args.views))
        result = rewrite(query, views, algorithm=args.algorithm, mode="equivalent")
        if result.best is None:
            print("no equivalent rewriting found; evaluating the query directly", file=out)
            answers = evaluate(query, database)
        else:
            print(f"# using rewriting: {result.best.query}", file=out)
            instance = materialize_views(views, database)
            answers = evaluate(result.best.query, instance)
    else:
        answers = evaluate(query, database)
    for row in sorted(answers, key=repr):
        print("\t".join(str(value) for value in row), file=out)
    print(f"# {len(answers)} answers", file=out)
    return 0


def _command_certain(args: argparse.Namespace, out) -> int:
    query = parse_query(_read_text(args.query))
    views = parse_views(_read_text(args.views))
    instance = _load_database(args.view_instance)
    answers = certain_answers(query, views, instance, method=args.method)
    for row in sorted(answers, key=repr):
        print("\t".join(str(value) for value in row), file=out)
    print(f"# {len(answers)} certain answers ({args.method})", file=out)
    return 0


def _command_experiments(args: argparse.Namespace, out) -> int:
    for experiment in all_experiments():
        print(f"{experiment.id:<4} [{experiment.artefact:<6}] {experiment.title}", file=out)
        print(f"     claim : {experiment.claim}", file=out)
        print(f"     bench : {experiment.bench_module}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Answering Queries Using Views (PODS 1995) — query rewriting toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    rewrite_parser = subparsers.add_parser("rewrite", help="rewrite a query using views")
    rewrite_parser.add_argument("--query", required=True, help="query text or file")
    rewrite_parser.add_argument("--views", required=True, help="view definitions text or file")
    rewrite_parser.add_argument("--algorithm", choices=ALGORITHMS, default="minicon")
    rewrite_parser.add_argument("--mode", choices=MODES, default="equivalent")
    rewrite_parser.add_argument(
        "--show-expansion", action="store_true", help="also print each rewriting's expansion"
    )
    rewrite_parser.set_defaults(handler=_command_rewrite)

    answer_parser = subparsers.add_parser("answer", help="evaluate a query over a database")
    answer_parser.add_argument("--query", required=True)
    answer_parser.add_argument("--database", required=True, help="facts text or file")
    answer_parser.add_argument(
        "--views", help="optional views: answer through an equivalent rewriting instead"
    )
    answer_parser.add_argument("--algorithm", choices=ALGORITHMS, default="minicon")
    answer_parser.set_defaults(handler=_command_answer)

    certain_parser = subparsers.add_parser(
        "certain", help="certain answers from materialized view instances"
    )
    certain_parser.add_argument("--query", required=True)
    certain_parser.add_argument("--views", required=True)
    certain_parser.add_argument(
        "--view-instance", required=True, help="facts over the view relations (text or file)"
    )
    certain_parser.add_argument(
        "--method",
        choices=["inverse-rules", "rewriting", "minicon", "bucket"],
        default="inverse-rules",
    )
    certain_parser.set_defaults(handler=_command_certain)

    experiments_parser = subparsers.add_parser(
        "experiments", help="list the reproduced experiments"
    )
    experiments_parser.set_defaults(handler=_command_experiments)
    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
