"""Command-line interface.

Every subcommand goes through the :mod:`repro.api` facade — the CLI is a thin
argument-parsing shell around ``repro.connect(...)`` and the engine verbs:

``python -m repro rewrite``
    Rewrite a query using views and print the plans found.
``python -m repro answer``
    Evaluate a query (directly, or through its rewriting) over a database of
    facts.
``python -m repro explain``
    Print the decision tree for a query: rewriting choice, physical plan
    steps, cache and materialization state (optionally as JSON).
``python -m repro certain``
    Compute certain answers from materialized view instances.
``python -m repro materialize``
    Materialize views over a database and print (or save) their extents.
``python -m repro apply-delta``
    Apply a ``+ fact.`` / ``- fact.`` delta to a database, maintain the view
    extents incrementally, and report what changed.
``python -m repro serve``
    Run a long-lived engine that reads queries line by line and serves them
    through the fingerprint cache — or, with ``--http PORT``, serve the
    :mod:`repro.server` HTTP/JSON API (``/query``, ``/explain``,
    ``/apply-delta``, ``/stats``, ``/metrics``, ``/healthz``) until
    SIGINT/SIGTERM, then drain gracefully.
``python -m repro stats``
    Build an engine, optionally warm it with a workload, and print the full
    stats snapshot (``--stats-json`` for machines).
``python -m repro batch``
    Process a file of workload queries through one engine, optionally with
    multiprocessing fan-out, and report per-query results and throughput.
``python -m repro snapshot``
    Checkpoint a durable storage directory: write a snapshot of the current
    (recovered) state so later restarts replay only the WAL tail.
``python -m repro restore``
    Recover a durable storage directory and report what happened — snapshot
    used, WAL records replayed, corruption repaired; ``--output`` exports the
    recovered facts, ``--verify`` cross-checks maintained view extents.
``python -m repro replay``
    Inspect a write-ahead log: record count, last sequence number, and any
    trailing corruption (``--repair`` truncates a damaged tail in place).
``python -m repro experiments``
    List the reproduced experiments (E1..E17) and the bench that regenerates
    each.

Queries and views are given inline or in files, in the datalog syntax of
:mod:`repro.datalog.parser`; databases are files of ground facts.

Exit codes
----------
``0`` success; ``1`` operational failure (no rewriting found, verification
mismatch, batch errors); ``2`` usage error (bad flags — argparse).  Library
errors map each :class:`~repro.errors.ReproError` subclass to its own code so
scripts can react without parsing messages:

=====  ==========================================================
code   error
=====  ==========================================================
64     ``ReproError`` (any subclass not listed below)
65     ``ParseError`` (rendered with line/column and caret context)
66     ``UnsafeQueryError``
67     ``QueryConstructionError``
68     ``SchemaError``
69     ``EvaluationError``
70     ``RewritingError``
71     ``MaterializationError``
72     ``UnsupportedFeatureError``
73     ``ConstraintViolationError``
74     ``StorageError`` (including WAL/snapshot corruption)
=====  ==========================================================

``replay`` exits 1 (not 74) when it *finds* trailing corruption without
``--repair`` — the log is readable and the condition is the command's answer,
not a failure; unrecognizable files (bad magic) still exit 74.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import (
    ConstraintViolationError,
    EvaluationError,
    MaterializationError,
    ParseError,
    QueryConstructionError,
    ReproError,
    RewritingError,
    SchemaError,
    StorageError,
    UnsafeQueryError,
    UnsupportedFeatureError,
)
from repro.api import connect
from repro.datalog.parser import parse_program
from repro.exec import EXECUTORS, set_default_executor
from repro.experiments.registry import all_experiments
from repro.materialize.delta import parse_delta
from repro.rewriting.rewriter import ALGORITHMS, MODES

#: Exit code per error class; the most derived class wins (see module docs).
EXIT_CODES = {
    ReproError: 64,
    ParseError: 65,
    UnsafeQueryError: 66,
    QueryConstructionError: 67,
    SchemaError: 68,
    EvaluationError: 69,
    RewritingError: 70,
    MaterializationError: 71,
    UnsupportedFeatureError: 72,
    ConstraintViolationError: 73,
    StorageError: 74,
}


def exit_code_for(error: ReproError) -> int:
    """The documented exit code for an error (most derived class wins)."""
    for klass in type(error).__mro__:
        code = EXIT_CODES.get(klass)
        if code is not None:
            return code
    return 64  # pragma: no cover - every ReproError hits the base entry


def format_error(error: ReproError) -> str:
    """Render an error for the terminal; parse errors get caret context."""
    message = f"error: {error}"
    if isinstance(error, ParseError):
        context = error.caret_context()
        if context is not None:
            indented = "\n".join(f"  {line}" for line in context.splitlines())
            message = f"{message}\n{indented}"
    return message


def _read_text(value: str) -> str:
    """Interpret an argument as a file path if one exists, else as inline text."""
    path = Path(value)
    if path.exists() and path.is_file():
        return path.read_text()
    return value


def _engine_for(args: argparse.Namespace, **overrides):
    """Build the engine a subcommand needs from its common flags."""
    options = {
        "views": _read_text(args.views) if getattr(args, "views", None) else None,
        "data": _read_text(args.database) if getattr(args, "database", None) else None,
        "algorithm": getattr(args, "algorithm", "minicon"),
        "mode": getattr(args, "mode", "equivalent"),
        "executor": getattr(args, "executor", None),
        "cache_size": getattr(args, "cache_size", 512),
        "use_view_index": not getattr(args, "no_view_index", False),
    }
    if getattr(args, "backend", None):
        options["backend"] = args.backend
    if getattr(args, "storage", None):
        options["storage"] = args.storage
        if getattr(args, "wal", None):
            options["wal"] = args.wal
        if getattr(args, "snapshot_every", None):
            options["snapshot"] = args.snapshot_every
    options.update(overrides)
    return connect(**options)


def _print_rows(rows, out) -> None:
    for row in sorted(rows, key=repr):
        print("\t".join(str(value) for value in row), file=out)


def _command_rewrite(args: argparse.Namespace, out) -> int:
    engine = _engine_for(args)
    prepared = engine.query(_read_text(args.query))
    result = prepared.rewrite()
    print(f"# query: {prepared.query}", file=out)
    print(f"# algorithm={args.algorithm} mode={args.mode} "
          f"candidates={result.candidates_examined} time={result.elapsed:.4f}s", file=out)
    if not result.rewritings:
        print("no rewriting found", file=out)
        return 1
    for index, rewriting in enumerate(result.rewritings, start=1):
        print(f"-- rewriting {index} [{rewriting.kind.value}] "
              f"(views: {', '.join(rewriting.views_used)})", file=out)
        print(rewriting.query, file=out)
        if args.show_expansion and rewriting.expansion is not None:
            print(f"   expansion: {rewriting.expansion}", file=out)
    return 0


def _command_answer(args: argparse.Namespace, out) -> int:
    set_default_executor(args.executor)
    engine = _engine_for(args)
    answer = engine.query(_read_text(args.query)).answers()
    provenance = answer.provenance
    if args.views:
        if provenance.source == "views":
            print(f"# using rewriting: {provenance.rewriting}", file=out)
        elif provenance.source == "views+base":
            print(f"# using partial rewriting: {provenance.rewriting}", file=out)
        else:
            print("no equivalent rewriting found; evaluating the query directly", file=out)
    _print_rows(answer, out)
    print(f"# {len(answer)} answers", file=out)
    return 0


def _command_explain(args: argparse.Namespace, out) -> int:
    engine = _engine_for(args)
    explanation = engine.query(_read_text(args.query)).explain()
    if args.json:
        import json

        Path(args.json).write_text(json.dumps(explanation.to_json(), indent=2))
        print(f"# wrote {args.json}", file=out)
    print(explanation.to_text(), file=out)
    return 0


def _command_certain(args: argparse.Namespace, out) -> int:
    engine = _engine_for(
        args, data=None, view_instance=_read_text(args.view_instance)
    )
    answer = engine.query(_read_text(args.query)).certain(method=args.method)
    _print_rows(answer, out)
    print(f"# {len(answer)} certain answers ({args.method})", file=out)
    return 0


def _command_materialize(args: argparse.Namespace, out) -> int:
    set_default_executor(args.executor)
    engine = _engine_for(args)
    wanted = set(args.view) if args.view else None
    for view in engine.views:
        if wanted is not None and view.name not in wanted:
            continue
        rows = engine.extent(view.name)
        print(f"-- {view.name}/{view.arity}: {len(rows)} rows", file=out)
        if not args.sizes_only:
            _print_rows(rows, out)
    stats = engine.session.store().stats()
    print(
        f"# materialized {stats['views']} views, {stats['extent_rows']} extent rows, "
        f"{stats['tracked_derivations']} derivations tracked",
        file=out,
    )
    return 0


def _command_apply_delta(args: argparse.Namespace, out) -> int:
    engine = _engine_for(args)
    delta = parse_delta(_read_text(args.delta))
    log = engine.apply(delta)
    print(f"# delta: {delta.size()} requested, {log.delta.size()} effective", file=out)
    for name in sorted(log.base_predicates):
        print(
            f"  base {name}: +{len(log.delta.inserted_rows(name))} "
            f"-{len(log.delta.removed_rows(name))}",
            file=out,
        )
    for change in log.view_changes:
        marker = "*" if change.changed else " "
        print(
            f"  view {marker}{change.view}: +{len(change.inserted)} "
            f"-{len(change.removed)} [{change.strategy}]",
            file=out,
        )
    if args.show_extents:
        for view in engine.views:
            rows = engine.extent(view.name)
            print(f"-- {view.name}/{view.arity}: {len(rows)} rows", file=out)
            _print_rows(rows, out)
    if args.verify:
        mismatches = engine.verify()
        if mismatches:
            for mismatch in mismatches:
                print(f"MISMATCH {mismatch}", file=out)
            return 1
        print("# verified: maintained extents equal full recomputation", file=out)
    return 0


def _command_serve(args: argparse.Namespace, out) -> int:
    set_default_executor(args.executor)
    engine = _engine_for(args)
    if args.http is not None:
        return _serve_http(args, engine, out)
    with_answers = engine.database is not None and args.answers
    source = Path(args.input).open() if args.input else sys.stdin
    served = 0
    try:
        for line in source:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line in (":quit", ":exit"):
                break
            if line == ":stats":
                _print_stats(engine, out, as_json=args.stats_json)
                continue
            try:
                prepared = engine.query(line)
                if with_answers:
                    answer = prepared.answers()
                    rows: "object | None" = answer.rows
                    best = answer.provenance.rewriting
                    hit = answer.provenance.cache_hit
                else:
                    result = prepared.rewrite()
                    rows = None
                    best = result.best.query if result.best is not None else None
                    hit = engine.last_cache_hit
            except ReproError as error:
                # One bad request must not take the server down.
                print(format_error(error), file=out)
                continue
            served += 1
            tag = "hit " if hit else "miss"
            if best is None:
                print(f"[{tag}] no rewriting found", file=out)
            else:
                print(f"[{tag}] {best}", file=out)
            if rows is not None:
                _print_rows(rows, out)
                print(f"# {len(rows)} answers", file=out)
    finally:
        if source is not sys.stdin:
            source.close()
    print(f"# served {served} queries", file=out)
    _print_stats(engine, out, as_json=args.stats_json)
    return 0


def _serve_http(args: argparse.Namespace, engine, out) -> int:
    """Run the repro.server HTTP API until SIGINT/SIGTERM, then drain."""
    import signal

    from repro.server import ReproServer

    server = ReproServer(
        engine,
        host=args.host,
        port=args.http,
        workers=args.workers,
        queue_limit=args.queue_limit,
    )
    import threading

    def stop(signum, frame):
        # shutdown() blocks until serve_forever() returns, and the handler
        # runs *on* the serving thread — drain from a helper thread instead.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, stop)
        except ValueError:  # pragma: no cover - non-main thread (tests)
            pass
    print(f"# serving on {server.address} "
          f"(workers={server.workers}, queue_limit={server.queue_limit})", file=out)
    out.flush()
    try:
        server.serve_forever()
    finally:
        server.shutdown()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    _print_stats(engine, out, as_json=args.stats_json)
    return 0


def _command_stats(args: argparse.Namespace, out) -> int:
    set_default_executor(args.executor)
    engine = _engine_for(args)
    if args.queries:
        with_answers = engine.database is not None and args.answers
        for query in parse_program(_read_text(args.queries)):
            prepared = engine.query(query)
            if with_answers:
                prepared.answers()
            else:
                prepared.rewrite()
    _print_stats(engine, out, as_json=args.stats_json)
    return 0


def _print_stats(engine, out, as_json: bool = False) -> None:
    """The end-of-run stats block: human `#` lines, or JSON for scripts."""
    if as_json:
        import json

        print(json.dumps(engine.stats(), default=str, sort_keys=True), file=out)
        return
    _print_session_stats(engine, out)


def _print_session_stats(engine, out) -> None:
    stats = engine.stats()["session"]
    rewrite_stats = stats["rewrite_cache"]
    index_stats = stats["view_index"]
    memo_stats = stats.get("global.containment_memo")
    print(
        f"# cache: {rewrite_stats['hits']} hits / {rewrite_stats['misses']} misses "
        f"(rate {rewrite_stats['hit_rate']:.2f}), {rewrite_stats['evictions']} evictions",
        file=out,
    )
    if memo_stats is not None:
        print(
            f"# containment memo: {memo_stats['hits']} hits / {memo_stats['misses']} misses "
            f"(rate {memo_stats['hit_rate']:.2f}), {memo_stats['guard_rejections']} guard "
            f"rejections, {memo_stats['bypasses']} bypasses",
            file=out,
        )
    if index_stats is not None:
        print(
            f"# view index: {index_stats['views_pruned']} views pruned, "
            f"{index_stats['views_admitted']} admitted across "
            f"{index_stats['queries_filtered']} queries",
            file=out,
        )


def _command_batch(args: argparse.Namespace, out) -> int:
    set_default_executor(args.executor)
    engine = _engine_for(args)
    queries = parse_program(_read_text(args.queries))
    report = engine.batch(
        queries, with_answers=args.answers, processes=args.processes
    )
    for item in report.items:
        status = "error" if item.error else ("hit " if item.cache_hit else "miss")
        summary = item.error or item.best or "no rewriting found"
        answers = f" answers={item.answers}" if item.answers is not None else ""
        print(f"[{status}] {item.query}  ->  {summary}{answers}", file=out)
    print(
        f"# {report.requests} queries, {report.cache_hits} cache hits, "
        f"{report.errors} errors, {report.elapsed:.3f}s "
        f"({report.throughput:.1f} q/s, {report.processes} process(es))",
        file=out,
    )
    if args.json:
        import json

        Path(args.json).write_text(json.dumps(report.to_dict(), indent=2))
        print(f"# wrote {args.json}", file=out)
    return 0 if report.errors == 0 else 1


def _command_snapshot(args: argparse.Namespace, out) -> int:
    engine = connect(
        views=_read_text(args.views) if args.views else None,
        storage=args.storage,
        backend=args.backend or None,
    )
    try:
        info = engine.checkpoint()
    finally:
        engine.close()
    print(
        f"# snapshot {info['path']}: seq={info['seq']} bytes={info['bytes']}",
        file=out,
    )
    return 0


def _command_restore(args: argparse.Namespace, out) -> int:
    engine = connect(
        views=_read_text(args.views) if args.views else None,
        storage=args.storage,
        backend=args.backend or None,
    )
    try:
        report = engine.recovery_report
        if report is None:
            print("# nothing to recover: the storage directory was fresh", file=out)
        else:
            snapshot = report.get("snapshot")
            if snapshot:
                base = f"snapshot seq {snapshot['seq']}"
            elif report.get("backend") == "sqlite":
                base = f"sqlite base store at seq {report['base_seq']}"
            else:
                base = "empty state"
            print(
                f"# recovered from {base} + {report['replayed']} WAL record(s) "
                f"(backend: {report['backend']})",
                file=out,
            )
            for skipped in report.get("snapshots_skipped", ()):
                print(f"# skipped snapshot {skipped['path']}: {skipped['error']}", file=out)
            wal = report.get("wal", {})
            if wal.get("corruption"):
                print(
                    f"# wal corruption repaired: {wal['corruption']} "
                    f"(truncated at byte {wal['truncated_at']})",
                    file=out,
                )
        database = engine.database
        assert database is not None
        print(f"# state: {database.size()} facts in "
              f"{len(database.relation_names())} relation(s)", file=out)
        if args.output:
            from repro.materialize.delta import _value_to_text

            lines = []
            for name in sorted(database.relation_names()):
                for row in sorted(database.tuples(name), key=repr):
                    rendered = ", ".join(_value_to_text(value) for value in row)
                    lines.append(f"{name}({rendered}).")
            Path(args.output).write_text("\n".join(lines) + ("\n" if lines else ""))
            print(f"# wrote {len(lines)} facts to {args.output}", file=out)
        if args.verify:
            if not args.views:
                print("# --verify needs --views (nothing to cross-check)", file=out)
                return 1
            mismatches = engine.verify()
            if mismatches:
                for mismatch in mismatches:
                    print(f"MISMATCH {mismatch}", file=out)
                return 1
            print("# verified: maintained extents equal full recomputation", file=out)
    finally:
        engine.close()
    return 0


def _command_replay(args: argparse.Namespace, out) -> int:
    import os

    from repro.storage import read_wal
    from repro.storage.manager import WAL_FILENAME

    path = args.wal_file or os.path.join(args.storage, WAL_FILENAME)
    records, report = read_wal(path, repair=args.repair)
    print(
        f"# wal {path}: {report.records} record(s), last seq {report.last_seq}, "
        f"{report.bytes_read} byte(s)",
        file=out,
    )
    if args.show:
        for record in records:
            changes = record.payload.count("\n") + 1 if record.payload else 0
            print(
                f"  seq={record.seq} version={record.db_version} "
                f"lines={changes}",
                file=out,
            )
    if report.corruption is not None:
        status = "repaired" if report.repaired else "found (re-run with --repair)"
        print(
            f"# corruption {status}: {report.corruption} at byte "
            f"{report.truncated_at}",
            file=out,
        )
        return 0 if report.repaired else 1
    print("# log is clean", file=out)
    return 0


def _command_experiments(args: argparse.Namespace, out) -> int:
    for experiment in all_experiments():
        print(f"{experiment.id:<4} [{experiment.artefact:<6}] {experiment.title}", file=out)
        print(f"     claim : {experiment.claim}", file=out)
        print(f"     bench : {experiment.bench_module}", file=out)
    return 0


def _add_storage_flags(parser: argparse.ArgumentParser, required: bool = False) -> None:
    from repro.storage import BACKENDS

    parser.add_argument(
        "--storage", required=required, default=None, metavar="DIR",
        help="persistent storage directory (write-ahead log + snapshots); "
             "recovers any existing state on startup",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="storage backend: memory (snapshot + full WAL replay) or sqlite "
             "(transactional base-fact store); default: auto-detect from the "
             "directory, else REPRO_DEFAULT_BACKEND or memory",
    )
    parser.add_argument(
        "--wal", choices=["always", "batch", "none"], default=None,
        help="WAL fsync policy: always (fsync per append), batch (fsync on "
             "checkpoint/close; default), none (no fsync — fast, crash-unsafe)",
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=None, dest="snapshot_every",
        metavar="N", help="write a checkpoint snapshot every N applied deltas",
    )


def _add_executor_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor", choices=EXECUTORS, default=None,
        help="execution engine for query evaluation: compiled, interpreted, "
             "or parallel (partitioned hash joins across a forked worker "
             "pool); default: the configured default (REPRO_DEFAULT_EXECUTOR "
             "or compiled)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Answering Queries Using Views (PODS 1995) — query rewriting toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    rewrite_parser = subparsers.add_parser("rewrite", help="rewrite a query using views")
    rewrite_parser.add_argument("--query", required=True, help="query text or file")
    rewrite_parser.add_argument("--views", required=True, help="view definitions text or file")
    rewrite_parser.add_argument("--algorithm", choices=ALGORITHMS, default="minicon")
    rewrite_parser.add_argument("--mode", choices=MODES, default="equivalent")
    rewrite_parser.add_argument(
        "--show-expansion", action="store_true", help="also print each rewriting's expansion"
    )
    rewrite_parser.set_defaults(handler=_command_rewrite)

    answer_parser = subparsers.add_parser("answer", help="evaluate a query over a database")
    answer_parser.add_argument("--query", required=True)
    answer_parser.add_argument("--database", required=True, help="facts text or file")
    answer_parser.add_argument(
        "--views", help="optional views: answer through an equivalent rewriting instead"
    )
    answer_parser.add_argument("--algorithm", choices=ALGORITHMS, default="minicon")
    _add_executor_flag(answer_parser)
    answer_parser.set_defaults(handler=_command_answer)

    explain_parser = subparsers.add_parser(
        "explain", help="print the rewriting/plan/cache decision tree for a query"
    )
    explain_parser.add_argument("--query", required=True)
    explain_parser.add_argument("--views", required=True, help="view definitions text or file")
    explain_parser.add_argument("--database", help="optional facts text or file")
    explain_parser.add_argument("--algorithm", choices=ALGORITHMS, default="minicon")
    explain_parser.add_argument("--mode", choices=MODES, default="equivalent")
    explain_parser.add_argument("--json", help="also write the explanation to this JSON file")
    _add_executor_flag(explain_parser)
    explain_parser.set_defaults(handler=_command_explain)

    certain_parser = subparsers.add_parser(
        "certain", help="certain answers from materialized view instances"
    )
    certain_parser.add_argument("--query", required=True)
    certain_parser.add_argument("--views", required=True)
    certain_parser.add_argument(
        "--view-instance", required=True, help="facts over the view relations (text or file)"
    )
    certain_parser.add_argument(
        "--method",
        choices=["inverse-rules", "rewriting", "minicon", "bucket"],
        default="inverse-rules",
    )
    certain_parser.set_defaults(handler=_command_certain)

    materialize_parser = subparsers.add_parser(
        "materialize", help="materialize views over a database and print their extents"
    )
    materialize_parser.add_argument("--views", required=True, help="view definitions text or file")
    materialize_parser.add_argument("--database", required=True, help="facts text or file")
    materialize_parser.add_argument(
        "--view", action="append", help="only show these views (repeatable)"
    )
    materialize_parser.add_argument(
        "--sizes-only", action="store_true", help="print extent sizes without the rows"
    )
    _add_executor_flag(materialize_parser)
    materialize_parser.set_defaults(handler=_command_materialize)

    delta_parser = subparsers.add_parser(
        "apply-delta",
        help="apply a '+ fact.' / '- fact.' delta and maintain views incrementally",
    )
    delta_parser.add_argument("--views", required=True, help="view definitions text or file")
    delta_parser.add_argument("--database", required=True, help="facts text or file")
    delta_parser.add_argument(
        "--delta", required=True, help="delta text or file (lines of '+ fact.' / '- fact.')"
    )
    delta_parser.add_argument(
        "--show-extents", action="store_true", help="print the maintained extents after applying"
    )
    delta_parser.add_argument(
        "--verify", action="store_true",
        help="cross-check maintained extents against full recomputation",
    )
    delta_parser.set_defaults(handler=_command_apply_delta)

    serve_parser = subparsers.add_parser(
        "serve", help="serve queries line by line through a caching engine"
    )
    serve_parser.add_argument("--views", required=True, help="view definitions text or file")
    serve_parser.add_argument("--database", help="optional facts text or file")
    serve_parser.add_argument("--algorithm", choices=ALGORITHMS, default="minicon")
    serve_parser.add_argument("--mode", choices=MODES, default="equivalent")
    serve_parser.add_argument("--cache-size", type=int, default=512)
    serve_parser.add_argument(
        "--input", help="file of queries, one per line (default: stdin)"
    )
    serve_parser.add_argument(
        "--answers", action="store_true",
        help="also evaluate each query over the database",
    )
    serve_parser.add_argument(
        "--no-view-index", action="store_true", help="disable view-relevance pruning"
    )
    serve_parser.add_argument(
        "--http", type=int, metavar="PORT", default=None,
        help="serve the HTTP/JSON API on this port instead of reading stdin "
             "(0 picks a free port)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address for --http"
    )
    serve_parser.add_argument(
        "--workers", type=int, default=4, help="worker threads for --http"
    )
    serve_parser.add_argument(
        "--queue-limit", type=int, default=32,
        help="max in-flight POST requests before 503s (--http)",
    )
    serve_parser.add_argument(
        "--stats-json", action="store_true",
        help="print stats as one JSON object instead of '#' comment lines",
    )
    _add_executor_flag(serve_parser)
    _add_storage_flags(serve_parser)
    serve_parser.set_defaults(handler=_command_serve)

    stats_parser = subparsers.add_parser(
        "stats", help="print an engine's stats snapshot, optionally after a workload"
    )
    stats_parser.add_argument("--views", required=True, help="view definitions text or file")
    stats_parser.add_argument("--database", help="optional facts text or file")
    stats_parser.add_argument(
        "--queries", help="optional warmup workload (datalog rules, text or file)"
    )
    stats_parser.add_argument("--algorithm", choices=ALGORITHMS, default="minicon")
    stats_parser.add_argument("--mode", choices=MODES, default="equivalent")
    stats_parser.add_argument("--cache-size", type=int, default=512)
    stats_parser.add_argument(
        "--answers", action="store_true",
        help="evaluate the warmup queries over the database",
    )
    stats_parser.add_argument(
        "--no-view-index", action="store_true", help="disable view-relevance pruning"
    )
    stats_parser.add_argument(
        "--stats-json", action="store_true",
        help="print stats as one JSON object instead of '#' comment lines",
    )
    _add_executor_flag(stats_parser)
    _add_storage_flags(stats_parser)
    stats_parser.set_defaults(handler=_command_stats)

    batch_parser = subparsers.add_parser(
        "batch", help="process a workload file through one caching engine"
    )
    batch_parser.add_argument(
        "--queries", required=True, help="workload queries (datalog rules, text or file)"
    )
    batch_parser.add_argument("--views", required=True, help="view definitions text or file")
    batch_parser.add_argument("--database", help="optional facts text or file")
    batch_parser.add_argument("--algorithm", choices=ALGORITHMS, default="minicon")
    batch_parser.add_argument("--mode", choices=MODES, default="equivalent")
    batch_parser.add_argument("--cache-size", type=int, default=512)
    batch_parser.add_argument(
        "--processes", type=int, default=1,
        help="worker processes (>1 enables multiprocessing fan-out)",
    )
    batch_parser.add_argument(
        "--answers", action="store_true",
        help="also evaluate each query over the database",
    )
    batch_parser.add_argument(
        "--no-view-index", action="store_true", help="disable view-relevance pruning"
    )
    _add_executor_flag(batch_parser)
    batch_parser.add_argument("--json", help="write the full report to this JSON file")
    batch_parser.set_defaults(handler=_command_batch)

    snapshot_parser = subparsers.add_parser(
        "snapshot", help="checkpoint a storage directory (base facts + view store)"
    )
    snapshot_parser.add_argument(
        "--storage", required=True, metavar="DIR", help="persistent storage directory"
    )
    snapshot_parser.add_argument(
        "--views", help="view definitions text or file (checkpoints the view "
                        "store too, so recovery can skip re-materialization)"
    )
    snapshot_parser.add_argument(
        "--backend", default=None,
        help="override backend auto-detection (memory or sqlite)",
    )
    snapshot_parser.set_defaults(handler=_command_snapshot)

    restore_parser = subparsers.add_parser(
        "restore", help="recover a storage directory and report/export its state"
    )
    restore_parser.add_argument(
        "--storage", required=True, metavar="DIR", help="persistent storage directory"
    )
    restore_parser.add_argument(
        "--views", help="view definitions text or file (needed for --verify)"
    )
    restore_parser.add_argument(
        "--backend", default=None,
        help="override backend auto-detection (memory or sqlite)",
    )
    restore_parser.add_argument(
        "--output", metavar="FILE", help="write the recovered facts to this file"
    )
    restore_parser.add_argument(
        "--verify", action="store_true",
        help="cross-check recovered view extents against full recomputation",
    )
    restore_parser.set_defaults(handler=_command_restore)

    replay_parser = subparsers.add_parser(
        "replay", help="inspect a write-ahead log; optionally repair a corrupt tail"
    )
    replay_parser.add_argument(
        "--storage", required=True, metavar="DIR", help="persistent storage directory"
    )
    replay_parser.add_argument(
        "--wal-file", default=None, metavar="FILE",
        help="explicit WAL path (default: <storage>/wal.log)",
    )
    replay_parser.add_argument(
        "--show", action="store_true", help="print one line per record"
    )
    replay_parser.add_argument(
        "--repair", action="store_true",
        help="truncate a corrupt tail so the log opens cleanly",
    )
    replay_parser.set_defaults(handler=_command_replay)

    experiments_parser = subparsers.add_parser(
        "experiments", help="list the reproduced experiments"
    )
    experiments_parser.set_defaults(handler=_command_experiments)
    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code (see module docs)."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args, out)
    except ReproError as error:
        print(format_error(error), file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(argv=None))
