"""Command-line interface.

The CLI exposes the library's main entry points for quick experimentation
without writing Python:

``python -m repro rewrite``
    Rewrite a query using views and print the plans found.
``python -m repro answer``
    Evaluate a query (directly, or through its rewriting) over a database of
    facts.
``python -m repro certain``
    Compute certain answers from materialized view instances.
``python -m repro materialize``
    Materialize views over a database and print (or save) their extents.
``python -m repro apply-delta``
    Apply a ``+ fact.`` / ``- fact.`` delta to a database, maintain the view
    extents incrementally, and report what changed.
``python -m repro serve``
    Run a long-lived rewriting session that reads queries line by line and
    serves them through the fingerprint cache.
``python -m repro batch``
    Process a file of workload queries through one session, optionally with
    multiprocessing fan-out, and report per-query results and throughput.
``python -m repro experiments``
    List the reproduced experiments (E1..E13) and the bench that regenerates
    each.

Queries and views are given inline or in files, in the datalog syntax of
:mod:`repro.datalog.parser`; databases are files of ground facts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import ReproError
from repro.datalog.parser import parse_database, parse_program, parse_query, parse_views
from repro.engine.database import Database
from repro.engine.evaluate import evaluate, materialize_views
from repro.exec import EXECUTORS, set_default_executor
from repro.experiments.registry import all_experiments
from repro.materialize.compare import verify_extents
from repro.materialize.delta import parse_delta
from repro.materialize.store import MaterializedViewStore
from repro.rewriting.certain import certain_answers
from repro.rewriting.rewriter import ALGORITHMS, MODES, rewrite
from repro.service.batch import run_batch
from repro.service.session import RewritingSession


def _read_text(value: str) -> str:
    """Interpret an argument as a file path if one exists, else as inline text."""
    path = Path(value)
    if path.exists() and path.is_file():
        return path.read_text()
    return value


def _load_database(value: str) -> Database:
    return Database.from_atoms(parse_database(_read_text(value)))


def _command_rewrite(args: argparse.Namespace, out) -> int:
    query = parse_query(_read_text(args.query))
    views = parse_views(_read_text(args.views))
    result = rewrite(query, views, algorithm=args.algorithm, mode=args.mode)
    print(f"# query: {query}", file=out)
    print(f"# algorithm={args.algorithm} mode={args.mode} "
          f"candidates={result.candidates_examined} time={result.elapsed:.4f}s", file=out)
    if not result.rewritings:
        print("no rewriting found", file=out)
        return 1
    for index, rewriting in enumerate(result.rewritings, start=1):
        print(f"-- rewriting {index} [{rewriting.kind.value}] "
              f"(views: {', '.join(rewriting.views_used)})", file=out)
        print(rewriting.query, file=out)
        if args.show_expansion and rewriting.expansion is not None:
            print(f"   expansion: {rewriting.expansion}", file=out)
    return 0


def _command_answer(args: argparse.Namespace, out) -> int:
    set_default_executor(args.executor)
    query = parse_query(_read_text(args.query))
    database = _load_database(args.database)
    if args.views:
        views = parse_views(_read_text(args.views))
        result = rewrite(query, views, algorithm=args.algorithm, mode="equivalent")
        if result.best is None:
            print("no equivalent rewriting found; evaluating the query directly", file=out)
            answers = evaluate(query, database)
        else:
            print(f"# using rewriting: {result.best.query}", file=out)
            instance = materialize_views(views, database)
            answers = evaluate(result.best.query, instance)
    else:
        answers = evaluate(query, database)
    for row in sorted(answers, key=repr):
        print("\t".join(str(value) for value in row), file=out)
    print(f"# {len(answers)} answers", file=out)
    return 0


def _command_certain(args: argparse.Namespace, out) -> int:
    query = parse_query(_read_text(args.query))
    views = parse_views(_read_text(args.views))
    instance = _load_database(args.view_instance)
    answers = certain_answers(query, views, instance, method=args.method)
    for row in sorted(answers, key=repr):
        print("\t".join(str(value) for value in row), file=out)
    print(f"# {len(answers)} certain answers ({args.method})", file=out)
    return 0


def _command_materialize(args: argparse.Namespace, out) -> int:
    set_default_executor(args.executor)
    views = parse_views(_read_text(args.views))
    database = _load_database(args.database)
    store = MaterializedViewStore(views, database)
    wanted = set(args.view) if args.view else None
    for view in views:
        if wanted is not None and view.name not in wanted:
            continue
        rows = store.extent(view.name)
        print(f"-- {view.name}/{view.arity}: {len(rows)} rows", file=out)
        if not args.sizes_only:
            for row in sorted(rows, key=repr):
                print("\t".join(str(value) for value in row), file=out)
    stats = store.stats()
    print(
        f"# materialized {stats['views']} views, {stats['extent_rows']} extent rows, "
        f"{stats['tracked_derivations']} derivations tracked",
        file=out,
    )
    return 0


def _command_apply_delta(args: argparse.Namespace, out) -> int:
    views = parse_views(_read_text(args.views))
    database = _load_database(args.database)
    store = MaterializedViewStore(views, database)
    delta = parse_delta(_read_text(args.delta))
    log = store.apply_delta(delta)
    print(f"# delta: {delta.size()} requested, {log.delta.size()} effective", file=out)
    for name in sorted(log.base_predicates):
        print(
            f"  base {name}: +{len(log.delta.inserted_rows(name))} "
            f"-{len(log.delta.removed_rows(name))}",
            file=out,
        )
    for change in log.view_changes:
        marker = "*" if change.changed else " "
        print(
            f"  view {marker}{change.view}: +{len(change.inserted)} "
            f"-{len(change.removed)} [{change.strategy}]",
            file=out,
        )
    if args.show_extents:
        for view in views:
            rows = store.extent(view.name)
            print(f"-- {view.name}/{view.arity}: {len(rows)} rows", file=out)
            for row in sorted(rows, key=repr):
                print("\t".join(str(value) for value in row), file=out)
    if args.verify:
        mismatches = verify_extents(store)
        if mismatches:
            for mismatch in mismatches:
                print(f"MISMATCH {mismatch}", file=out)
            return 1
        print("# verified: maintained extents equal full recomputation", file=out)
    return 0


def _command_serve(args: argparse.Namespace, out) -> int:
    views = parse_views(_read_text(args.views))
    database = _load_database(args.database) if args.database else None
    session = RewritingSession(
        views,
        database=database,
        algorithm=args.algorithm,
        mode=args.mode,
        cache_size=args.cache_size,
        use_view_index=not args.no_view_index,
        executor=args.executor,
    )
    source = Path(args.input).open() if args.input else sys.stdin
    served = 0
    try:
        for line in source:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line in (":quit", ":exit"):
                break
            if line == ":stats":
                _print_session_stats(session, out)
                continue
            try:
                query = parse_query(line)
                if database is not None and args.answers:
                    rows, result = session.answer_with_plan(query)
                else:
                    rows, result = None, session.rewrite_cached(query)
            except ReproError as error:
                # One bad request must not take the server down.
                print(f"error: {error}", file=out)
                continue
            served += 1
            tag = "hit " if session.last_cache_hit else "miss"
            if result.best is None:
                print(f"[{tag}] no rewriting found", file=out)
            else:
                print(f"[{tag}] {result.best.query}", file=out)
            if rows is not None:
                for row in sorted(rows, key=repr):
                    print("\t".join(str(value) for value in row), file=out)
                print(f"# {len(rows)} answers", file=out)
    finally:
        if source is not sys.stdin:
            source.close()
    print(f"# served {served} queries", file=out)
    _print_session_stats(session, out)
    return 0


def _print_session_stats(session: RewritingSession, out) -> None:
    stats = session.stats()
    rewrite_stats = stats["rewrite_cache"]
    index_stats = stats["view_index"]
    print(
        f"# cache: {rewrite_stats['hits']} hits / {rewrite_stats['misses']} misses "
        f"(rate {rewrite_stats['hit_rate']:.2f}), {rewrite_stats['evictions']} evictions",
        file=out,
    )
    if index_stats is not None:
        print(
            f"# view index: {index_stats['views_pruned']} views pruned, "
            f"{index_stats['views_admitted']} admitted across "
            f"{index_stats['queries_filtered']} queries",
            file=out,
        )


def _command_batch(args: argparse.Namespace, out) -> int:
    queries = parse_program(_read_text(args.queries))
    views = parse_views(_read_text(args.views))
    database = _load_database(args.database) if args.database else None
    report = run_batch(
        queries,
        views,
        database=database,
        algorithm=args.algorithm,
        mode=args.mode,
        cache_size=args.cache_size,
        use_view_index=not args.no_view_index,
        with_answers=args.answers,
        processes=args.processes,
        executor=args.executor,
    )
    for item in report.items:
        status = "error" if item.error else ("hit " if item.cache_hit else "miss")
        summary = item.error or item.best or "no rewriting found"
        answers = f" answers={item.answers}" if item.answers is not None else ""
        print(f"[{status}] {item.query}  ->  {summary}{answers}", file=out)
    print(
        f"# {report.requests} queries, {report.cache_hits} cache hits, "
        f"{report.errors} errors, {report.elapsed:.3f}s "
        f"({report.throughput:.1f} q/s, {report.processes} process(es))",
        file=out,
    )
    if args.json:
        import json

        Path(args.json).write_text(json.dumps(report.to_dict(), indent=2))
        print(f"# wrote {args.json}", file=out)
    return 0 if report.errors == 0 else 1


def _command_experiments(args: argparse.Namespace, out) -> int:
    for experiment in all_experiments():
        print(f"{experiment.id:<4} [{experiment.artefact:<6}] {experiment.title}", file=out)
        print(f"     claim : {experiment.claim}", file=out)
        print(f"     bench : {experiment.bench_module}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Answering Queries Using Views (PODS 1995) — query rewriting toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    rewrite_parser = subparsers.add_parser("rewrite", help="rewrite a query using views")
    rewrite_parser.add_argument("--query", required=True, help="query text or file")
    rewrite_parser.add_argument("--views", required=True, help="view definitions text or file")
    rewrite_parser.add_argument("--algorithm", choices=ALGORITHMS, default="minicon")
    rewrite_parser.add_argument("--mode", choices=MODES, default="equivalent")
    rewrite_parser.add_argument(
        "--show-expansion", action="store_true", help="also print each rewriting's expansion"
    )
    rewrite_parser.set_defaults(handler=_command_rewrite)

    answer_parser = subparsers.add_parser("answer", help="evaluate a query over a database")
    answer_parser.add_argument("--query", required=True)
    answer_parser.add_argument("--database", required=True, help="facts text or file")
    answer_parser.add_argument(
        "--views", help="optional views: answer through an equivalent rewriting instead"
    )
    answer_parser.add_argument("--algorithm", choices=ALGORITHMS, default="minicon")
    answer_parser.add_argument(
        "--executor", choices=EXECUTORS, default="compiled", help="execution engine for query evaluation (default: compiled)"
    )
    answer_parser.set_defaults(handler=_command_answer)

    certain_parser = subparsers.add_parser(
        "certain", help="certain answers from materialized view instances"
    )
    certain_parser.add_argument("--query", required=True)
    certain_parser.add_argument("--views", required=True)
    certain_parser.add_argument(
        "--view-instance", required=True, help="facts over the view relations (text or file)"
    )
    certain_parser.add_argument(
        "--method",
        choices=["inverse-rules", "rewriting", "minicon", "bucket"],
        default="inverse-rules",
    )
    certain_parser.set_defaults(handler=_command_certain)

    materialize_parser = subparsers.add_parser(
        "materialize", help="materialize views over a database and print their extents"
    )
    materialize_parser.add_argument("--views", required=True, help="view definitions text or file")
    materialize_parser.add_argument("--database", required=True, help="facts text or file")
    materialize_parser.add_argument(
        "--view", action="append", help="only show these views (repeatable)"
    )
    materialize_parser.add_argument(
        "--sizes-only", action="store_true", help="print extent sizes without the rows"
    )
    materialize_parser.add_argument(
        "--executor", choices=EXECUTORS, default="compiled", help="execution engine for query evaluation (default: compiled)"
    )
    materialize_parser.set_defaults(handler=_command_materialize)

    delta_parser = subparsers.add_parser(
        "apply-delta",
        help="apply a '+ fact.' / '- fact.' delta and maintain views incrementally",
    )
    delta_parser.add_argument("--views", required=True, help="view definitions text or file")
    delta_parser.add_argument("--database", required=True, help="facts text or file")
    delta_parser.add_argument(
        "--delta", required=True, help="delta text or file (lines of '+ fact.' / '- fact.')"
    )
    delta_parser.add_argument(
        "--show-extents", action="store_true", help="print the maintained extents after applying"
    )
    delta_parser.add_argument(
        "--verify", action="store_true",
        help="cross-check maintained extents against full recomputation",
    )
    delta_parser.set_defaults(handler=_command_apply_delta)

    serve_parser = subparsers.add_parser(
        "serve", help="serve queries line by line through a caching session"
    )
    serve_parser.add_argument("--views", required=True, help="view definitions text or file")
    serve_parser.add_argument("--database", help="optional facts text or file")
    serve_parser.add_argument("--algorithm", choices=ALGORITHMS, default="minicon")
    serve_parser.add_argument("--mode", choices=MODES, default="equivalent")
    serve_parser.add_argument("--cache-size", type=int, default=512)
    serve_parser.add_argument(
        "--input", help="file of queries, one per line (default: stdin)"
    )
    serve_parser.add_argument(
        "--answers", action="store_true",
        help="also evaluate each query over the database",
    )
    serve_parser.add_argument(
        "--no-view-index", action="store_true", help="disable view-relevance pruning"
    )
    serve_parser.add_argument(
        "--executor", choices=EXECUTORS, default="compiled", help="execution engine for query evaluation (default: compiled)"
    )
    serve_parser.set_defaults(handler=_command_serve)

    batch_parser = subparsers.add_parser(
        "batch", help="process a workload file through one caching session"
    )
    batch_parser.add_argument(
        "--queries", required=True, help="workload queries (datalog rules, text or file)"
    )
    batch_parser.add_argument("--views", required=True, help="view definitions text or file")
    batch_parser.add_argument("--database", help="optional facts text or file")
    batch_parser.add_argument("--algorithm", choices=ALGORITHMS, default="minicon")
    batch_parser.add_argument("--mode", choices=MODES, default="equivalent")
    batch_parser.add_argument("--cache-size", type=int, default=512)
    batch_parser.add_argument(
        "--processes", type=int, default=1,
        help="worker processes (>1 enables multiprocessing fan-out)",
    )
    batch_parser.add_argument(
        "--answers", action="store_true",
        help="also evaluate each query over the database",
    )
    batch_parser.add_argument(
        "--no-view-index", action="store_true", help="disable view-relevance pruning"
    )
    batch_parser.add_argument(
        "--executor", choices=EXECUTORS, default="compiled", help="execution engine for query evaluation (default: compiled)"
    )
    batch_parser.add_argument("--json", help="write the full report to this JSON file")
    batch_parser.set_defaults(handler=_command_batch)

    experiments_parser = subparsers.add_parser(
        "experiments", help="list the reproduced experiments"
    )
    experiments_parser.set_defaults(handler=_command_experiments)
    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
