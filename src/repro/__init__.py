"""repro — Answering Queries Using Views (PODS 1995).

A library for rewriting conjunctive queries using materialized views:
containment and equivalence testing, complete and maximally-contained
rewritings (exhaustive / bucket / MiniCon / inverse-rules algorithms),
certain-answer computation, and an in-memory relational engine for verifying
and costing the plans.

Quickstart
----------
The front door is :func:`repro.connect`: one call validates the catalog
(schema + views + constraints), attaches data, and returns an engine whose
verbs cover the whole lifecycle:

>>> import repro
>>> engine = repro.connect(
...     views="v_smith(S1) :- enrolled(S1, C1), taught_by(C1, 'smith').",
...     data="enrolled('ana', 'db'). taught_by('db', 'smith').",
... )
>>> answer = engine.query("q(S) :- enrolled(S, C), taught_by(C, 'smith').").answers()
>>> sorted(answer)
[('ana',)]
>>> answer.provenance.source
'views'

The pre-facade entry points (``rewrite``, ``evaluate``, ``RewritingSession``,
...) remain fully supported — see ``docs/migration.md``:

>>> from repro import parse_query, parse_views, rewrite
>>> query = parse_query("q(S) :- enrolled(S, C), taught_by(C, 'smith').")
>>> views = parse_views(
...     "v_smith(S1) :- enrolled(S1, C1), taught_by(C1, 'smith')."
... )
>>> result = rewrite(query, views, algorithm="minicon")
>>> result.has_equivalent
True
"""

from repro.errors import (
    ConstraintViolationError,
    EvaluationError,
    MaterializationError,
    ParseError,
    QueryConstructionError,
    ReproError,
    RewritingError,
    SchemaError,
    SnapshotError,
    StorageError,
    UnsafeQueryError,
    UnsupportedFeatureError,
    WalCorruptionError,
)
from repro.datalog import (
    Atom,
    Comparison,
    ComparisonOperator,
    ConjunctiveQuery,
    Constant,
    FunctionTerm,
    Substitution,
    UnionQuery,
    Variable,
    View,
    ViewSet,
    parse_atom,
    parse_database,
    parse_program,
    parse_query,
    parse_view,
    parse_views,
    to_datalog,
)
from repro.containment import (
    containment_memo_stats,
    is_contained,
    is_equivalent,
    is_satisfiable,
    minimize,
)
from repro.engine import (
    Database,
    DatalogProgram,
    estimate_cost,
    evaluate,
    evaluate_boolean,
    evaluate_program,
    materialize_views,
    measured_cost,
)
from repro.rewriting import (
    BucketRewriter,
    ExhaustiveRewriter,
    InverseRulesRewriter,
    MiniConRewriter,
    OptimizationResult,
    PlanChoice,
    Rewriting,
    RewritingKind,
    RewritingResult,
    certain_answers,
    choose_best_plan,
    enumerate_plans,
    expand_rewriting,
    is_complete_rewriting,
    is_contained_rewriting,
    maximally_contained_rewriting,
    partial_rewritings,
    rewrite,
    view_is_relevant,
    view_is_usable,
    view_is_useful,
)
from repro.exec import (
    CompiledExecutor,
    InterpretedExecutor,
    ParallelExecutor,
    set_default_executor,
)
from repro.materialize import (
    ChangeLog,
    Delta,
    MaterializedViewStore,
    ViewChange,
    parse_delta,
)
from repro.service import (
    BatchReport,
    LRUCache,
    QueryFingerprint,
    RewritingSession,
    ViewRelevanceIndex,
    fingerprint,
    run_batch,
)
from repro.api import (
    Answer,
    Catalog,
    Engine,
    Explanation,
    PreparedQuery,
    connect,
)
from repro.storage import (
    BackedDatabase,
    MemoryBackend,
    StorageBackend,
    StorageManager,
    WriteAheadLog,
    make_backend,
)

__version__ = "1.1.0"

__all__ = [
    "Answer",
    "Atom",
    "BackedDatabase",
    "BatchReport",
    "BucketRewriter",
    "Catalog",
    "ChangeLog",
    "Comparison",
    "ComparisonOperator",
    "CompiledExecutor",
    "ConjunctiveQuery",
    "Constant",
    "ConstraintViolationError",
    "Database",
    "Engine",
    "DatalogProgram",
    "Delta",
    "EvaluationError",
    "ExhaustiveRewriter",
    "Explanation",
    "FunctionTerm",
    "InterpretedExecutor",
    "InverseRulesRewriter",
    "LRUCache",
    "MaterializationError",
    "MaterializedViewStore",
    "MemoryBackend",
    "MiniConRewriter",
    "OptimizationResult",
    "ParallelExecutor",
    "ParseError",
    "PlanChoice",
    "PreparedQuery",
    "QueryConstructionError",
    "QueryFingerprint",
    "ReproError",
    "Rewriting",
    "RewritingError",
    "RewritingKind",
    "RewritingResult",
    "RewritingSession",
    "SchemaError",
    "SnapshotError",
    "StorageBackend",
    "StorageError",
    "StorageManager",
    "Substitution",
    "UnionQuery",
    "UnsafeQueryError",
    "UnsupportedFeatureError",
    "Variable",
    "View",
    "ViewChange",
    "ViewRelevanceIndex",
    "ViewSet",
    "WalCorruptionError",
    "WriteAheadLog",
    "certain_answers",
    "choose_best_plan",
    "connect",
    "containment_memo_stats",
    "enumerate_plans",
    "estimate_cost",
    "evaluate",
    "evaluate_boolean",
    "evaluate_program",
    "expand_rewriting",
    "is_complete_rewriting",
    "is_contained",
    "is_contained_rewriting",
    "is_equivalent",
    "is_satisfiable",
    "fingerprint",
    "make_backend",
    "materialize_views",
    "maximally_contained_rewriting",
    "measured_cost",
    "minimize",
    "set_default_executor",
    "parse_atom",
    "parse_database",
    "parse_delta",
    "parse_program",
    "parse_query",
    "parse_view",
    "parse_views",
    "partial_rewritings",
    "rewrite",
    "run_batch",
    "to_datalog",
    "view_is_relevant",
    "view_is_usable",
    "view_is_useful",
    "__version__",
]
