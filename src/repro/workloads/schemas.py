"""Realistic schemas used by the examples and the query-optimization benchmark.

Three scenarios are provided:

* :func:`paper_example` — a citation-database scenario reconstructed from the
  paper's running example (queries about mutually-citing papers on the same
  topic, with views materializing related joins);
* :func:`university_schema` — enrollment/teaching/advising, the classic query
  optimization scenario where views materialize common joins;
* :func:`enterprise_schema` — orders/products/customers, a star-schema-style
  scenario for the partial-rewriting and usefulness experiments.

Each function returns a :class:`Scenario` carrying the query (or queries),
the views, and a deterministic database generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.datalog.parser import parse_program, parse_query, parse_views
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.views import ViewSet
from repro.engine.database import Database


@dataclass
class Scenario:
    """A named scenario: queries, views, and a database generator."""

    name: str
    queries: Dict[str, ConjunctiveQuery]
    views: ViewSet
    make_database: Callable[[int, int], Database]
    description: str = ""

    @property
    def query(self) -> ConjunctiveQuery:
        """The scenario's primary query (first one declared)."""
        return next(iter(self.queries.values()))


# ---------------------------------------------------------------------------
# Paper running example (citation database)
# ---------------------------------------------------------------------------

def paper_example() -> Scenario:
    """The citation-database running example.

    The query asks for pairs of papers that cite each other and are on the
    same topic.  The views materialize (a) mutual citations, (b) same-topic
    pairs, and (c) a join that is *not* usable for an equivalent rewriting
    because it loses the intermediate paper — the paper's vehicle for showing
    that a view mentioning the right relations need not be usable.
    """
    queries = {
        "mutual_same_topic": parse_query(
            "q(X, Y) :- cites(X, Y), cites(Y, X), same_topic(X, Y)."
        ),
        "co_cited": parse_query(
            "q2(X, Y) :- cites(X, Z), cites(Y, Z), same_topic(X, Y)."
        ),
    }
    views = parse_views(
        """
        v_mutual(A, B) :- cites(A, B), cites(B, A).
        v_topic(A, B) :- same_topic(A, B).
        v_chain(A, B) :- cites(A, C), cites(C, B), same_topic(A, C).
        v_cited_by(A) :- cites(A, B).
        """
    )

    def make_database(size: int = 60, seed: int = 0) -> Database:
        rng = random.Random(seed)
        database = Database()
        database.ensure_relation("cites", 2)
        database.ensure_relation("same_topic", 2)
        papers = [f"p{i}" for i in range(size)]
        for _ in range(size * 4):
            a, b = rng.choice(papers), rng.choice(papers)
            if a != b:
                database.add_fact("cites", (a, b))
                if rng.random() < 0.3:
                    database.add_fact("cites", (b, a))
        for _ in range(size * 2):
            a, b = rng.choice(papers), rng.choice(papers)
            database.add_fact("same_topic", (a, b))
            database.add_fact("same_topic", (b, a))
        return database

    return Scenario(
        name="paper-example",
        queries=queries,
        views=views,
        make_database=make_database,
        description="Citation database running example (mutually-citing same-topic papers).",
    )


# ---------------------------------------------------------------------------
# University enrollment
# ---------------------------------------------------------------------------

def university_schema() -> Scenario:
    """Enrollment / teaching / advising scenario for query optimization.

    The primary query finds students enrolled in a course taught by their own
    advisor; the views materialize the enrollment-teaching join and the
    advising relation, so an equivalent rewriting exists and is much cheaper
    than the three-way join over the base relations.
    """
    queries = {
        "advisor_teaches": parse_query(
            "q(S, C) :- enrolled(S, C), teaches(P, C), advises(P, S)."
        ),
        "classmates": parse_query(
            "q_cls(S1, S2) :- enrolled(S1, C), enrolled(S2, C)."
        ),
        "graded_by_advisor": parse_query(
            "q_gr(S, G) :- grade(S, C, G), teaches(P, C), advises(P, S)."
        ),
    }
    views = parse_views(
        """
        v_advisor_class(S, C) :- enrolled(S, C), teaches(P, C), advises(P, S).
        v_enrolled_taught(S, C, P) :- enrolled(S, C), teaches(P, C).
        v_advises(P, S) :- advises(P, S).
        v_enrolled(S, C) :- enrolled(S, C).
        v_grades(S, C, G) :- grade(S, C, G).
        """
    )

    def make_database(size: int = 100, seed: int = 0) -> Database:
        rng = random.Random(seed)
        database = Database()
        students = [f"s{i}" for i in range(size)]
        courses = [f"c{i}" for i in range(max(5, size // 5))]
        professors = [f"prof{i}" for i in range(max(3, size // 10))]
        grades = ["A", "B", "C", "D"]
        database.ensure_relation("enrolled", 2)
        database.ensure_relation("teaches", 2)
        database.ensure_relation("advises", 2)
        database.ensure_relation("grade", 3)
        for course in courses:
            database.add_fact("teaches", (rng.choice(professors), course))
        for student in students:
            database.add_fact("advises", (rng.choice(professors), student))
            for _ in range(rng.randint(1, 4)):
                course = rng.choice(courses)
                database.add_fact("enrolled", (student, course))
                database.add_fact("grade", (student, course, rng.choice(grades)))
        return database

    return Scenario(
        name="university",
        queries=queries,
        views=views,
        make_database=make_database,
        description="Enrollment/teaching/advising; views materialize common joins.",
    )


# ---------------------------------------------------------------------------
# Enterprise sales
# ---------------------------------------------------------------------------

def enterprise_schema() -> Scenario:
    """Orders / products / customers scenario for partial rewritings.

    The primary query joins orders with product and customer dimensions; the
    views cover the order-product join and the customer dimension, so partial
    rewritings (views plus one base relation) are the interesting plans.
    """
    queries = {
        "regional_sales": parse_query(
            "q(O, P, R) :- order(O, P, C), product(P, Cat), customer(C, R)."
        ),
        "category_orders": parse_query(
            "q_cat(O, Cat) :- order(O, P, C), product(P, Cat)."
        ),
    }
    views = parse_views(
        """
        v_order_product(O, P, C, Cat) :- order(O, P, C), product(P, Cat).
        v_customer(C, R) :- customer(C, R).
        v_order(O, P, C) :- order(O, P, C).
        """
    )

    def make_database(size: int = 200, seed: int = 0) -> Database:
        rng = random.Random(seed)
        database = Database()
        products = [f"prod{i}" for i in range(max(5, size // 10))]
        categories = ["books", "music", "games", "tools"]
        customers = [f"cust{i}" for i in range(max(5, size // 5))]
        regions = ["north", "south", "east", "west"]
        database.ensure_relation("order", 3)
        database.ensure_relation("product", 2)
        database.ensure_relation("customer", 2)
        for product in products:
            database.add_fact("product", (product, rng.choice(categories)))
        for customer in customers:
            database.add_fact("customer", (customer, rng.choice(regions)))
        for index in range(size):
            database.add_fact(
                "order", (f"o{index}", rng.choice(products), rng.choice(customers))
            )
        return database

    return Scenario(
        name="enterprise",
        queries=queries,
        views=views,
        make_database=make_database,
        description="Orders/products/customers star schema for partial rewritings.",
    )


ALL_SCENARIOS = {
    "paper-example": paper_example,
    "university": university_schema,
    "enterprise": enterprise_schema,
}
