"""Update workloads: deterministic insert/delete streams for churn experiments.

The read-side generators (:mod:`repro.workloads.generators`) produce the
query/view shapes; this module produces the *write* side — streams of
:class:`~repro.materialize.delta.Delta` batches over the matching schemas —
so incremental maintenance and delta-scoped cache invalidation can be
exercised on the same chain/star/complete workloads the rewriting benchmarks
use.

Streams are deterministic given ``seed``.  Each generated delta is *valid
against the evolving database state*: deletions pick rows that exist at that
point of the stream, insertions pick rows that are absent, so every change is
effective and ``delta.size() / base_size`` is a faithful churn rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryConstructionError
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.views import ViewSet
from repro.engine.database import Database
from repro.materialize.delta import Delta
from repro.workloads.data import random_chain_database, random_database
from repro.workloads.generators import (
    chain_query,
    chain_views,
    complete_query,
    complete_views,
    star_query,
    star_views,
)


@dataclass
class UpdateWorkload:
    """A churn scenario: query + views + base database + a stream of deltas."""

    name: str
    query: ConjunctiveQuery
    views: ViewSet
    database: Database
    deltas: List[Delta]
    #: Free-form parameters recorded for reporting (sizes, churn rate, seed...).
    parameters: Dict[str, object] = field(default_factory=dict)

    def total_churn(self) -> int:
        """Total changed rows across the stream."""
        return sum(delta.size() for delta in self.deltas)


def update_stream(
    database: Database,
    steps: int = 10,
    churn: float = 0.01,
    insert_ratio: float = 0.5,
    relations: Optional[Sequence[str]] = None,
    domain_size: int = 50,
    seed: int = 0,
) -> List[Delta]:
    """A stream of ``steps`` deltas, each changing ``churn`` of the database.

    Every delta mixes insertions and deletions in ``insert_ratio`` proportion
    (0.0 = pure deletes, 1.0 = pure inserts), spread over ``relations``
    (default: all relations of ``database``).  Deletions target rows present
    at that point of the stream; insertions draw fresh rows from the integer
    domain ``0 .. domain_size - 1`` (re-drawing rows that already exist).
    The input database is **not** mutated — the stream simulates the evolving
    state internally.
    """
    if steps < 0:
        raise QueryConstructionError("update stream needs a non-negative step count")
    if not 0.0 <= insert_ratio <= 1.0:
        raise QueryConstructionError("insert_ratio must lie in [0, 1]")
    rng = random.Random(seed)
    names = list(relations) if relations is not None else list(database.relation_names())
    # The evolving state, kept as a set (membership) plus a parallel list
    # (O(1) deterministic random picks via index + swap-pop).
    state: Dict[str, Set[Tuple]] = {}
    pool: Dict[str, List[Tuple]] = {}
    arity: Dict[str, int] = {}
    for name in names:
        relation = database.relation(name)
        if relation is None:
            raise QueryConstructionError(f"database has no relation {name!r}")
        state[name] = set(relation.tuples())
        pool[name] = sorted(state[name], key=repr)
        arity[name] = relation.arity
    base_size = sum(len(rows) for rows in state.values())
    per_delta = max(1, int(base_size * churn))
    deltas: List[Delta] = []
    for _step in range(steps):
        inserted: Dict[str, Set[Tuple]] = {}
        removed: Dict[str, Set[Tuple]] = {}
        for _change in range(per_delta):
            name = rng.choice(names)
            if rng.random() < insert_ratio or not state[name]:
                row = _fresh_row(rng, arity[name], domain_size, state[name])
                if row is None:
                    continue
                state[name].add(row)
                pool[name].append(row)
                # Sequencing-aware fold: the later operation on a row wins,
                # so re-inserting a row removed earlier in this step leaves
                # it on the inserted side only (a no-op insert if the row was
                # present at the start of the step — the effective delta
                # computed at application time drops it).
                removed.get(name, set()).discard(row)
                inserted.setdefault(name, set()).add(row)
            else:
                index = rng.randrange(len(pool[name]))
                row = pool[name][index]
                pool[name][index] = pool[name][-1]
                pool[name].pop()
                state[name].remove(row)
                inserted.get(name, set()).discard(row)
                removed.setdefault(name, set()).add(row)
        deltas.append(Delta(inserted=inserted, removed=removed))
    return deltas


def _fresh_row(
    rng: random.Random, arity: int, domain_size: int, existing: Set[Tuple]
) -> Optional[Tuple]:
    for _attempt in range(50):
        row = tuple(rng.randrange(domain_size) for _ in range(arity))
        if row not in existing:
            return row
    return None  # domain effectively saturated; skip this change


# ---------------------------------------------------------------------------
# Shape-specific front doors (matching the read-side generators)
# ---------------------------------------------------------------------------


def chain_update_workload(
    length: int = 4,
    tuples_per_relation: int = 200,
    domain_size: int = 50,
    steps: int = 10,
    churn: float = 0.01,
    insert_ratio: float = 0.5,
    segment_lengths: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> UpdateWorkload:
    """Churn over a chain schema ``r1 .. rN`` with segment views."""
    database = random_chain_database(
        length, tuples_per_relation=tuples_per_relation, domain_size=domain_size, seed=seed
    )
    deltas = update_stream(
        database,
        steps=steps,
        churn=churn,
        insert_ratio=insert_ratio,
        domain_size=domain_size,
        seed=seed + 1,
    )
    return UpdateWorkload(
        name="chain",
        query=chain_query(length),
        views=chain_views(length, segment_lengths=segment_lengths),
        database=database,
        deltas=deltas,
        parameters={
            "length": length,
            "tuples_per_relation": tuples_per_relation,
            "steps": steps,
            "churn": churn,
            "insert_ratio": insert_ratio,
            "seed": seed,
        },
    )


def star_update_workload(
    arms: int = 4,
    tuples_per_relation: int = 200,
    domain_size: int = 50,
    steps: int = 10,
    churn: float = 0.01,
    insert_ratio: float = 0.5,
    seed: int = 0,
) -> UpdateWorkload:
    """Churn over a star schema ``e1 .. eK`` with arm-subset views."""
    schema = {f"e{i}": 2 for i in range(1, arms + 1)}
    database = random_database(
        schema, tuples_per_relation=tuples_per_relation, domain_size=domain_size, seed=seed
    )
    deltas = update_stream(
        database,
        steps=steps,
        churn=churn,
        insert_ratio=insert_ratio,
        domain_size=domain_size,
        seed=seed + 1,
    )
    return UpdateWorkload(
        name="star",
        query=star_query(arms),
        views=star_views(arms, expose_center=True),
        database=database,
        deltas=deltas,
        parameters={
            "arms": arms,
            "tuples_per_relation": tuples_per_relation,
            "steps": steps,
            "churn": churn,
            "insert_ratio": insert_ratio,
            "seed": seed,
        },
    )


def complete_update_workload(
    size: int = 3,
    num_views: int = 5,
    num_edges: int = 300,
    domain_size: int = 40,
    steps: int = 10,
    churn: float = 0.01,
    insert_ratio: float = 0.5,
    seed: int = 0,
) -> UpdateWorkload:
    """Churn over the single ``edge`` relation of the complete (clique) workload."""
    database = random_database(
        {"edge": 2}, tuples_per_relation=num_edges, domain_size=domain_size, seed=seed
    )
    deltas = update_stream(
        database,
        steps=steps,
        churn=churn,
        insert_ratio=insert_ratio,
        domain_size=domain_size,
        seed=seed + 1,
    )
    return UpdateWorkload(
        name="complete",
        query=complete_query(size),
        views=complete_views(size, num_views=num_views, seed=seed),
        database=database,
        deltas=deltas,
        parameters={
            "size": size,
            "num_views": num_views,
            "num_edges": num_edges,
            "steps": steps,
            "churn": churn,
            "insert_ratio": insert_ratio,
            "seed": seed,
        },
    )


def update_workload(kind: str, **parameters) -> UpdateWorkload:
    """Front door mirroring :func:`repro.workloads.generators.workload`."""
    if kind == "chain":
        return chain_update_workload(**parameters)
    if kind == "star":
        return star_update_workload(**parameters)
    if kind == "complete":
        return complete_update_workload(**parameters)
    raise QueryConstructionError(
        f"unknown update workload kind {kind!r}; expected chain, star or complete"
    )
