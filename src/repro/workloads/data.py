"""Random database instance generators for the engine-level experiments."""

from __future__ import annotations

import random
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.engine.database import Database


def random_database(
    schema: Mapping[str, int],
    tuples_per_relation: int = 100,
    domain_size: int = 50,
    seed: int = 0,
) -> Database:
    """A database with uniformly random tuples.

    ``schema`` maps relation names to arities; values are drawn from the
    integer domain ``0 .. domain_size - 1``.
    """
    rng = random.Random(seed)
    database = Database()
    for name, arity in schema.items():
        database.ensure_relation(name, arity)
        for _ in range(tuples_per_relation):
            database.add_fact(name, tuple(rng.randrange(domain_size) for _ in range(arity)))
    return database


def random_chain_database(
    num_relations: int,
    tuples_per_relation: int = 100,
    domain_size: int = 50,
    seed: int = 0,
    relation_prefix: str = "r",
) -> Database:
    """A database for chain queries where consecutive relations actually join.

    Each relation ``r_i`` is binary; the second column of ``r_i`` and the
    first column of ``r_{i+1}`` are drawn from the same domain, so chain
    queries have non-trivial answers.
    """
    rng = random.Random(seed)
    database = Database()
    for index in range(1, num_relations + 1):
        name = f"{relation_prefix}{index}"
        database.ensure_relation(name, 2)
        for _ in range(tuples_per_relation):
            database.add_fact(
                name, (rng.randrange(domain_size), rng.randrange(domain_size))
            )
    return database


def random_graph_database(
    relation: str = "edge",
    num_nodes: int = 50,
    num_edges: int = 200,
    seed: int = 0,
) -> Database:
    """A random directed graph stored in a single binary relation."""
    rng = random.Random(seed)
    database = Database()
    database.ensure_relation(relation, 2)
    for _ in range(num_edges):
        database.add_fact(relation, (rng.randrange(num_nodes), rng.randrange(num_nodes)))
    return database


def permutation_chain_database(
    num_relations: int = 4,
    facts_per_relation: int = 250_000,
    seed: int = 0,
    relation_prefix: str = "r",
) -> Database:
    """A large chain instance with bounded, predictable join output.

    Each relation ``r_i`` holds exactly ``facts_per_relation`` facts
    ``(x, (a_i * x + b_i) mod n)`` where ``a_i`` is coprime to ``n`` — a
    bijection on ``0 .. n-1``.  Composing bijections is a bijection, so the
    ``k``-way chain query has exactly ``n`` answers regardless of ``k``:
    extents scale to millions of facts without the answer set exploding,
    which is what the parallel-scaling experiment (E16) needs.
    """
    rng = random.Random(seed)
    n = facts_per_relation
    database = Database()
    for index in range(1, num_relations + 1):
        name = f"{relation_prefix}{index}"
        relation = database.ensure_relation(name, 2)
        a = rng.randrange(1, n) | 1  # odd; coprime to any even n
        while _gcd(a, n) != 1:
            a = rng.randrange(1, n)
        b = rng.randrange(n)
        # Bulk-load through the relation: the database is under construction,
        # so nothing version-keyed can be holding a stale snapshot yet.
        relation.add_all((x, (a * x + b) % n) for x in range(n))
    return database


def hub_star_database(
    num_leaves: int = 4,
    facts_per_relation: int = 250_000,
    seed: int = 0,
    relation_prefix: str = "e",
) -> Database:
    """A large star instance: one fact per hub in every leaf relation.

    Each leaf relation ``e_i`` holds ``(h, perm_i(h))`` for every hub
    ``h in 0 .. n-1`` (``perm_i`` an affine bijection), so the ``k``-leaf
    star query has exactly ``n`` answers — million-fact extents with a
    bounded output, the star-shaped counterpart of
    :func:`permutation_chain_database`.
    """
    rng = random.Random(seed)
    n = facts_per_relation
    database = Database()
    for index in range(1, num_leaves + 1):
        name = f"{relation_prefix}{index}"
        relation = database.ensure_relation(name, 2)
        a = rng.randrange(1, n) | 1
        while _gcd(a, n) != 1:
            a = rng.randrange(1, n)
        b = rng.randrange(n)
        relation.add_all((h, (a * h + b) % n) for h in range(n))
    return database


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def scaled_database(base: Database, factor: int, seed: int = 0) -> Database:
    """A database ``factor`` times larger than ``base``.

    New tuples are created by shifting the integer values of existing tuples
    into fresh ranges (string values get a suffix), which preserves the join
    structure of the original data — useful for scale-up experiments where
    selectivities should stay comparable.
    """
    out = base.copy()
    for copy_index in range(1, factor):
        for relation in base:
            for row in relation.tuples():
                shifted = tuple(_shift(value, copy_index) for value in row)
                out.add_fact(relation.name, shifted)
    return out


def _shift(value, copy_index: int):
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value + copy_index * 1_000_000
    if isinstance(value, float):
        return value + copy_index * 1_000_000.0
    return f"{value}#{copy_index}"
