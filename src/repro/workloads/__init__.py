"""Workload generators: queries, views and database instances for experiments.

The PODS'95 paper has no experimental section, so the empirical workloads
follow the de-facto standard used by the follow-up literature on view-based
rewriting (bucket / MiniCon / inverse rules): **chain**, **star** and
**complete** (clique) queries with views drawn from the same family, plus
random-database generators and a handful of realistic schemas used by the
examples and the query-optimization benchmark.
"""

from repro.workloads.generators import (
    WorkloadSpec,
    chain_query,
    chain_views,
    complete_query,
    complete_views,
    random_query,
    random_views,
    star_query,
    star_views,
    workload,
)
from repro.workloads.data import (
    hub_star_database,
    permutation_chain_database,
    random_database,
    random_chain_database,
    scaled_database,
)
from repro.workloads.schemas import (
    enterprise_schema,
    paper_example,
    university_schema,
)
from repro.workloads.updates import (
    UpdateWorkload,
    chain_update_workload,
    complete_update_workload,
    star_update_workload,
    update_stream,
    update_workload,
)

__all__ = [
    "UpdateWorkload",
    "WorkloadSpec",
    "chain_query",
    "chain_update_workload",
    "chain_views",
    "complete_query",
    "complete_update_workload",
    "complete_views",
    "enterprise_schema",
    "hub_star_database",
    "paper_example",
    "permutation_chain_database",
    "random_chain_database",
    "random_database",
    "random_query",
    "random_views",
    "scaled_database",
    "star_query",
    "star_update_workload",
    "star_views",
    "university_schema",
    "update_stream",
    "update_workload",
    "workload",
]
