"""Synthetic query/view generators (chain, star, complete, random).

All generators are deterministic given their ``seed`` argument, so benchmarks
and tests are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryConstructionError
from repro.datalog.atoms import Atom
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.datalog.views import View, ViewSet


@dataclass
class WorkloadSpec:
    """A generated workload: one query plus the views available for rewriting."""

    name: str
    query: ConjunctiveQuery
    views: ViewSet
    #: Free-form parameters recorded for reporting (length, #views, seed, ...).
    parameters: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        lines = [f"# workload {self.name} {self.parameters}", str(self.query)]
        lines.extend(str(v) for v in self.views)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Chain queries
# ---------------------------------------------------------------------------

def _chain_vars(length: int) -> List[Variable]:
    return [Variable(f"X{i}") for i in range(length + 1)]


def chain_query(
    length: int,
    name: str = "q",
    relation_prefix: str = "r",
    distinct_relations: bool = True,
) -> ConjunctiveQuery:
    """A chain query of the given length.

    ``q(X0, Xn) :- r1(X0, X1), r2(X1, X2), ..., rn(X(n-1), Xn)``

    With ``distinct_relations=False`` every subgoal uses the same relation
    ``r``, which makes the rewriting problem considerably harder (every view
    subgoal unifies with every query subgoal).
    """
    if length < 1:
        raise QueryConstructionError("chain length must be at least 1")
    variables = _chain_vars(length)
    body = []
    for i in range(length):
        relation = f"{relation_prefix}{i + 1}" if distinct_relations else relation_prefix
        body.append(Atom(relation, [variables[i], variables[i + 1]]))
    head = Atom(name, [variables[0], variables[length]])
    return ConjunctiveQuery(head, body)


def chain_views(
    length: int,
    segment_lengths: Optional[Sequence[int]] = None,
    relation_prefix: str = "r",
    distinct_relations: bool = True,
    name_prefix: str = "v",
    expose_endpoints_only: bool = True,
) -> ViewSet:
    """Views over contiguous segments of a chain of the given length.

    By default one view is created for every contiguous segment of every
    length in ``segment_lengths`` (default: all lengths from 1 to ``length``).
    Each view's head exposes the segment's endpoints; with
    ``expose_endpoints_only=False`` all the segment's variables are exposed,
    which makes many more rewritings possible.
    """
    if segment_lengths is None:
        segment_lengths = range(1, length + 1)
    variables = _chain_vars(length)
    views: List[View] = []
    for segment_length in segment_lengths:
        if segment_length < 1 or segment_length > length:
            continue
        for start in range(0, length - segment_length + 1):
            body = []
            for offset in range(segment_length):
                i = start + offset
                relation = f"{relation_prefix}{i + 1}" if distinct_relations else relation_prefix
                body.append(Atom(relation, [variables[i], variables[i + 1]]))
            if expose_endpoints_only:
                head_args: List[Variable] = [variables[start], variables[start + segment_length]]
            else:
                head_args = variables[start: start + segment_length + 1]
            view_name = f"{name_prefix}_{start}_{segment_length}"
            definition = ConjunctiveQuery(Atom(view_name, head_args), body)
            views.append(View(view_name, definition))
    return ViewSet(views)


# ---------------------------------------------------------------------------
# Star queries
# ---------------------------------------------------------------------------

def star_query(
    arms: int,
    name: str = "q",
    relation_prefix: str = "e",
    distinct_relations: bool = True,
    expose_center: bool = False,
) -> ConjunctiveQuery:
    """A star query: ``arms`` subgoals sharing a central join variable.

    ``q(X1, ..., Xk) :- e1(C, X1), e2(C, X2), ..., ek(C, Xk)``

    The leaves are distinguished; the centre ``C`` is existential unless
    ``expose_center`` is set.
    """
    if arms < 1:
        raise QueryConstructionError("a star query needs at least one arm")
    center = Variable("C")
    leaves = [Variable(f"X{i}") for i in range(1, arms + 1)]
    body = []
    for i, leaf in enumerate(leaves):
        relation = f"{relation_prefix}{i + 1}" if distinct_relations else relation_prefix
        body.append(Atom(relation, [center, leaf]))
    head_args: List[Variable] = ([center] if expose_center else []) + leaves
    return ConjunctiveQuery(Atom(name, head_args), body)


def star_views(
    arms: int,
    arm_subsets: Optional[Sequence[Sequence[int]]] = None,
    relation_prefix: str = "e",
    distinct_relations: bool = True,
    name_prefix: str = "v",
    expose_center: bool = False,
) -> ViewSet:
    """Views covering subsets of a star query's arms.

    ``arm_subsets`` lists the 1-based arm indices each view covers; the
    default creates one single-arm view per arm plus one view per adjacent
    pair of arms.
    """
    if arm_subsets is None:
        arm_subsets = [[i] for i in range(1, arms + 1)] + [
            [i, i + 1] for i in range(1, arms)
        ]
    center = Variable("C")
    views: List[View] = []
    for subset in arm_subsets:
        body = []
        leaves = []
        for arm in subset:
            if arm < 1 or arm > arms:
                raise QueryConstructionError(f"arm index {arm} out of range 1..{arms}")
            relation = f"{relation_prefix}{arm}" if distinct_relations else relation_prefix
            leaf = Variable(f"X{arm}")
            leaves.append(leaf)
            body.append(Atom(relation, [center, leaf]))
        head_args: List[Variable] = ([center] if expose_center else []) + leaves
        view_name = f"{name_prefix}_{'_'.join(str(a) for a in subset)}"
        views.append(View(view_name, ConjunctiveQuery(Atom(view_name, head_args), body)))
    return ViewSet(views)


# ---------------------------------------------------------------------------
# Complete (clique) queries
# ---------------------------------------------------------------------------

def complete_query(
    size: int,
    name: str = "q",
    relation: str = "edge",
) -> ConjunctiveQuery:
    """A complete query: one subgoal per ordered pair of distinct variables.

    ``q(X1, ..., Xk) :- edge(X1, X2), edge(X1, X3), ..., edge(X(k-1), Xk)``

    Every subgoal uses the same relation, so every view subgoal unifies with
    every query subgoal — the hardest shape for rewriting algorithms.
    """
    if size < 2:
        raise QueryConstructionError("a complete query needs at least two variables")
    variables = [Variable(f"X{i}") for i in range(1, size + 1)]
    body = []
    for i in range(size):
        for j in range(i + 1, size):
            body.append(Atom(relation, [variables[i], variables[j]]))
    return ConjunctiveQuery(Atom(name, variables), body)


def complete_views(
    size: int,
    num_views: int,
    view_size: int = 2,
    relation: str = "edge",
    name_prefix: str = "v",
    seed: int = 0,
) -> ViewSet:
    """Random clique-shaped views over the same edge relation.

    Each view is a complete query over ``view_size`` variables, all of which
    are distinguished (so the view can always participate in a rewriting).
    """
    rng = random.Random(seed)
    views: List[View] = []
    for index in range(num_views):
        variables = [Variable(f"Y{i}") for i in range(1, view_size + 1)]
        body = []
        for i in range(view_size):
            for j in range(i + 1, view_size):
                body.append(Atom(relation, [variables[i], variables[j]]))
        # A random subset of distinguished variables (at least two).
        exposed_count = rng.randint(2, view_size)
        exposed = variables[:exposed_count]
        view_name = f"{name_prefix}{index + 1}"
        views.append(View(view_name, ConjunctiveQuery(Atom(view_name, exposed), body)))
    return ViewSet(views)


# ---------------------------------------------------------------------------
# Random queries and views
# ---------------------------------------------------------------------------

def random_query(
    num_subgoals: int,
    num_relations: int = 5,
    arity: int = 2,
    num_variables: Optional[int] = None,
    num_distinguished: int = 2,
    name: str = "q",
    seed: int = 0,
) -> ConjunctiveQuery:
    """A random connected conjunctive query.

    Subgoals pick relations uniformly; arguments pick variables uniformly from
    a pool of ``num_variables`` (default ``num_subgoals + 1``).  The generator
    re-draws until the query's join graph is connected, so the query cannot be
    split into independent sub-queries.
    """
    rng = random.Random(seed)
    pool_size = num_variables if num_variables is not None else num_subgoals + 1
    variables = [Variable(f"X{i}") for i in range(1, pool_size + 1)]
    for _attempt in range(1000):
        body = []
        for _ in range(num_subgoals):
            relation = f"r{rng.randint(1, num_relations)}"
            args = [rng.choice(variables) for _ in range(arity)]
            body.append(Atom(relation, args))
        used = []
        for atom in body:
            for var in atom.variables():
                if var not in used:
                    used.append(var)
        if not used:
            continue
        if not _connected(body):
            continue
        distinguished = used[: max(1, min(num_distinguished, len(used)))]
        return ConjunctiveQuery(Atom(name, distinguished), body)
    raise QueryConstructionError("failed to generate a connected random query")


def random_views(
    num_views: int,
    num_subgoals: int = 3,
    num_relations: int = 5,
    arity: int = 2,
    num_distinguished: int = 2,
    name_prefix: str = "v",
    seed: int = 0,
) -> ViewSet:
    """A set of random views drawn from the same distribution as :func:`random_query`."""
    views: List[View] = []
    for index in range(num_views):
        query = random_query(
            num_subgoals=num_subgoals,
            num_relations=num_relations,
            arity=arity,
            num_distinguished=num_distinguished,
            name=f"{name_prefix}{index + 1}",
            seed=seed * 7919 + index,
        )
        views.append(View(query.name, query))
    return ViewSet(views)


def _connected(body: Sequence[Atom]) -> bool:
    """Whether the join graph (subgoals as nodes, shared variables as edges) is connected."""
    if len(body) <= 1:
        return True
    adjacency: Dict[int, set] = {i: set() for i in range(len(body))}
    for i in range(len(body)):
        for j in range(i + 1, len(body)):
            if set(body[i].variables()) & set(body[j].variables()):
                adjacency[i].add(j)
                adjacency[j].add(i)
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return len(seen) == len(body)


# ---------------------------------------------------------------------------
# Front door
# ---------------------------------------------------------------------------

def workload(kind: str, **parameters) -> WorkloadSpec:
    """Build a named workload: ``"chain"``, ``"star"``, ``"complete"`` or ``"random"``.

    Parameters are forwarded to the underlying generators; the most useful are
    ``length``/``arms``/``size`` (query shape) and ``num_views``/``seed``.
    """
    if kind == "chain":
        length = int(parameters.get("length", 4))
        distinct = bool(parameters.get("distinct_relations", True))
        query = chain_query(length, distinct_relations=distinct)
        segment_lengths = parameters.get("segment_lengths")
        views = chain_views(
            length,
            segment_lengths=segment_lengths,
            distinct_relations=distinct,
            expose_endpoints_only=bool(parameters.get("expose_endpoints_only", True)),
        )
        num_views = parameters.get("num_views")
        if num_views is not None:
            views = ViewSet(list(views)[: int(num_views)])
        return WorkloadSpec("chain", query, views, dict(parameters, length=length))
    if kind == "star":
        arms = int(parameters.get("arms", 4))
        query = star_query(arms)
        views = star_views(arms, arm_subsets=parameters.get("arm_subsets"))
        num_views = parameters.get("num_views")
        if num_views is not None:
            views = ViewSet(list(views)[: int(num_views)])
        return WorkloadSpec("star", query, views, dict(parameters, arms=arms))
    if kind == "complete":
        size = int(parameters.get("size", 3))
        query = complete_query(size)
        views = complete_views(
            size,
            num_views=int(parameters.get("num_views", 5)),
            view_size=int(parameters.get("view_size", 2)),
            seed=int(parameters.get("seed", 0)),
        )
        return WorkloadSpec("complete", query, views, dict(parameters, size=size))
    if kind == "random":
        query = random_query(
            num_subgoals=int(parameters.get("num_subgoals", 4)),
            num_relations=int(parameters.get("num_relations", 5)),
            seed=int(parameters.get("seed", 0)),
        )
        views = random_views(
            num_views=int(parameters.get("num_views", 10)),
            num_subgoals=int(parameters.get("view_subgoals", 3)),
            num_relations=int(parameters.get("num_relations", 5)),
            seed=int(parameters.get("seed", 0)) + 1,
        )
        return WorkloadSpec("random", query, views, dict(parameters))
    raise QueryConstructionError(
        f"unknown workload kind {kind!r}; expected chain, star, complete or random"
    )
