"""The inverse-rules rewriting algorithm.

The inverse-rules approach (Duschka & Genesereth) constructs, for every view

``v(X̄) :- p1(ū1), ..., pk(ūk)``

one *inverse rule* per body subgoal:

``pi(ūi') :- v(X̄)``

where each existential variable ``Y`` of the view is replaced, in ``ūi'``, by
the Skolem function term ``f_{v,Y}(X̄)`` — a name for the unknown witness that
must have existed for the view tuple to be present.  The inverse rules
together with the original query form a datalog program; evaluated over the
materialized view instance it reconstructs (a sound approximation of) the base
database and re-runs the query, and the answers free of Skolem values are
exactly the certain answers.  As a rewriting it is maximally contained.

The program produced here is evaluated by :mod:`repro.engine.datalog`; the
pair therefore provides an end-to-end, executable maximally-contained plan
against which the bucket/MiniCon unions can be compared (benchmark E9).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import UnsupportedFeatureError
from repro.datalog.atoms import Atom
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.terms import FunctionTerm, Term, Variable
from repro.datalog.views import View, ViewSet
from repro.engine.database import Database
from repro.engine.datalog import DatalogProgram, evaluate_program
from repro.engine.evaluate import evaluate
from repro.engine.relation import contains_skolem
from repro.rewriting.plans import Rewriting, RewritingKind, RewritingResult


def inverse_rules(view: View) -> List[ConjunctiveQuery]:
    """The inverse rules of a single view."""
    if view.definition.comparisons:
        raise UnsupportedFeatureError(
            f"inverse rules are only defined for views without comparison subgoals "
            f"(view {view.name} has {len(view.definition.comparisons)})"
        )
    head_args = view.head.args
    existential = set(view.existential_variables())
    replacement: Dict[Variable, Term] = {
        var: FunctionTerm(f"f_{view.name}_{var.name}", head_args) for var in existential
    }

    def transform(term: Term) -> Term:
        if isinstance(term, Variable) and term in replacement:
            return replacement[term]
        return term

    rules: List[ConjunctiveQuery] = []
    body = (Atom(view.name, head_args),)
    for subgoal in view.body:
        head = Atom(subgoal.predicate, tuple(transform(t) for t in subgoal.args))
        rules.append(ConjunctiveQuery(head, body, require_safe=False))
    return rules


def inverse_rules_program(
    query: ConjunctiveQuery, views: "ViewSet | Iterable[View]"
) -> DatalogProgram:
    """The full inverse-rules program: inverse rules of every view plus the query."""
    view_set = views if isinstance(views, ViewSet) else ViewSet(list(views))
    program = DatalogProgram(outputs=[query.name])
    for view in view_set:
        for rule in inverse_rules(view):
            program.add_rule(rule)
    program.add_rule(query)
    return program


class InverseRulesRewriter:
    """Wraps the inverse-rules construction in the common rewriter interface.

    Unlike the other algorithms, the "rewriting" here is a datalog program
    rather than a union of conjunctive queries over the views, so the
    :class:`Rewriting` it reports carries the query itself and the program is
    exposed separately through :meth:`program`.
    """

    algorithm_name = "inverse-rules"

    def __init__(self, views: "ViewSet | Iterable[View]"):
        self.views = views if isinstance(views, ViewSet) else ViewSet(list(views))

    def program(self, query: ConjunctiveQuery) -> DatalogProgram:
        """The datalog program implementing the maximally-contained rewriting."""
        return inverse_rules_program(query, self.views)

    def rewrite(self, query: ConjunctiveQuery) -> RewritingResult:
        result = RewritingResult(query=query, views=self.views, algorithm=self.algorithm_name)
        program = self.program(query)
        result.candidates_examined = len(program)
        result.rewritings.append(
            Rewriting(
                query=query,
                kind=RewritingKind.MAXIMALLY_CONTAINED,
                algorithm=self.algorithm_name,
                views_used=tuple(v.name for v in self.views),
                expansion=None,
            )
        )
        return result

    def certain_answers(
        self, query: ConjunctiveQuery, view_instance: Database
    ) -> frozenset:
        """Evaluate the program over a view instance and keep Skolem-free answers."""
        program = self.program(query)
        derived = evaluate_program(program, view_instance)
        answers = evaluate(query.with_name(query.name), derived)
        return frozenset(row for row in answers if not contains_skolem(row))
