"""View-based query rewriting — the paper's primary contribution.

Given a conjunctive query ``Q`` and a set of views ``V``, the package answers
the questions posed by the PODS'95 paper:

* Does ``Q`` have a **complete (equivalent) rewriting** using only the views?
  (:mod:`repro.rewriting.exhaustive` implements the paper's bounded search;
  :mod:`repro.rewriting.bucket` and :mod:`repro.rewriting.minicon` implement
  the practical algorithms from the follow-up literature.)
* Is a particular view **usable** in some rewriting, and is it **useful**
  (cost-reducing) for answering the query?
  (:mod:`repro.rewriting.usability`)
* When no equivalent rewriting exists, what is the **maximally-contained
  rewriting**, and what are the **certain answers** obtainable from the view
  instances?  (:mod:`repro.rewriting.contained`,
  :mod:`repro.rewriting.inverse_rules`, :mod:`repro.rewriting.certain`)
* Can the query be answered more cheaply by a **partial rewriting** that
  mixes views with base relations?  (:mod:`repro.rewriting.partial`)

All algorithms verify their outputs through the containment machinery: a
rewriting is only reported as *complete* when the expansion of the rewriting
is provably equivalent to the query.
"""

from repro.rewriting.plans import Rewriting, RewritingKind, RewritingResult
from repro.rewriting.expansion import expand_atom, expand_query, expand_rewriting
from repro.rewriting.verify import is_complete_rewriting, is_contained_rewriting
from repro.rewriting.candidates import candidate_view_atoms
from repro.rewriting.exhaustive import ExhaustiveRewriter
from repro.rewriting.bucket import Bucket, BucketRewriter
from repro.rewriting.minicon import MCD, MiniConRewriter
from repro.rewriting.inverse_rules import InverseRulesRewriter, inverse_rules
from repro.rewriting.contained import maximally_contained_rewriting
from repro.rewriting.certain import certain_answers
from repro.rewriting.usability import view_is_relevant, view_is_usable, view_is_useful
from repro.rewriting.partial import partial_rewritings
from repro.rewriting.optimizer import OptimizationResult, PlanChoice, choose_best_plan, enumerate_plans
from repro.rewriting.rewriter import rewrite

__all__ = [
    "Bucket",
    "BucketRewriter",
    "ExhaustiveRewriter",
    "InverseRulesRewriter",
    "MCD",
    "MiniConRewriter",
    "OptimizationResult",
    "PlanChoice",
    "Rewriting",
    "RewritingKind",
    "RewritingResult",
    "candidate_view_atoms",
    "certain_answers",
    "choose_best_plan",
    "enumerate_plans",
    "expand_atom",
    "expand_query",
    "expand_rewriting",
    "inverse_rules",
    "is_complete_rewriting",
    "is_contained_rewriting",
    "maximally_contained_rewriting",
    "partial_rewritings",
    "rewrite",
    "view_is_relevant",
    "view_is_usable",
    "view_is_useful",
]
