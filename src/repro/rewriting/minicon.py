"""The MiniCon algorithm for view-based rewriting.

MiniCon improves on the bucket algorithm by reasoning, at candidate-creation
time, about *how* a view subgoal can participate in a rewriting rather than
merely *whether* it unifies with a query subgoal.  The unit of work is the
MiniCon description (MCD): a view together with

* the set of query subgoals it covers,
* the induced identifications among query variables (and bindings of query
  variables to constants), and
* the view atom — over query terms plus fresh variables — that represents the
  view's contribution to a rewriting.

MCD formation enforces the two MiniCon properties:

* **C1** — every distinguished (head) variable of the query occurring in a
  covered subgoal must land on a distinguished variable of the view (or on a
  constant), otherwise the value cannot be retrieved from the view;
* **C2** — if a query variable lands on an *existential* variable of the view,
  then every query subgoal mentioning that variable must be covered by the
  same MCD (the join on that variable can only happen inside the view).

The combination phase then assembles rewritings from sets of MCDs whose
covered subgoals partition the query body; by construction these rewritings
are contained in the query for comparison-free queries, so no per-candidate
containment check is required (the implementation still verifies by default,
and the E10 ablation measures the saving of switching verification off).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import UnsupportedFeatureError
from repro.datalog.atoms import Atom, Comparison
from repro.datalog.freshen import FreshVariableFactory
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.substitution import Substitution, unify_atoms
from repro.datalog.terms import Constant, Term, Variable
from repro.datalog.views import View, ViewSet
from repro.containment.containment import is_contained
from repro.rewriting.expansion import cached_expand_query, expand_query
from repro.rewriting.plans import Rewriting, RewritingKind, RewritingResult
from repro.rewriting.verify import is_complete_rewriting, is_contained_rewriting


#: A slot of an MCD atom: how one view head argument is rendered in a rewriting.
#: ``("const", value)`` — a constant; ``("qvar", Variable)`` — a query variable;
#: ``("fresh", key)`` — a fresh variable private to the MCD (keyed so repeated
#: occurrences of the same view variable share the fresh variable).
Slot = Tuple[str, object]


@dataclass(frozen=True)
class MCD:
    """A MiniCon description: one view's potential contribution to a rewriting."""

    #: Name of the view.
    view: str
    #: Indices (into the query body) of the subgoals covered by this MCD.
    covered: FrozenSet[int]
    #: Rendering of the view's head arguments (see :data:`Slot`).
    slots: Tuple[Slot, ...]
    #: Pairs of query variables this MCD forces to be equal.
    merged_variables: Tuple[Tuple[Variable, Variable], ...] = ()
    #: Query variables this MCD forces to equal a constant.
    constant_bindings: Tuple[Tuple[Variable, Constant], ...] = ()

    def __str__(self) -> str:
        rendered = ", ".join(
            str(value) if kind != "fresh" else f"_{value}" for kind, value in self.slots
        )
        return f"MCD({self.view}({rendered}) covers {sorted(self.covered)})"


class MiniConRewriter:
    """The MiniCon algorithm.

    Parameters
    ----------
    views:
        The views available for rewriting.
    verify_rewritings:
        When true (default), every assembled rewriting is verified by
        expansion before being reported.  MiniCon's guarantee makes the check
        redundant for comparison-free queries and views; the flag exists so
        the ablation benchmark can measure its cost, and verification is
        forced on when comparisons are present (where it is required for
        soundness).
    max_rewritings:
        Optional cap on the number of rewritings assembled.
    candidate_filter:
        Optional ``(query, view) -> bool`` predicate consulted before MCD
        formation for each view; views it rejects are skipped entirely.  Used
        by the serving layer's view-relevance index to prune views that cannot
        contribute (see :mod:`repro.service.view_index`).
    reference_pipeline:
        When true, candidates are verified and classified the way the seed
        implementation did — soundness, completeness and the result record
        each unfold the candidate separately through :mod:`verify` — instead
        of sharing one expansion and one containment search per direction.
        Combined with the naive search and a disabled memo this reproduces
        the pre-overhaul cold path; it exists solely as the baseline of the
        E14 cold-rewriting benchmark.  ``None`` (the default) falls back to
        the class attribute :attr:`default_reference_pipeline`, which the
        benchmark flips so rewriters constructed deep inside ``rewrite()``
        follow suit.
    """

    algorithm_name = "minicon"

    #: Class-wide default for ``reference_pipeline`` (see above).
    default_reference_pipeline = False

    def __init__(
        self,
        views: "ViewSet | Iterable[View]",
        verify_rewritings: bool = True,
        max_rewritings: Optional[int] = None,
        candidate_filter: Optional["Callable[[ConjunctiveQuery, View], bool]"] = None,
        reference_pipeline: Optional[bool] = None,
    ):
        self.views = views if isinstance(views, ViewSet) else ViewSet(list(views))
        self.verify_rewritings = verify_rewritings
        self.max_rewritings = max_rewritings
        self.candidate_filter = candidate_filter
        self.reference_pipeline = (
            MiniConRewriter.default_reference_pipeline
            if reference_pipeline is None
            else reference_pipeline
        )

    # -- phase 1: MCD formation -----------------------------------------------
    def form_mcds(self, query: ConjunctiveQuery) -> List[MCD]:
        """All (minimal) MiniCon descriptions for the query over the views."""
        mcds: List[MCD] = []
        seen: set = set()
        for view in self.views:
            if self.candidate_filter is not None and not self.candidate_filter(query, view):
                continue
            definition = view.definition.freshened_against(query)
            for index, subgoal in enumerate(query.body):
                for view_subgoal in definition.body:
                    if view_subgoal.signature != subgoal.signature:
                        continue
                    seed = unify_atoms(subgoal, view_subgoal)
                    if seed is None:
                        continue
                    for theta, covered in self._close(query, definition, seed, frozenset({index})):
                        mcd = self._build_mcd(query, view, definition, theta, covered)
                        if mcd is None:
                            continue
                        key = (mcd.view, mcd.covered, mcd.slots, mcd.merged_variables,
                               mcd.constant_bindings)
                        if key not in seen:
                            seen.add(key)
                            mcds.append(mcd)
        return mcds

    def _close(
        self,
        query: ConjunctiveQuery,
        definition: ConjunctiveQuery,
        theta: Substitution,
        covered: FrozenSet[int],
    ) -> List[Tuple[Substitution, FrozenSet[int]]]:
        """Extend coverage until property C2 holds (branching over view subgoal choices)."""
        head_images = {theta.apply_term(a) for a in definition.head.args}
        violation: Optional[Tuple[Variable, int]] = None
        for index in sorted(covered):
            for var in query.body[index].variables():
                image = theta.apply_term(var)
                if isinstance(image, Constant) or image in head_images:
                    continue
                # `var` lands on an existential view variable: C2 requires every
                # query subgoal mentioning it to be covered here as well.
                for other_index, other in enumerate(query.body):
                    if other_index in covered:
                        continue
                    if var in other.variables():
                        violation = (var, other_index)
                        break
                if violation:
                    break
            if violation:
                break
        if violation is None:
            return [(theta, covered)]
        _, missing_index = violation
        closures: List[Tuple[Substitution, FrozenSet[int]]] = []
        target = query.body[missing_index]
        for view_subgoal in definition.body:
            if view_subgoal.signature != target.signature:
                continue
            extended = unify_atoms(target, view_subgoal, theta)
            if extended is None:
                continue
            closures.extend(
                self._close(query, definition, extended, covered | {missing_index})
            )
        return closures

    def _build_mcd(
        self,
        query: ConjunctiveQuery,
        view: View,
        definition: ConjunctiveQuery,
        theta: Substitution,
        covered: FrozenSet[int],
    ) -> Optional[MCD]:
        """Check validity and C1, then package the closure as an MCD (or return ``None``)."""
        # A rewriting can only enforce equalities between the view's
        # *distinguished* variables (by repeating an argument or using a
        # constant in the view atom).  If the unification needs two view
        # variables to coincide and either of them is existential — or needs an
        # existential view variable to equal a constant — no view tuple is
        # guaranteed to have a matching derivation, so the description is
        # invalid.
        view_head_vars = set(definition.head.variables())
        existential_view_vars = {
            v for v in definition.variables() if v not in view_head_vars
        }
        merged_view_vars: Dict[Term, List[Variable]] = {}
        for view_var in definition.variables():
            image = theta.apply_term(view_var)
            if isinstance(image, Constant):
                if view_var in existential_view_vars:
                    return None
                continue
            merged_view_vars.setdefault(image, []).append(view_var)
        for group in merged_view_vars.values():
            if len(group) > 1 and any(v in existential_view_vars for v in group):
                return None

        head_images = {theta.apply_term(a) for a in definition.head.args}
        query_head_vars = set(query.head.variables())

        covered_vars: List[Variable] = []
        for index in sorted(covered):
            for var in query.body[index].variables():
                if var not in covered_vars:
                    covered_vars.append(var)

        # C1: distinguished query variables must be retrievable from the view.
        for var in covered_vars:
            if var not in query_head_vars:
                continue
            image = theta.apply_term(var)
            if isinstance(image, Constant):
                continue
            if image not in head_images:
                return None

        # Group covered query variables by their image (equivalence classes).
        image_to_qvars: Dict[Term, List[Variable]] = {}
        constant_bindings: List[Tuple[Variable, Constant]] = []
        for var in covered_vars:
            image = theta.apply_term(var)
            if isinstance(image, Constant):
                constant_bindings.append((var, image))
            else:
                image_to_qvars.setdefault(image, []).append(var)
        merged: List[Tuple[Variable, Variable]] = []
        for group in image_to_qvars.values():
            anchor = group[0]
            for other in group[1:]:
                merged.append((anchor, other))

        # Render the view head arguments as slots.
        slots: List[Slot] = []
        fresh_keys: Dict[Term, int] = {}
        for head_arg in definition.head.args:
            image = theta.apply_term(head_arg)
            if isinstance(image, Constant):
                slots.append(("const", image))
            elif image in image_to_qvars:
                slots.append(("qvar", image_to_qvars[image][0]))
            else:
                key = fresh_keys.setdefault(image, len(fresh_keys))
                slots.append(("fresh", key))
        return MCD(
            view=view.name,
            covered=covered,
            slots=tuple(slots),
            merged_variables=tuple(merged),
            constant_bindings=tuple(constant_bindings),
        )

    # -- phase 2: combination -------------------------------------------------------
    def combine(
        self, query: ConjunctiveQuery, mcds: Sequence[MCD]
    ) -> Iterator[ConjunctiveQuery]:
        """Assemble rewritings from MCD sets that partition the query subgoals."""
        all_indices = frozenset(range(len(query.body)))
        by_first_index: Dict[int, List[MCD]] = {}
        for mcd in mcds:
            by_first_index.setdefault(min(mcd.covered), []).append(mcd)

        def search(uncovered: FrozenSet[int], chosen: List[MCD]) -> Iterator[Tuple[MCD, ...]]:
            if not uncovered:
                yield tuple(chosen)
                return
            pivot = min(uncovered)
            for mcd in by_first_index.get(pivot, []):
                if mcd.covered <= uncovered:
                    chosen.append(mcd)
                    yield from search(uncovered - mcd.covered, chosen)
                    chosen.pop()

        # One fresh-variable factory serves every combination: rebuilding the
        # reserved-name set per candidate was a measurable share of the cold
        # path, and fresh names only need to avoid the query's variables and
        # each other within a candidate (which a shared factory preserves).
        factory = FreshVariableFactory(
            reserved=[v.name for v in query.variables()], prefix="_MC"
        )
        for combination in search(all_indices, []):
            rewriting = self._assemble(query, combination, factory=factory)
            if rewriting is not None:
                yield rewriting

    def _assemble(
        self,
        query: ConjunctiveQuery,
        combination: Tuple[MCD, ...],
        base_indices: Iterable[int] = (),
        factory: Optional[FreshVariableFactory] = None,
    ) -> Optional[ConjunctiveQuery]:
        """Build the conjunctive rewriting for one MCD combination.

        ``base_indices`` lists query subgoals to keep as base-relation atoms in
        the rewriting body (used by partial rewritings, where the views cover
        only part of the query).  ``factory`` optionally supplies a shared
        fresh-variable factory (reserved against the query's variables).
        """
        # Union-find over query variables induced by the MCDs' merges.
        parent: Dict[Variable, Variable] = {}

        def find(var: Variable) -> Variable:
            parent.setdefault(var, var)
            while parent[var] != var:
                parent[var] = parent[parent[var]]
                var = parent[var]
            return var

        def union(left: Variable, right: Variable) -> None:
            left_root, right_root = find(left), find(right)
            if left_root != right_root:
                parent[right_root] = left_root

        constants: Dict[Variable, Constant] = {}
        for mcd in combination:
            for left, right in mcd.merged_variables:
                union(left, right)
            for var, constant in mcd.constant_bindings:
                constants[find(var)] = constant

        def resolve(term: Term) -> Term:
            if isinstance(term, Variable):
                root = find(term)
                return constants.get(root, root)
            return term

        # Conflicting constant bindings make the combination inconsistent.
        for var, constant in list(constants.items()):
            root = find(var)
            existing = constants.get(root)
            if existing is not None and existing != constant:
                return None
            constants[root] = constant

        if factory is None:
            factory = FreshVariableFactory(
                reserved=[v.name for v in query.variables()], prefix="_MC"
            )
        body: List[Atom] = []
        for mcd_index, mcd in enumerate(combination):
            fresh_cache: Dict[int, Variable] = {}
            args: List[Term] = []
            for kind, value in mcd.slots:
                if kind == "const":
                    args.append(value)  # type: ignore[arg-type]
                elif kind == "qvar":
                    args.append(resolve(value))  # type: ignore[arg-type]
                else:
                    key = int(value)  # type: ignore[arg-type]
                    if key not in fresh_cache:
                        fresh_cache[key] = factory.fresh(f"_M{mcd_index}_{key}")
                    args.append(fresh_cache[key])
            atom = Atom(mcd.view, args)
            if atom not in body:
                body.append(atom)

        for index in sorted(set(base_indices)):
            base_atom = query.body[index]
            resolved = base_atom.with_args(tuple(resolve(t) for t in base_atom.args))
            if resolved not in body:
                body.append(resolved)

        head = query.head.with_args(tuple(resolve(t) for t in query.head.args))
        visible = set()
        for atom in body:
            visible.update(atom.variables())
        comparisons = tuple(
            c.canonical()
            for c in (
                Comparison(resolve(c.left), c.op, resolve(c.right))
                for c in query.comparisons
            )
            if all(v in visible for v in c.variables())
        )
        return ConjunctiveQuery(head, body, comparisons, require_safe=False)

    # -- main entry point ------------------------------------------------------------
    def rewrite(self, query: ConjunctiveQuery) -> RewritingResult:
        """Run MCD formation and combination; return every assembled rewriting."""
        result = RewritingResult(query=query, views=self.views, algorithm=self.algorithm_name)
        verify = self.verify_rewritings
        has_comparisons = bool(query.comparisons) or any(
            v.definition.comparisons for v in self.views
        )
        if has_comparisons:
            verify = True  # verification is required for soundness with comparisons
        mcds = self.form_mcds(query)
        if not mcds:
            return result
        # Candidate dedup (up to renaming / subgoal order).  The expensive
        # canonical form is only computed when a cheap renaming-invariant
        # key — head signature and constants, body predicate multiset,
        # comparison operator multiset — collides; for typical workloads
        # most combinations are already distinct at the invariant level, so
        # most candidates never canonicalize at all.
        seen: Dict[tuple, List[ConjunctiveQuery]] = {}
        for candidate in self.combine(query, mcds):
            if self.max_rewritings is not None and len(result.rewritings) >= self.max_rewritings:
                break
            result.candidates_examined += 1
            prekey = (
                candidate.head.predicate,
                len(candidate.head.args),
                candidate.head.const_positions,
                tuple(sorted(atom.predicate for atom in candidate.body)),
                tuple(sorted(c.op.value for c in candidate.comparisons)),
            )
            bucket = seen.setdefault(prekey, [])
            if bucket:
                canonical = candidate.canonical()
                if any(canonical == other.canonical() for other in bucket):
                    continue
            bucket.append(candidate)
            if self.reference_pipeline:
                # Seed-era pipeline: each check unfolds the candidate again.
                if verify and not is_contained_rewriting(candidate, query, self.views):
                    continue
                expansion = expand_query(candidate, self.views)
                kind = (
                    RewritingKind.EQUIVALENT
                    if is_complete_rewriting(candidate, query, self.views)
                    else RewritingKind.CONTAINED
                )
                result.rewritings.append(
                    Rewriting(
                        query=candidate,
                        kind=kind,
                        algorithm=self.algorithm_name,
                        views_used=tuple(
                            dict.fromkeys(a.predicate for a in candidate.body)
                        ),
                        expansion=expansion,
                    )
                )
                continue
            # One unfolding serves the soundness check, the completeness
            # check and the result record (it used to be computed three
            # times), and the soundness direction doubles as the forward
            # half of the equivalence test, so each candidate needs at most
            # one containment search per direction.  An unsatisfiable
            # expansion is vacuously sound and never complete, matching the
            # verify.py semantics.
            expansion = cached_expand_query(candidate, self.views)
            forward = expansion is not None and is_contained(expansion, query)
            if verify and expansion is not None and not forward:
                continue
            kind = (
                RewritingKind.EQUIVALENT
                if forward and is_contained(query, expansion)
                else RewritingKind.CONTAINED
            )
            result.rewritings.append(
                Rewriting(
                    query=candidate,
                    kind=kind,
                    algorithm=self.algorithm_name,
                    views_used=tuple(dict.fromkeys(a.predicate for a in candidate.body)),
                    expansion=expansion,
                )
            )
        return result
