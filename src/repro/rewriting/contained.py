"""Maximally-contained rewritings as unions of conjunctive view queries.

When no equivalent rewriting exists (the common case in data integration,
where views describe incomplete sources), the best view-only plan is the
union of all contained conjunctive rewritings.  The union produced by the
bucket or MiniCon algorithm is maximal among unions of conjunctive queries
over the views: every view-only conjunctive plan contained in the query is
contained in it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from repro.errors import RewritingError
from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.datalog.views import View, ViewSet
from repro.containment.containment import is_contained
from repro.rewriting.bucket import BucketRewriter
from repro.rewriting.expansion import cached_expand_query, cached_expand_rewriting
from repro.rewriting.minicon import MiniConRewriter
from repro.rewriting.plans import Rewriting, RewritingKind


def _prune_subsumed(
    disjuncts: List[ConjunctiveQuery], views: ViewSet
) -> List[ConjunctiveQuery]:
    """Drop disjuncts whose expansion is contained in another disjunct's expansion.

    Each disjunct is expanded exactly once per pruning pass — through the
    shared expansion cache, so the generating algorithm's own unfoldings are
    reused here and the caller's final union expansion reuses these — and the
    pairwise containment checks on the expansions are served by the
    fingerprint memo on repeats.
    """
    expansions = [cached_expand_query(disjunct, views) for disjunct in disjuncts]
    keep: List[bool] = [True] * len(disjuncts)
    for i, expansion_i in enumerate(expansions):
        if expansion_i is None:
            keep[i] = False
            continue
        for j, expansion_j in enumerate(expansions):
            if i == j or not keep[j] or expansion_j is None:
                continue
            if is_contained(expansion_i, expansion_j):
                # Break ties deterministically: prefer the earlier disjunct.
                # The cheap index comparison goes first so the reverse
                # containment check is skipped entirely when the tie-break
                # could not save the disjunct anyway (j < i).
                if not (j > i and is_contained(expansion_j, expansion_i)):
                    keep[i] = False
                    break
    return [d for d, kept in zip(disjuncts, keep) if kept]


def maximally_contained_rewriting(
    query: ConjunctiveQuery,
    views: "ViewSet | Iterable[View]",
    algorithm: str = "minicon",
    prune: bool = True,
    candidate_filter=None,
) -> Optional[Rewriting]:
    """The maximally-contained union rewriting of ``query`` over ``views``.

    Returns ``None`` when no contained conjunctive rewriting exists at all.
    ``algorithm`` selects the generator of contained rewritings (``"minicon"``
    or ``"bucket"``); ``prune`` removes disjuncts subsumed by other disjuncts,
    which keeps the union small without changing its meaning.
    ``candidate_filter`` is the optional per-view pruning predicate of
    :mod:`repro.rewriting.candidates`, forwarded to the generator.
    """
    view_set = views if isinstance(views, ViewSet) else ViewSet(list(views))
    if algorithm == "minicon":
        rewriter: "MiniConRewriter | BucketRewriter" = MiniConRewriter(
            view_set, candidate_filter=candidate_filter
        )
    elif algorithm == "bucket":
        rewriter = BucketRewriter(view_set, candidate_filter=candidate_filter)
    else:
        raise RewritingError(
            f"unknown algorithm {algorithm!r} for maximally-contained rewriting "
            "(expected 'minicon' or 'bucket')"
        )
    result = rewriter.rewrite(query)
    disjuncts = [
        r.query
        for r in result.rewritings
        if isinstance(r.query, ConjunctiveQuery)
        and r.kind in (RewritingKind.CONTAINED, RewritingKind.EQUIVALENT)
    ]
    if not disjuncts:
        return None
    if prune and len(disjuncts) > 1:
        disjuncts = _prune_subsumed(disjuncts, view_set)
    union: Union[ConjunctiveQuery, UnionQuery]
    union = disjuncts[0] if len(disjuncts) == 1 else UnionQuery(disjuncts).simplified()
    kind = RewritingKind.MAXIMALLY_CONTAINED
    # If one disjunct is already equivalent, the union is equivalent as well.
    if any(r.kind is RewritingKind.EQUIVALENT for r in result.rewritings):
        kind = RewritingKind.EQUIVALENT
    return Rewriting(
        query=union,
        kind=kind,
        algorithm=f"{algorithm}-union",
        views_used=tuple(
            dict.fromkeys(
                atom.predicate
                for disjunct in (union.disjuncts if isinstance(union, UnionQuery) else (union,))
                for atom in disjunct.body
            )
        ),
        expansion=cached_expand_rewriting(union, view_set),
    )
