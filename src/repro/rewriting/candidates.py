"""Candidate view atoms for equivalent rewritings.

The paper's bounded-search theorem says that if a complete rewriting exists,
one exists with at most ``n`` view subgoals (``n`` = number of subgoals of the
minimized query).  A companion observation bounds the *shape* of those
subgoals: in an equivalent rewriting, the expansion must contain the query,
so there is a containment mapping from the expansion into the query; restricted
to the expansion of any single view atom, that mapping is a homomorphism of
the entire view body into the query body.  Consequently every view atom worth
considering is of the form ``v(h(head_args))`` for some homomorphism ``h``
from the view's body into the query's body.

:func:`candidate_view_atoms` enumerates exactly those atoms, which keeps the
exhaustive search space small without giving up completeness for equivalent
rewritings of comparison-free queries.  (With comparison subgoals the
enumeration remains sound; completeness then additionally depends on the
interpreted containment test used for verification.)
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.views import View, ViewSet
from repro.containment.homomorphism import homomorphisms

#: A predicate deciding whether a view is worth considering for a query.
#: Returning ``False`` must only prune views that provably cannot contribute
#: (e.g. views whose body mentions relations absent from the query) — the
#: filter is a fast path, not a semantic change.  See
#: :class:`repro.service.view_index.ViewRelevanceIndex` for the standard source
#: of such filters.
CandidateFilter = Callable[[ConjunctiveQuery, View], bool]


def candidate_atoms_for_view(query: ConjunctiveQuery, view: View) -> List[Atom]:
    """All candidate atoms over a single view (deduplicated, deterministic order)."""
    seen: Dict[Atom, None] = {}
    for mapping in homomorphisms(view.body, query.body):
        image_args = tuple(mapping.apply_term(t) for t in view.head.args)
        atom = Atom(view.name, image_args)
        seen.setdefault(atom, None)
    return list(seen)


def candidate_view_atoms(
    query: ConjunctiveQuery,
    views: "ViewSet | Iterable[View]",
    candidate_filter: Optional[CandidateFilter] = None,
) -> List[Atom]:
    """All candidate view atoms for an equivalent rewriting of ``query``.

    The result is ordered view by view (in the views' order) and deduplicated.
    An empty result means no view's body can be mapped into the query at all,
    so no equivalent view-only rewriting can exist.  An optional
    ``candidate_filter`` skips views before the (expensive) homomorphism
    enumeration; see :data:`CandidateFilter`.
    """
    atoms: List[Atom] = []
    seen: set = set()
    for view in views:
        if candidate_filter is not None and not candidate_filter(query, view):
            continue
        for atom in candidate_atoms_for_view(query, view):
            if atom not in seen:
                seen.add(atom)
                atoms.append(atom)
    return atoms


def candidates_by_view(
    query: ConjunctiveQuery,
    views: "ViewSet | Iterable[View]",
    candidate_filter: Optional[CandidateFilter] = None,
) -> Dict[str, List[Atom]]:
    """Candidate atoms grouped by view name (useful for diagnostics and tests)."""
    return {
        view.name: candidate_atoms_for_view(query, view)
        for view in views
        if candidate_filter is None or candidate_filter(query, view)
    }
