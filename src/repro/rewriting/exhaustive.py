"""The paper's bounded exhaustive search for complete (equivalent) rewritings.

The search enumerates candidate rewritings in order of increasing size, up to
the paper's bound of ``n`` view subgoals (``n`` = number of subgoals of the
minimized query), and verifies each candidate by expanding it and testing
equivalence with the query.  It is sound and complete for conjunctive queries
and views without comparison subgoals — exactly the setting of the paper's
Theorems — and remains sound (complete modulo the interpreted-containment
enumeration limit) when comparisons are present.

The search is exponential in the worst case, which is unavoidable: deciding
the existence of a complete rewriting is NP-complete (paper result R2); the
E3 benchmark measures exactly this growth.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.datalog.atoms import Atom, Comparison, ComparisonOperator
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.substitution import Substitution
from repro.datalog.terms import Constant, Variable
from repro.datalog.views import View, ViewSet
from repro.containment.minimize import minimize
from repro.rewriting.candidates import candidate_view_atoms
from repro.rewriting.expansion import cached_expand_query
from repro.rewriting.plans import Rewriting, RewritingKind, RewritingResult
from repro.rewriting.verify import is_complete_rewriting


def normalize_equalities(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Inline equality comparisons over existential variables.

    A comparison ``Y = 7`` (or ``Y = Z``) pins an existential variable; the
    equivalent query obtained by substituting the variable away exposes the
    constant (or the shared variable) inside the relational subgoals, which is
    what the candidate-atom construction looks at.  Head variables are never
    substituted, so the query's output schema is unchanged.  The
    transformation preserves equivalence.
    """
    current = query
    head_vars = set(query.head.variables())
    changed = True
    while changed:
        changed = False
        for comparison in current.comparisons:
            if comparison.op is not ComparisonOperator.EQ:
                continue
            left, right = comparison.left, comparison.right
            target: "Variable | None" = None
            replacement = None
            if isinstance(left, Variable) and left not in head_vars:
                target, replacement = left, right
            elif isinstance(right, Variable) and right not in head_vars:
                target, replacement = right, left
            if target is None or target == replacement:
                continue
            remaining = tuple(c for c in current.comparisons if c is not comparison)
            substitution = Substitution({target: replacement})
            current = ConjunctiveQuery(
                current.head,
                substitution.apply_atoms(current.body),
                substitution.apply_comparisons(remaining),
                require_safe=False,
            )
            changed = True
            break
    return current


class ExhaustiveRewriter:
    """Bounded exhaustive search for equivalent view-only rewritings.

    Parameters
    ----------
    views:
        The views available for rewriting.
    max_subgoals:
        Optional cap on the rewriting size.  Defaults to the paper's bound
        (the number of subgoals of the minimized query); a smaller cap turns
        the search into a sound but incomplete procedure.
    find_all:
        When true, keep searching after the first equivalent rewriting and
        return every one found (at every size up to the bound).
    minimize_query:
        Minimize the input query before searching (recommended; the paper's
        bound is stated for minimal queries).
    candidate_filter:
        Optional ``(query, view) -> bool`` predicate; views it rejects are
        skipped during candidate-atom enumeration (see
        :mod:`repro.rewriting.candidates`).
    """

    algorithm_name = "exhaustive"

    def __init__(
        self,
        views: "ViewSet | Iterable[View]",
        max_subgoals: Optional[int] = None,
        find_all: bool = False,
        minimize_query: bool = True,
        candidate_filter: Optional["Callable[[ConjunctiveQuery, View], bool]"] = None,
    ):
        self.views = views if isinstance(views, ViewSet) else ViewSet(list(views))
        self.max_subgoals = max_subgoals
        self.find_all = find_all
        self.minimize_query = minimize_query
        self.candidate_filter = candidate_filter

    # -- candidate construction ---------------------------------------------
    def _attach_comparisons(
        self, query: ConjunctiveQuery, body: Sequence[Atom]
    ) -> Tuple[Comparison, ...]:
        """Query comparisons whose variables are all visible in the rewriting body."""
        visible = set()
        for atom in body:
            visible.update(atom.variables())
        kept = []
        for comparison in query.comparisons:
            if all(var in visible for var in comparison.variables()):
                kept.append(comparison)
        return tuple(kept)

    def _candidate_rewritings(
        self, query: ConjunctiveQuery, candidates: Sequence[Atom], bound: int
    ) -> Iterator[ConjunctiveQuery]:
        """All candidate rewritings of size 1..bound, smallest first."""
        head_vars = set(query.head.variables())
        for size in range(1, bound + 1):
            for combination in itertools.combinations(candidates, size):
                covered = set()
                for atom in combination:
                    covered.update(atom.variables())
                if not head_vars <= covered:
                    continue  # unsafe: some distinguished variable is not retrievable
                comparisons = self._attach_comparisons(query, combination)
                yield ConjunctiveQuery(
                    query.head, combination, comparisons, require_safe=False
                )

    # -- main entry point --------------------------------------------------------
    def rewrite(self, query: ConjunctiveQuery) -> RewritingResult:
        """Search for equivalent rewritings of ``query`` using the configured views."""
        target = normalize_equalities(query)
        if self.minimize_query:
            target = minimize(target)
        result = RewritingResult(query=query, views=self.views, algorithm=self.algorithm_name)
        candidates = candidate_view_atoms(
            target, self.views, candidate_filter=self.candidate_filter
        )
        if not candidates:
            return result
        bound = target.size() if self.max_subgoals is None else min(
            self.max_subgoals, max(target.size(), 1)
        )
        for candidate in self._candidate_rewritings(target, candidates, bound):
            result.candidates_examined += 1
            if is_complete_rewriting(candidate, target, self.views):
                rewriting = Rewriting(
                    query=candidate,
                    kind=RewritingKind.EQUIVALENT,
                    algorithm=self.algorithm_name,
                    views_used=tuple(
                        dict.fromkeys(a.predicate for a in candidate.body)
                    ),
                    expansion=cached_expand_query(candidate, self.views),
                )
                result.rewritings.append(rewriting)
                if not self.find_all:
                    break
        return result

    def has_complete_rewriting(self, query: ConjunctiveQuery) -> bool:
        """Decision procedure: does an equivalent view-only rewriting exist?"""
        return self.rewrite(query).has_equivalent
