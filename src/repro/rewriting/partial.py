"""Partial rewritings: equivalent plans mixing views and base relations.

In the query-optimization reading of the paper, a rewriting need not eliminate
every base relation — replacing even a single expensive join by a lookup into
a materialized view is worthwhile.  A *partial rewriting* keeps some of the
query's own subgoals and replaces the rest with view atoms; it is reported
only when its expansion is equivalent to the query, so it can be used as a
drop-in replacement plan.

The search reuses MiniCon descriptions: each MCD describes a fragment of the
query a view can take over, so a partial rewriting corresponds to a set of
MCDs with pairwise-disjoint coverage (not necessarily total), with the
uncovered subgoals kept as base atoms.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.views import View, ViewSet
from repro.containment.minimize import minimize
from repro.rewriting.expansion import cached_expand_query
from repro.rewriting.minicon import MCD, MiniConRewriter
from repro.rewriting.plans import Rewriting, RewritingKind
from repro.rewriting.verify import is_complete_rewriting


def _disjoint_subsets(
    mcds: List[MCD], total: int, max_plans: Optional[int]
) -> Iterator[Tuple[Tuple[MCD, ...], frozenset]]:
    """Non-empty sets of MCDs with pairwise-disjoint coverage.

    Yields ``(combination, covered_indices)``.  The enumeration is depth-first
    over MCDs in order, so smaller combinations come first for each prefix.
    """
    count = 0

    def recurse(start: int, chosen: List[MCD], covered: frozenset) -> Iterator[Tuple[Tuple[MCD, ...], frozenset]]:
        nonlocal count
        for index in range(start, len(mcds)):
            mcd = mcds[index]
            if covered & mcd.covered:
                continue
            chosen.append(mcd)
            new_covered = covered | mcd.covered
            yield tuple(chosen), new_covered
            count += 1
            if max_plans is not None and count >= max_plans:
                chosen.pop()
                return
            yield from recurse(index + 1, chosen, new_covered)
            chosen.pop()

    yield from recurse(0, [], frozenset())


def partial_rewritings(
    query: ConjunctiveQuery,
    views: "ViewSet | Iterable[View]",
    max_plans: Optional[int] = 200,
    minimize_query: bool = True,
    include_complete: bool = False,
) -> List[Rewriting]:
    """Equivalent rewritings of ``query`` that may keep base relations.

    Returns one :class:`Rewriting` (kind ``PARTIAL``) per verified plan.
    Plans that use no base relation at all are reported only when
    ``include_complete`` is true (they are ordinary complete rewritings and
    the dedicated algorithms find them more efficiently).
    ``max_plans`` caps the number of MCD combinations explored.
    """
    view_set = views if isinstance(views, ViewSet) else ViewSet(list(views))
    target = minimize(query) if minimize_query else query
    rewriter = MiniConRewriter(view_set)
    mcds = rewriter.form_mcds(target)
    if not mcds:
        return []
    all_indices = frozenset(range(len(target.body)))
    results: List[Rewriting] = []
    seen: set = set()
    for combination, covered in _disjoint_subsets(mcds, len(target.body), max_plans):
        uncovered = all_indices - covered
        if not uncovered and not include_complete:
            continue
        candidate = rewriter._assemble(target, combination, base_indices=uncovered)
        if candidate is None:
            continue
        key = candidate.canonical()
        if key in seen:
            continue
        seen.add(key)
        if not is_complete_rewriting(candidate, target, view_set):
            continue
        kind = RewritingKind.PARTIAL if uncovered else RewritingKind.EQUIVALENT
        results.append(
            Rewriting(
                query=candidate,
                kind=kind,
                algorithm="minicon-partial",
                views_used=tuple(
                    dict.fromkeys(
                        a.predicate for a in candidate.body if view_set.is_view_predicate(a.predicate)
                    )
                ),
                expansion=cached_expand_query(candidate, view_set),
            )
        )
    return results
