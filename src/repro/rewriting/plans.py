"""Rewriting containers: what an algorithm returns and how it is justified."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.datalog.views import ViewSet


class RewritingKind(enum.Enum):
    """How a rewriting relates to the original query."""

    #: The expansion of the rewriting is equivalent to the query.
    EQUIVALENT = "equivalent"
    #: The expansion of the rewriting is contained in the query.
    CONTAINED = "contained"
    #: A union of contained rewritings that is maximal among view-only plans.
    MAXIMALLY_CONTAINED = "maximally_contained"
    #: An equivalent rewriting that still uses some base relations.
    PARTIAL = "partial"


@dataclass(frozen=True)
class Rewriting:
    """A single rewriting produced by one of the algorithms.

    Attributes
    ----------
    query:
        The rewriting itself — a conjunctive query (or union) whose body atoms
        are over view predicates (plus base predicates for partial plans).
    expansion:
        The unfolding of ``query`` over the view definitions; ``None`` only
        for datalog-style rewritings that have no finite unfolding.
    kind:
        How the rewriting relates to the original query.
    algorithm:
        Name of the algorithm that produced it (``"exhaustive"``, ``"bucket"``,
        ``"minicon"``, ``"inverse-rules"``).
    views_used:
        Names of the views referenced by the rewriting.
    """

    query: Union[ConjunctiveQuery, UnionQuery]
    kind: RewritingKind
    algorithm: str
    views_used: Tuple[str, ...] = ()
    expansion: Union[ConjunctiveQuery, UnionQuery, None] = None

    @property
    def is_equivalent(self) -> bool:
        return self.kind in (RewritingKind.EQUIVALENT, RewritingKind.PARTIAL)

    def disjuncts(self) -> Tuple[ConjunctiveQuery, ...]:
        """The conjunctive rewritings making up this plan."""
        if isinstance(self.query, UnionQuery):
            return self.query.disjuncts
        return (self.query,)

    def size(self) -> int:
        """Total number of subgoals across disjuncts (plan size)."""
        return sum(q.size() for q in self.disjuncts())

    def __str__(self) -> str:
        header = f"-- {self.kind.value} rewriting ({self.algorithm})"
        return f"{header}\n{self.query}"


@dataclass
class RewritingResult:
    """The full outcome of a rewriting request.

    ``rewritings`` holds every rewriting found (possibly none).  ``best`` is
    the preferred one under the request's mode: the smallest equivalent
    rewriting when one exists, otherwise the maximally-contained plan if it
    was requested.
    """

    query: ConjunctiveQuery
    views: ViewSet
    algorithm: str
    rewritings: List[Rewriting] = field(default_factory=list)
    #: Wall-clock seconds spent searching (filled by the front door).
    elapsed: float = 0.0
    #: Number of candidate rewritings examined (algorithm-specific meaning).
    candidates_examined: int = 0

    @property
    def best(self) -> Optional[Rewriting]:
        equivalents = [r for r in self.rewritings if r.kind is RewritingKind.EQUIVALENT]
        if equivalents:
            return min(equivalents, key=lambda r: r.size())
        partials = [r for r in self.rewritings if r.kind is RewritingKind.PARTIAL]
        if partials:
            return min(partials, key=lambda r: r.size())
        maximal = [r for r in self.rewritings if r.kind is RewritingKind.MAXIMALLY_CONTAINED]
        if maximal:
            return maximal[0]
        contained = [r for r in self.rewritings if r.kind is RewritingKind.CONTAINED]
        if contained:
            return min(contained, key=lambda r: r.size())
        return None

    @property
    def has_equivalent(self) -> bool:
        return any(r.kind is RewritingKind.EQUIVALENT for r in self.rewritings)

    def equivalent_rewritings(self) -> List[Rewriting]:
        return [r for r in self.rewritings if r.kind is RewritingKind.EQUIVALENT]

    def contained_rewritings(self) -> List[Rewriting]:
        return [r for r in self.rewritings if r.kind is RewritingKind.CONTAINED]

    def __bool__(self) -> bool:
        return bool(self.rewritings)

    def __len__(self) -> int:
        return len(self.rewritings)
