"""The bucket algorithm for view-based rewriting.

The bucket algorithm (from the Information Manifold line of work that the
PODS'95 paper initiated) finds contained — and, when they exist, equivalent —
rewritings in two phases:

1. **Bucket creation.**  For every query subgoal ``g``, collect the view atoms
   that could "cover" ``g``: a view ``V`` contributes an atom whenever some
   subgoal of ``V`` unifies with ``g`` such that every distinguished variable
   of the query occurring in ``g`` lands on a distinguished variable (or a
   constant) of ``V``.
2. **Combination.**  Every element of the Cartesian product of the buckets is
   a candidate rewriting (one covering atom per query subgoal, duplicates
   merged).  Each candidate is verified by expansion: candidates whose
   expansion is contained in the query are contained rewritings; those whose
   expansion is equivalent are complete rewritings.

The algorithm is complete for finding the maximally-contained union of
conjunctive rewritings over the views (for comparison-free queries), but the
Cartesian-product phase inspects many candidates that verification then
rejects — exactly the inefficiency that MiniCon's MCDs were designed to
avoid, and that the E10 ablation benchmark quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.datalog.atoms import Atom, Comparison
from repro.datalog.freshen import FreshVariableFactory
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.substitution import Substitution, unify_atoms
from repro.datalog.terms import Constant, Term, Variable
from repro.datalog.views import View, ViewSet
from repro.containment.minimize import minimize
from repro.rewriting.expansion import cached_expand_query
from repro.rewriting.plans import Rewriting, RewritingKind, RewritingResult
from repro.rewriting.verify import is_complete_rewriting, is_contained_rewriting


@dataclass(frozen=True)
class BucketEntry:
    """One candidate covering atom for a query subgoal."""

    #: The view atom placed in the bucket (arguments in query-variable terms).
    atom: Atom
    #: The name of the view the atom ranges over.
    view: str
    #: The query subgoal this entry was created for (index into the query body).
    subgoal_index: int


@dataclass
class Bucket:
    """The bucket of one query subgoal: every view atom that may cover it."""

    subgoal: Atom
    subgoal_index: int
    entries: List[BucketEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[BucketEntry]:
        return iter(self.entries)

    def is_empty(self) -> bool:
        return not self.entries


class BucketRewriter:
    """Two-phase bucket algorithm.

    Parameters
    ----------
    views:
        The views available for rewriting.
    max_candidates:
        Safety cap on the number of Cartesian-product combinations examined;
        ``None`` means unlimited.  When the cap is reached the result's
        ``candidates_examined`` equals the cap and the maximally-contained
        union may be incomplete.
    candidate_filter:
        Optional ``(query, view) -> bool`` predicate consulted once per view
        during bucket creation; views it rejects are skipped.  Used by the
        serving layer's view-relevance index (see
        :mod:`repro.service.view_index`).
    """

    algorithm_name = "bucket"

    def __init__(
        self,
        views: "ViewSet | Iterable[View]",
        max_candidates: Optional[int] = None,
        candidate_filter: Optional["Callable[[ConjunctiveQuery, View], bool]"] = None,
    ):
        self.views = views if isinstance(views, ViewSet) else ViewSet(list(views))
        self.max_candidates = max_candidates
        self.candidate_filter = candidate_filter

    # -- phase 1: bucket creation ------------------------------------------------
    def build_buckets(self, query: ConjunctiveQuery) -> List[Bucket]:
        """Create one bucket per query subgoal."""
        buckets: List[Bucket] = []
        head_vars = set(query.head.variables())
        usable_views = [
            view
            for view in self.views
            if self.candidate_filter is None or self.candidate_filter(query, view)
        ]
        for index, subgoal in enumerate(query.body):
            bucket = Bucket(subgoal=subgoal, subgoal_index=index)
            for view in usable_views:
                bucket.entries.extend(
                    self._entries_for(query, subgoal, index, view, head_vars)
                )
            buckets.append(bucket)
        return buckets

    def _entries_for(
        self,
        query: ConjunctiveQuery,
        subgoal: Atom,
        subgoal_index: int,
        view: View,
        head_vars: set,
    ) -> List[BucketEntry]:
        entries: List[BucketEntry] = []
        seen_atoms: set = set()
        renamed_definition = view.definition.freshened_against(query)
        renamed_head_args = renamed_definition.head.args
        for view_subgoal in renamed_definition.body:
            if view_subgoal.signature != subgoal.signature:
                continue
            unifier = unify_atoms(subgoal, view_subgoal)
            if unifier is None:
                continue
            if not self._distinguished_condition(
                subgoal, head_vars, renamed_head_args, unifier
            ):
                continue
            atom = self._bucket_atom(view, renamed_head_args, unifier, query, subgoal_index)
            if atom not in seen_atoms:
                seen_atoms.add(atom)
                entries.append(
                    BucketEntry(atom=atom, view=view.name, subgoal_index=subgoal_index)
                )
        return entries

    @staticmethod
    def _distinguished_condition(
        subgoal: Atom,
        head_vars: set,
        view_head_args: Tuple[Term, ...],
        unifier: Substitution,
    ) -> bool:
        """Every query head variable in the subgoal must land on a view head term."""
        view_head_images = {unifier.apply_term(t) for t in view_head_args}
        for var in subgoal.variables():
            if var not in head_vars:
                continue
            image = unifier.apply_term(var)
            if isinstance(image, Constant):
                continue
            if image not in view_head_images:
                return False
        return True

    @staticmethod
    def _bucket_atom(
        view: View,
        view_head_args: Tuple[Term, ...],
        unifier: Substitution,
        query: ConjunctiveQuery,
        subgoal_index: int,
    ) -> Atom:
        """The bucket-entry atom, expressed over query terms plus fresh variables.

        A view head argument that the unifier ties (possibly transitively) to a
        query term is rendered as that query term; arguments left untouched
        (they only constrain parts of the view irrelevant to this subgoal)
        become fresh variables unique to this entry.
        """
        # The unifier's representatives may be view variables even when the
        # class contains a query variable, so build a reverse map from
        # representative to query variable first.
        image_to_query_var: Dict[Term, Variable] = {}
        for var in query.variables():
            image = unifier.apply_term(var)
            if not isinstance(image, Constant):
                image_to_query_var.setdefault(image, var)
        factory = FreshVariableFactory(
            reserved=[v.name for v in query.variables()],
            prefix=f"_B{subgoal_index}_",
        )
        fresh_for: Dict[Term, Variable] = {}
        args: List[Term] = []
        for head_arg in view_head_args:
            image = unifier.apply_term(head_arg)
            if isinstance(image, Constant):
                args.append(image)
            elif image in image_to_query_var:
                args.append(image_to_query_var[image])
            else:
                if image not in fresh_for:
                    fresh_for[image] = factory.fresh()
                args.append(fresh_for[image])
        return Atom(view.name, args)

    # -- phase 2: combination ----------------------------------------------------
    def _attach_comparisons(
        self, query: ConjunctiveQuery, body: Sequence[Atom]
    ) -> Tuple[Comparison, ...]:
        visible = set()
        for atom in body:
            visible.update(atom.variables())
        return tuple(
            c for c in query.comparisons if all(v in visible for v in c.variables())
        )

    def _combinations(self, buckets: List[Bucket]) -> Iterator[Tuple[BucketEntry, ...]]:
        """Lazily enumerate the Cartesian product of the buckets."""
        if any(b.is_empty() for b in buckets):
            return

        def recurse(index: int, chosen: List[BucketEntry]) -> Iterator[Tuple[BucketEntry, ...]]:
            if index == len(buckets):
                yield tuple(chosen)
                return
            for entry in buckets[index].entries:
                chosen.append(entry)
                yield from recurse(index + 1, chosen)
                chosen.pop()

        yield from recurse(0, [])

    def rewrite(self, query: ConjunctiveQuery) -> RewritingResult:
        """Run both phases and return every verified rewriting."""
        result = RewritingResult(query=query, views=self.views, algorithm=self.algorithm_name)
        buckets = self.build_buckets(query)
        if any(b.is_empty() for b in buckets):
            return result
        head_vars = set(query.head.variables())
        seen_bodies: set = set()
        for combination in self._combinations(buckets):
            if (
                self.max_candidates is not None
                and result.candidates_examined >= self.max_candidates
            ):
                break
            result.candidates_examined += 1
            body: List[Atom] = []
            for entry in combination:
                if entry.atom not in body:
                    body.append(entry.atom)
            covered_vars = set()
            for atom in body:
                covered_vars.update(atom.variables())
            if not head_vars <= covered_vars:
                continue
            candidate = ConjunctiveQuery(
                query.head,
                body,
                self._attach_comparisons(query, body),
                require_safe=False,
            )
            key = candidate.canonical()
            if key in seen_bodies:
                continue
            seen_bodies.add(key)
            for repaired in self._contained_variants(candidate, query):
                repaired_key = repaired.canonical()
                if repaired_key in seen_bodies and repaired_key != key:
                    continue
                seen_bodies.add(repaired_key)
                kind = (
                    RewritingKind.EQUIVALENT
                    if is_complete_rewriting(repaired, query, self.views)
                    else RewritingKind.CONTAINED
                )
                result.rewritings.append(
                    Rewriting(
                        query=repaired,
                        kind=kind,
                        algorithm=self.algorithm_name,
                        views_used=tuple(
                            dict.fromkeys(a.predicate for a in repaired.body)
                        ),
                        expansion=cached_expand_query(repaired, self.views),
                    )
                )
        return result

    def _contained_variants(
        self, candidate: ConjunctiveQuery, query: ConjunctiveQuery
    ) -> List[ConjunctiveQuery]:
        """Contained rewritings obtainable from one Cartesian-product candidate.

        The candidate itself is used when its expansion is already contained in
        the query.  Otherwise the classical "add equality constraints" repair
        step applies: a containment mapping from the candidate's expansion
        into the query suggests how the candidate's variables (in particular
        the fresh ones) must be equated with query terms; the specialized
        candidate is then re-verified.
        """
        if is_contained_rewriting(candidate, query, self.views):
            return [candidate]
        expansion = cached_expand_query(candidate, self.views)
        if expansion is None:
            return []
        variants: List[ConjunctiveQuery] = []
        seen: set = set()
        candidate_vars = set()
        for atom in candidate.body:
            candidate_vars.update(atom.variables())
        query_vars = set(query.variables())
        head_vars = set(query.head.variables())
        all_terms = (
            query_vars
            | candidate_vars
            | set(expansion.variables())
            | set(query.constants())
        )
        for unifier in self._unification_matches(query, expansion):
            bindings = self._extract_equalities(
                unifier, all_terms, candidate_vars, query_vars, head_vars
            )
            if bindings is None or not bindings:
                continue
            specialization = Substitution(bindings)
            specialized_body: List[Atom] = []
            for atom in candidate.body:
                image = specialization.apply_atom(atom)
                if image not in specialized_body:
                    specialized_body.append(image)
            specialized = ConjunctiveQuery(
                candidate.head,
                specialized_body,
                specialization.apply_comparisons(candidate.comparisons),
                require_safe=False,
            )
            key = specialized.canonical()
            if key in seen:
                continue
            seen.add(key)
            if is_contained_rewriting(specialized, query, self.views):
                variants.append(minimize(specialized))
        return variants

    @staticmethod
    def _extract_equalities(
        unifier: Substitution,
        all_terms: set,
        candidate_vars: set,
        query_vars: set,
        head_vars: set,
    ) -> Optional[Dict[Variable, Term]]:
        """Turn a unification match into equality constraints on the candidate.

        Terms identified by the unifier form equivalence classes.  Each
        candidate variable is bound to a preferred member of its class (a
        distinguished query variable if possible, then any query term, then a
        constant).  Classes that merge two distinct distinguished variables or
        a distinguished variable with a constant are rejected — such a match
        describes a rewriting with a different head, not a specialization of
        this candidate.  Returns ``None`` to reject, or the binding map.
        """
        groups: Dict[Term, List[Term]] = {}
        for term in all_terms:
            groups.setdefault(unifier.apply_term(term), []).append(term)
        bindings: Dict[Variable, Term] = {}
        for members in groups.values():
            distinguished = [m for m in members if m in head_vars]
            constants = [m for m in members if isinstance(m, Constant)]
            if len(distinguished) > 1 or (distinguished and constants):
                return None
            if len(constants) > 1:
                return None
            target: Optional[Term] = None
            if distinguished:
                target = distinguished[0]
            elif constants:
                target = constants[0]
            else:
                plain_query_vars = [
                    m for m in members if isinstance(m, Variable) and m in query_vars
                ]
                plain_candidate_vars = [
                    m for m in members if isinstance(m, Variable) and m in candidate_vars
                ]
                if plain_query_vars:
                    target = plain_query_vars[0]
                elif plain_candidate_vars:
                    target = plain_candidate_vars[0]
            if target is None:
                continue
            for member in members:
                if member in candidate_vars and isinstance(member, Variable) and member != target:
                    bindings[member] = target
        return bindings

    @staticmethod
    def _unification_matches(
        query: ConjunctiveQuery,
        expansion: ConjunctiveQuery,
        limit: int = 64,
    ) -> Iterator[Substitution]:
        """Two-way matches of the query body against a candidate's expansion.

        Unlike a containment mapping, the match is computed by *unification*:
        variables on both sides may be bound.  Bindings of the candidate's own
        variables (in particular the fresh bucket variables) are the equality
        constraints the classical bucket algorithm adds in its second phase;
        the caller extracts them and re-verifies the specialized candidate, so
        over-general matches are harmless.
        """
        count = 0

        def extend(index: int, substitution: Substitution) -> Iterator[Substitution]:
            nonlocal count
            if count >= limit:
                return
            if index == len(query.body):
                count += 1
                yield substitution
                return
            subgoal = query.body[index]
            for target in expansion.body:
                if target.signature != subgoal.signature:
                    continue
                unified = unify_atoms(subgoal, target, substitution)
                if unified is not None:
                    yield from extend(index + 1, unified)

        seed = unify_atoms(query.head, expansion.head)
        if seed is None:
            return
        yield from extend(0, seed)
