"""Certain answers of a query over materialized view instances.

Under the *sound views* (open-world) assumption, a view instance only tells us
that its tuples are answers of the view over some unknown base database; the
*certain answers* of a query are the tuples returned over **every** base
database consistent with the view instance.  Two ways of computing them are
provided, and the E9 benchmark checks they agree:

* ``method="inverse-rules"`` — evaluate the inverse-rules datalog program over
  the view instance and drop answers containing Skolem values;
* ``method="rewriting"`` — evaluate the maximally-contained union rewriting
  (from MiniCon or the bucket algorithm) directly over the view instance.

Both methods are sound and complete for conjunctive queries and views without
comparison subgoals.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.errors import RewritingError
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.views import View, ViewSet
from repro.engine.database import Database
from repro.engine.evaluate import evaluate
from repro.engine.relation import contains_skolem
from repro.rewriting.contained import maximally_contained_rewriting
from repro.rewriting.inverse_rules import InverseRulesRewriter


def certain_answers(
    query: ConjunctiveQuery,
    views: "ViewSet | Iterable[View]",
    view_instance: Database,
    method: str = "inverse-rules",
) -> FrozenSet[Tuple]:
    """The certain answers of ``query`` given a view instance.

    ``view_instance`` must contain one relation per view, named after the
    view, holding the tuples the source reported (see
    :func:`repro.engine.evaluate.materialize_views` for building one from a
    base database).
    """
    view_set = views if isinstance(views, ViewSet) else ViewSet(list(views))
    if method == "inverse-rules":
        return InverseRulesRewriter(view_set).certain_answers(query, view_instance)
    if method in ("rewriting", "minicon", "bucket"):
        algorithm = "minicon" if method == "rewriting" else method
        plan = maximally_contained_rewriting(query, view_set, algorithm=algorithm)
        if plan is None:
            return frozenset()
        answers = evaluate(plan.query, view_instance)
        return frozenset(row for row in answers if not contains_skolem(row))
    raise RewritingError(
        f"unknown certain-answer method {method!r} "
        "(expected 'inverse-rules', 'rewriting', 'minicon' or 'bucket')"
    )
