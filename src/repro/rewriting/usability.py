"""View usability and usefulness.

The paper distinguishes three increasingly strong properties of a view ``V``
with respect to a query ``Q``:

* **relevance** — some subgoal of ``V`` can cover some subgoal of ``Q`` (a
  cheap syntactic filter: the view shows up in some bucket / MCD);
* **usability** — ``V`` appears in *some* complete rewriting of ``Q``
  (deciding this is NP-complete; we decide it by the bounded exhaustive
  search restricted to rewritings that mention ``V``);
* **usefulness** — using ``V`` actually reduces the cost of answering ``Q``
  (a cost-model statement, checked against the engine's measured cost on a
  concrete database).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.views import View, ViewSet
from repro.engine.cost import plan_comparison
from repro.engine.database import Database
from repro.engine.evaluate import materialize_views
from repro.rewriting.candidates import candidate_atoms_for_view
from repro.rewriting.exhaustive import ExhaustiveRewriter
from repro.rewriting.minicon import MiniConRewriter
from repro.rewriting.partial import partial_rewritings
from repro.rewriting.plans import RewritingKind


def view_is_relevant(query: ConjunctiveQuery, view: View) -> bool:
    """Cheap necessary condition: the view can cover at least one query subgoal.

    For equivalent rewritings this uses the candidate-atom construction (the
    whole view body must map into the query body); a view that fails this test
    can still participate in *contained* rewritings, so relevance here is
    relative to complete rewritings — matching the paper's usage.
    """
    return bool(candidate_atoms_for_view(query, view))


def view_is_usable(
    query: ConjunctiveQuery,
    view: View,
    other_views: "ViewSet | Iterable[View]" = (),
    allow_partial: bool = True,
) -> bool:
    """Whether ``view`` participates in some complete rewriting of ``query``.

    ``other_views`` are the additional views that may be combined with
    ``view``; when ``allow_partial`` is true, rewritings may also keep base
    relations (the paper's notion of usability in query optimization), so a
    view covering only part of the query still counts as usable.
    """
    others = list(other_views) if not isinstance(other_views, ViewSet) else list(other_views)
    all_views = ViewSet([view] + [v for v in others if v.name != view.name])

    # View-only rewritings first (pure "answering using views" setting).
    searcher = ExhaustiveRewriter(all_views, find_all=True)
    for rewriting in searcher.rewrite(query).equivalent_rewritings():
        if view.name in rewriting.views_used:
            return True
    if not allow_partial:
        return False
    # Partial rewritings: views plus base relations.
    for rewriting in partial_rewritings(query, all_views):
        if view.name in rewriting.views_used:
            return True
    return False


def view_is_useful(
    query: ConjunctiveQuery,
    view: View,
    database: Database,
    other_views: "ViewSet | Iterable[View]" = (),
    threshold: float = 1.0,
) -> bool:
    """Whether answering ``query`` through ``view`` is cheaper than answering it directly.

    The check materializes the views over ``database``, finds the best
    rewriting that uses ``view`` (complete or partial), and compares the
    measured evaluation cost of that plan against the measured cost of the
    original query.  ``threshold`` is the minimum speedup factor required to
    call the view useful (1.0 = any improvement).
    """
    others = list(other_views) if not isinstance(other_views, ViewSet) else list(other_views)
    all_views = ViewSet([view] + [v for v in others if v.name != view.name])

    plans = []
    searcher = ExhaustiveRewriter(all_views, find_all=True)
    plans.extend(
        r for r in searcher.rewrite(query).equivalent_rewritings() if view.name in r.views_used
    )
    plans.extend(
        r for r in partial_rewritings(query, all_views) if view.name in r.views_used
    )
    if not plans:
        return False

    view_instance = materialize_views(all_views, database)
    # Partial plans read base relations too, so give them the merged database.
    merged = view_instance.merge(database)
    best_speedup = 0.0
    for plan in plans:
        instance = merged if plan.kind is RewritingKind.PARTIAL else view_instance
        comparison = plan_comparison(query, plan.query, database, instance)
        best_speedup = max(best_speedup, comparison["speedup"])
    return best_speedup > threshold
