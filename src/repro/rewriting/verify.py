"""Verification of candidate rewritings by containment of their expansions."""

from __future__ import annotations

from typing import Union

from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.datalog.views import ViewSet
from repro.containment.containment import is_contained, is_equivalent
from repro.rewriting.expansion import cached_expand_rewriting


def is_contained_rewriting(
    rewriting: Union[ConjunctiveQuery, UnionQuery],
    query: ConjunctiveQuery,
    views: ViewSet,
) -> bool:
    """Whether the rewriting's expansion is contained in the query.

    A contained rewriting is *sound*: evaluated over any view instance derived
    from a database ``D``, it returns only answers of the query over ``D``.
    The expansion comes from the shared expansion cache, so the soundness
    check, the completeness check and the result record of one candidate all
    reuse a single unfolding.
    """
    expansion = cached_expand_rewriting(rewriting, views)
    if expansion is None:
        return True  # an unsatisfiable rewriting returns nothing, vacuously sound
    return is_contained(expansion, query)


def is_complete_rewriting(
    rewriting: Union[ConjunctiveQuery, UnionQuery],
    query: ConjunctiveQuery,
    views: ViewSet,
) -> bool:
    """Whether the rewriting's expansion is equivalent to the query.

    This is the paper's notion of a *complete rewriting*: for every database,
    evaluating the rewriting over the materialized views yields exactly the
    query's answers.
    """
    expansion = cached_expand_rewriting(rewriting, views)
    if expansion is None:
        return False
    return is_equivalent(expansion, query)
