"""Expansion (unfolding) of view-based queries into base-schema queries.

A rewriting is a query whose body atoms range over view predicates (and, for
partial rewritings, base predicates).  Its *expansion* replaces each view atom
with the view definition's body, after

1. unifying the view's head arguments with the atom's arguments, and
2. renaming the view's existential variables to fresh variables, so that two
   uses of the same view never share existential witnesses.

The expansion is what gets compared against the original query: a rewriting
is complete when its expansion is equivalent to the query, and contained when
its expansion is contained in the query.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import RewritingError
from repro.datalog.atoms import Atom, Comparison
from repro.datalog.freshen import FreshVariableFactory
from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.datalog.substitution import Substitution, unify_terms
from repro.datalog.terms import Variable
from repro.datalog.views import View, ViewSet
from repro.containment.memo import BoundedCache


def expand_atom(
    atom: Atom,
    view: View,
    factory: FreshVariableFactory,
) -> Optional[Tuple[Tuple[Atom, ...], Tuple[Comparison, ...]]]:
    """Expand a single view atom into the view definition's subgoals.

    Returns ``(body_atoms, comparisons)`` over the base schema, or ``None``
    when the atom's arguments cannot be unified with the view's head (which
    can only happen when constants clash); a ``None`` expansion denotes an
    unsatisfiable conjunct.
    """
    if atom.predicate != view.name:
        raise RewritingError(f"atom {atom} is not over view {view.name}")
    if len(atom.args) != view.arity:
        raise RewritingError(
            f"atom {atom} has {len(atom.args)} arguments but view {view.name} "
            f"has arity {view.arity}"
        )
    # Rename the entire view definition apart from anything seen so far.
    renaming = Substitution(
        {var: factory.fresh(var.name) for var in view.definition.variables()}
    )
    head_args = [renaming.apply_term(t) for t in view.head.args]
    body = renaming.apply_atoms(view.body)
    comparisons = renaming.apply_comparisons(view.definition.comparisons)

    # Unify the renamed head arguments with the atom's arguments.  Arguments of
    # the atom are never rewritten (they belong to the rewriting), so we build
    # the substitution on the renamed view variables only.
    unifier: Optional[Substitution] = Substitution.empty()
    for head_term, atom_term in zip(head_args, atom.args):
        unifier = unify_terms(head_term, atom_term, unifier)
        if unifier is None:
            return None
    assert unifier is not None
    return unifier.apply_atoms(body), unifier.apply_comparisons(comparisons)


def expand_query(
    query: ConjunctiveQuery,
    views: ViewSet,
) -> Optional[ConjunctiveQuery]:
    """Expand every view atom in ``query``'s body; keep base atoms as they are.

    Returns ``None`` when some view atom's expansion is unsatisfiable.  The
    result keeps the original head, so the expansion can be compared directly
    with the query being rewritten.
    """
    factory = FreshVariableFactory(reserved=[v.name for v in query.variables()])
    body: List[Atom] = []
    comparisons: List[Comparison] = list(query.comparisons)
    for atom in query.body:
        view = views.get(atom.predicate)
        if view is None:
            body.append(atom)
            continue
        expansion = expand_atom(atom, view, factory)
        if expansion is None:
            return None
        expanded_atoms, expanded_comparisons = expansion
        body.extend(expanded_atoms)
        comparisons.extend(expanded_comparisons)
    return ConjunctiveQuery(query.head, body, comparisons, require_safe=False)


#: Bounded cache of expansions keyed by (query, view-set version token).
#: Expansion is deterministic (the fresh-variable factory is seeded from the
#: query's own variables), so the cached object is exactly what a fresh
#: ``expand_query`` call would build; queries and expansions are immutable,
#: so sharing the object across callers is safe.  The rewriting algorithms
#: expand every candidate up to three times (soundness check, completeness
#: check, result record) and the subsumption pruning pass re-expands per pair
#: — this cache collapses all of that to one expansion per candidate.
_EXPANSION_CACHE = BoundedCache(2048)

#: Sentinel distinguishing a cached ``None`` (unsatisfiable) from a miss.
_UNSATISFIABLE = object()


_expansion_cache_enabled = True


def clear_expansion_cache() -> None:
    """Drop every cached expansion (cold-start benchmarks reset between runs)."""
    _EXPANSION_CACHE.clear()


@contextmanager
def expansion_cache_disabled() -> Iterator[None]:
    """Scope in which every ``cached_expand_query`` call recomputes.

    Used by the E14 benchmark's reference pipeline to reproduce the seed
    behaviour of unfolding a candidate from scratch at every call site.
    """
    global _expansion_cache_enabled
    previous = _expansion_cache_enabled
    _expansion_cache_enabled = False
    try:
        yield
    finally:
        _expansion_cache_enabled = previous


def cached_expand_query(
    query: ConjunctiveQuery,
    views: ViewSet,
) -> Optional[ConjunctiveQuery]:
    """Memoized :func:`expand_query` (same result, computed once per candidate)."""
    if not _expansion_cache_enabled:
        return expand_query(query, views)
    key = (query, views.version_token())
    cached = _EXPANSION_CACHE.get(key)
    if cached is not None:
        return None if cached is _UNSATISFIABLE else cached
    expansion = expand_query(query, views)
    _EXPANSION_CACHE.put(key, _UNSATISFIABLE if expansion is None else expansion)
    return expansion


def cached_expand_rewriting(
    rewriting: Union[ConjunctiveQuery, UnionQuery],
    views: ViewSet,
) -> Union[ConjunctiveQuery, UnionQuery, None]:
    """Memoized :func:`expand_rewriting` (disjunct-wise, through the cache)."""
    if isinstance(rewriting, UnionQuery):
        expanded = [cached_expand_query(q, views) for q in rewriting.disjuncts]
        kept = [q for q in expanded if q is not None]
        if not kept:
            return None
        if len(kept) == 1:
            return kept[0]
        return UnionQuery(kept)
    return cached_expand_query(rewriting, views)


def expand_rewriting(
    rewriting: Union[ConjunctiveQuery, UnionQuery],
    views: ViewSet,
) -> Union[ConjunctiveQuery, UnionQuery, None]:
    """Expand a rewriting (conjunctive or union) over a set of views.

    For a union, unsatisfiable disjuncts are dropped; the result is ``None``
    when every disjunct is unsatisfiable.
    """
    if isinstance(rewriting, UnionQuery):
        expanded = [expand_query(q, views) for q in rewriting.disjuncts]
        kept = [q for q in expanded if q is not None]
        if not kept:
            return None
        if len(kept) == 1:
            return kept[0]
        return UnionQuery(kept)
    return expand_query(rewriting, views)


def uses_only_views(query: ConjunctiveQuery, views: ViewSet) -> bool:
    """Whether every body atom of ``query`` is over a view predicate."""
    return all(views.is_view_predicate(atom.predicate) for atom in query.body)


def views_used(query: Union[ConjunctiveQuery, UnionQuery], views: ViewSet) -> Tuple[str, ...]:
    """The names of the views referenced by a rewriting, in order of first use."""
    names: List[str] = []
    disjuncts = query.disjuncts if isinstance(query, UnionQuery) else (query,)
    for disjunct in disjuncts:
        for atom in disjunct.body:
            if views.is_view_predicate(atom.predicate) and atom.predicate not in names:
                names.append(atom.predicate)
    return tuple(names)
