"""Cost-based selection among candidate plans (original query vs rewritings).

The paper's query-optimization story does not end with *finding* rewritings:
the optimizer must decide which plan to run — the original query over the base
relations, a complete rewriting over the views, or a partial rewriting mixing
both.  :func:`choose_best_plan` makes that decision with the engine's cost
model, and :class:`PlanChoice` records enough context to explain it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Union

from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.datalog.views import View, ViewSet
from repro.containment.minimize import minimize
from repro.engine.cost import estimate_cost, measured_cost
from repro.engine.database import Database
from repro.engine.evaluate import materialize_views
from repro.rewriting.partial import partial_rewritings
from repro.rewriting.plans import Rewriting, RewritingKind
from repro.rewriting.rewriter import rewrite


@dataclass
class PlanChoice:
    """One candidate plan together with its estimated (or measured) cost."""

    #: "base" for the original query, otherwise the producing algorithm.
    source: str
    #: The executable plan (over base relations, views, or a mix).
    plan: Union[ConjunctiveQuery, UnionQuery]
    #: Cost under the chosen metric (lower is better).
    cost: float
    #: The rewriting object the plan came from (``None`` for the base plan).
    rewriting: Optional[Rewriting] = None

    @property
    def uses_views(self) -> bool:
        return self.rewriting is not None


@dataclass
class OptimizationResult:
    """Outcome of :func:`choose_best_plan`: the winner plus every alternative."""

    best: PlanChoice
    alternatives: List[PlanChoice]

    @property
    def speedup_over_base(self) -> float:
        """How much cheaper the chosen plan is than the base plan (>= 1.0 when it wins)."""
        base = next((c for c in self.alternatives if c.source == "base"), None)
        if base is None or self.best.cost <= 0:
            return 1.0
        return base.cost / self.best.cost


def enumerate_plans(
    query: ConjunctiveQuery,
    views: "ViewSet | Iterable[View]",
    include_partial: bool = True,
    algorithms: Sequence[str] = ("minicon",),
) -> List[Rewriting]:
    """Every equivalent plan the rewriting algorithms can produce.

    Only equivalent (complete or partial) rewritings are returned — the
    optimizer must never trade answers for speed.  Plans are minimized so the
    cost comparison is between the plans an optimizer would actually run.
    """
    view_set = views if isinstance(views, ViewSet) else ViewSet(list(views))
    plans: List[Rewriting] = []
    seen = set()
    for algorithm in algorithms:
        result = rewrite(query, view_set, algorithm=algorithm, mode="equivalent")
        for rewriting in result.equivalent_rewritings():
            assert isinstance(rewriting.query, ConjunctiveQuery)
            reduced = minimize(rewriting.query)
            key = reduced.canonical()
            if key in seen:
                continue
            seen.add(key)
            plans.append(
                Rewriting(
                    query=reduced,
                    kind=rewriting.kind,
                    algorithm=rewriting.algorithm,
                    views_used=rewriting.views_used,
                    expansion=rewriting.expansion,
                )
            )
    if include_partial:
        for rewriting in partial_rewritings(query, view_set):
            assert isinstance(rewriting.query, ConjunctiveQuery)
            reduced = minimize(rewriting.query)
            key = reduced.canonical()
            if key in seen:
                continue
            seen.add(key)
            plans.append(
                Rewriting(
                    query=reduced,
                    kind=rewriting.kind,
                    algorithm=rewriting.algorithm,
                    views_used=rewriting.views_used,
                    expansion=rewriting.expansion,
                )
            )
    return plans


def choose_best_plan(
    query: ConjunctiveQuery,
    views: "ViewSet | Iterable[View]",
    database: Database,
    metric: str = "estimate",
    include_partial: bool = True,
    algorithms: Sequence[str] = ("minicon",),
) -> OptimizationResult:
    """Pick the cheapest way to answer ``query`` given materialized ``views``.

    Parameters
    ----------
    metric:
        ``"estimate"`` uses the cardinality-based estimator (no evaluation);
        ``"measured"`` evaluates every candidate plan and uses the engine's
        work counters (exact but as expensive as running the plans).
    include_partial:
        Also consider plans that mix views with base relations.
    algorithms:
        Which rewriting algorithms supply candidate plans.

    The base plan (the query itself over the base relations) is always a
    candidate, so the result never regresses: if no rewriting is cheaper, the
    base plan wins.
    """
    view_set = views if isinstance(views, ViewSet) else ViewSet(list(views))
    view_instance = materialize_views(view_set, database)
    combined = view_instance.merge(database)

    def plan_cost(plan: Union[ConjunctiveQuery, UnionQuery], data: Database) -> float:
        if metric == "measured":
            cost, _ = measured_cost(plan, data)
            return cost
        return estimate_cost(plan, data)

    choices: List[PlanChoice] = [
        PlanChoice(source="base", plan=query, cost=plan_cost(query, database))
    ]
    for rewriting in enumerate_plans(
        query, view_set, include_partial=include_partial, algorithms=algorithms
    ):
        data = combined if rewriting.kind is RewritingKind.PARTIAL else view_instance
        choices.append(
            PlanChoice(
                source=rewriting.algorithm,
                plan=rewriting.query,
                cost=plan_cost(rewriting.query, data),
                rewriting=rewriting,
            )
        )
    best = min(choices, key=lambda choice: choice.cost)
    return OptimizationResult(best=best, alternatives=choices)
