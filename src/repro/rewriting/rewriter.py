"""The front door: :func:`rewrite` selects an algorithm and packages the result."""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional, Union

from repro.errors import RewritingError
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.views import View, ViewSet
from repro.rewriting.bucket import BucketRewriter
from repro.rewriting.contained import maximally_contained_rewriting
from repro.rewriting.exhaustive import ExhaustiveRewriter
from repro.rewriting.inverse_rules import InverseRulesRewriter
from repro.rewriting.minicon import MiniConRewriter
from repro.rewriting.partial import partial_rewritings
from repro.rewriting.plans import Rewriting, RewritingKind, RewritingResult

#: Algorithms accepted by :func:`rewrite`.
ALGORITHMS = ("exhaustive", "bucket", "minicon", "inverse-rules")

#: Modes accepted by :func:`rewrite`.
MODES = ("equivalent", "contained", "maximally-contained", "partial")


#: Optional per-view pruning predicate, see :mod:`repro.rewriting.candidates`.
CandidateFilter = Callable[[ConjunctiveQuery, View], bool]


def _make_rewriter(
    algorithm: str, views: ViewSet, candidate_filter: Optional[CandidateFilter] = None
):
    if algorithm == "exhaustive":
        return ExhaustiveRewriter(views, find_all=False, candidate_filter=candidate_filter)
    if algorithm == "bucket":
        return BucketRewriter(views, candidate_filter=candidate_filter)
    if algorithm == "minicon":
        return MiniConRewriter(views, candidate_filter=candidate_filter)
    if algorithm == "inverse-rules":
        # Inverse rules range over every view by construction; there is
        # nothing to prune per query.
        return InverseRulesRewriter(views)
    raise RewritingError(
        f"unknown algorithm {algorithm!r}; expected one of {', '.join(ALGORITHMS)}"
    )


def rewrite(
    query: ConjunctiveQuery,
    views: "ViewSet | Iterable[View]",
    algorithm: str = "minicon",
    mode: str = "equivalent",
    candidate_filter: Optional[CandidateFilter] = None,
) -> RewritingResult:
    """Rewrite ``query`` over ``views``.

    Parameters
    ----------
    query:
        The conjunctive query to rewrite.
    views:
        The available materialized views.
    algorithm:
        ``"exhaustive"`` (the paper's bounded search), ``"bucket"``,
        ``"minicon"`` or ``"inverse-rules"``.
    mode:
        * ``"equivalent"`` — look for complete rewritings only;
        * ``"contained"`` — report every contained conjunctive rewriting;
        * ``"maximally-contained"`` — additionally assemble the union plan;
        * ``"partial"`` — equivalent rewritings that may keep base relations.
    candidate_filter:
        Optional ``(query, view) -> bool`` pruning predicate forwarded to the
        algorithms that support it (exhaustive, bucket, minicon).  A sound
        filter only rejects views that cannot contribute to any rewriting.

    Returns
    -------
    RewritingResult
        All rewritings found, with ``result.best`` as the preferred plan.
    """
    if mode not in MODES:
        raise RewritingError(f"unknown mode {mode!r}; expected one of {', '.join(MODES)}")
    view_set = views if isinstance(views, ViewSet) else ViewSet(list(views))
    started = time.perf_counter()

    if mode == "partial":
        result = RewritingResult(query=query, views=view_set, algorithm="minicon-partial")
        result.rewritings = partial_rewritings(query, view_set)
        result.elapsed = time.perf_counter() - started
        return result

    rewriter = _make_rewriter(algorithm, view_set, candidate_filter)
    result = rewriter.rewrite(query)

    if mode == "equivalent" and algorithm != "inverse-rules":
        result.rewritings = [
            r for r in result.rewritings if r.kind is RewritingKind.EQUIVALENT
        ]
    elif mode == "maximally-contained" and algorithm in ("bucket", "minicon"):
        union = maximally_contained_rewriting(
            query, view_set, algorithm=algorithm, candidate_filter=candidate_filter
        )
        if union is not None:
            result.rewritings.append(union)
    result.elapsed = time.perf_counter() - started
    return result
