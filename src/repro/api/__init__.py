"""repro.api — the connection-style facade over the whole library.

One call opens an engine; a handful of verbs cover the paper's lifecycle::

    import repro

    engine = repro.connect(
        views='''
            v_rs(A, B) :- r(A, C), s(C, B).
            v_s(A, B) :- s(A, B).
        ''',
        data="r(1, 2). s(2, 3).",
    )
    answer = engine.query("q(X, Z) :- r(X, Y), s(Y, Z).").answers()
    sorted(answer)                       # [(1, 3)]
    answer.provenance.source             # 'views'

The pieces:

* :func:`connect` — validate a :class:`Catalog` (schema + views + integrity
  constraints) once, attach data, return an :class:`Engine`;
* :class:`Engine` — ``query() / apply() / batch() / stats() / check()``;
* :class:`PreparedQuery` — ``answers() / rewrite() / explain() / certain()``;
* :class:`Answer` / :class:`Explanation` — typed results carrying provenance
  and a JSON-serializable decision tree (schema:
  ``docs/explanation.schema.json``).

The pre-facade entry points (:func:`repro.rewrite`, :func:`repro.evaluate`,
:class:`repro.RewritingSession`, ...) remain supported; see
``docs/migration.md`` for the mapping.
"""

from repro.api.catalog import Catalog
from repro.api.engine import Engine, PreparedQuery, connect
from repro.api.results import (
    Answer,
    CacheReport,
    Evaluation,
    Explanation,
    PlanDescription,
    PlanStep,
    Provenance,
    RewritingAlternative,
    RewritingChoice,
)

__all__ = [
    "Answer",
    "CacheReport",
    "Catalog",
    "Engine",
    "Evaluation",
    "Explanation",
    "PlanDescription",
    "PlanStep",
    "PreparedQuery",
    "Provenance",
    "RewritingAlternative",
    "RewritingChoice",
    "connect",
]
