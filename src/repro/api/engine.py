"""The :class:`Engine`: one connection-style object over the whole pipeline.

``repro.connect(...)`` is the front door of the library: it validates a
:class:`~repro.api.catalog.Catalog` once, attaches data, and returns an
engine exposing the paper's lifecycle — rewrite a query using views, evaluate
the rewriting, maintain the materialized extents under change — as a handful
of verbs::

    engine = repro.connect(views=VIEWS, data=FACTS)
    engine.query("q(X) :- r(X, Y), s(Y, 'z').").answers()   # typed Answer
    engine.query(q).rewrite()                               # RewritingResult
    engine.query(q).explain()                               # typed Explanation
    engine.apply("+ r(7, 8).")                              # incremental delta
    engine.batch([...])                                     # workload report
    engine.stats()                                          # full introspection

Internally the engine owns a :class:`~repro.service.session.RewritingSession`
(fingerprint caches, view-relevance index, delta-scoped invalidation), which
in turn owns the executor (the compiled set-at-a-time engine by default) and
the :class:`~repro.materialize.store.MaterializedViewStore`.  Nothing is
reimplemented here: the facade composes the existing layers, and the old
entry points (``rewrite``, ``evaluate``, ``RewritingSession``) remain
supported underneath it.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import (
    ConstraintViolationError,
    EvaluationError,
    MaterializationError,
    QueryConstructionError,
    StorageError,
)
from repro.datalog.parser import parse_database, parse_program, parse_query
from repro.datalog.printer import to_datalog
from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.engine.database import Database
from repro.materialize.changelog import ChangeLog
from repro.materialize.compare import verify_extents
from repro.materialize.delta import Delta, parse_delta
from repro.obs import Instrumentation, MetricsRegistry, Trace
from repro.rewriting.certain import certain_answers
from repro.rewriting.plans import Rewriting, RewritingKind, RewritingResult
from repro.service.batch import BatchReport, run_batch
from repro.service.session import RewritingSession
from repro.storage import (
    BackedDatabase,
    RecoveryResult,
    StorageManager,
    default_backend_name,
    list_snapshots,
    make_backend,
)
from repro.storage.manager import SQLITE_FILENAME
from repro.api.catalog import Catalog, ConstraintsLike, SchemaLike, ViewsLike
from repro.api.results import (
    Answer,
    CacheReport,
    Evaluation,
    Explanation,
    PlanDescription,
    PlanStep,
    Provenance,
    RewritingAlternative,
    RewritingChoice,
    SOURCE_BASE,
    SOURCE_CERTAIN,
    SOURCE_VIEWS,
    SOURCE_VIEWS_AND_BASE,
)

DataLike = Union[None, Database, str, Mapping[str, Iterable[Sequence[Any]]]]
QueryInput = Union[str, ConjunctiveQuery]
DeltaLike = Union[str, Delta]


def as_database(data: DataLike) -> Optional[Database]:
    """Normalize a data argument: facts text, mapping, Database, or None."""
    if data is None or isinstance(data, Database):
        return data
    if isinstance(data, str):
        return Database.from_atoms(parse_database(data))
    return Database.from_dict(data)


def connect(
    schema: SchemaLike = None,
    views: ViewsLike = None,
    data: DataLike = None,
    view_instance: DataLike = None,
    constraints: ConstraintsLike = None,
    algorithm: str = "minicon",
    mode: str = "equivalent",
    executor: Optional[str] = None,
    cache_size: int = 512,
    use_view_index: bool = True,
    observability: bool = True,
    backend: Optional[str] = None,
    storage: Optional[str] = None,
    wal: "None | bool | str" = None,
    snapshot: Optional[int] = None,
) -> "Engine":
    """Open an :class:`Engine` over a validated catalog.

    Parameters
    ----------
    schema:
        Optional explicit relation schema — a ``{name: arity}`` mapping or
        ``"name/arity"`` entries (string or iterable).  When given, views and
        queries may only mention declared relations; when omitted, the schema
        is inferred from the views and the attached data.
    views:
        View definitions: datalog text, an iterable of :class:`View`, or a
        :class:`ViewSet`.
    data:
        The base database: facts text, a ``{relation: rows}`` mapping, or a
        :class:`Database`.  Required for ``answers()`` / ``apply()``.
    view_instance:
        Tuples reported for the *views* (open-world setting): enables
        ``certain()`` without base data.
    constraints:
        Denial constraints (boolean conjunctive queries) that must be false
        on the data; checked once at attach time and on demand via
        :meth:`Engine.check`.
    algorithm / mode / executor / cache_size / use_view_index:
        Forwarded to the underlying :class:`RewritingSession`.  ``executor``
        is ``"compiled"``, ``"interpreted"``, or ``"parallel"`` (partitioned
        hash joins across a forked worker pool); ``None`` uses the
        process-wide configured default.
    observability:
        When True (the default) the engine owns a
        :class:`repro.obs.Instrumentation` bundle: per-stage latency
        histograms, cache-event counters and request traces, readable via
        :meth:`Engine.metrics` (Prometheus text) and :meth:`Engine.trace`.
        Pass False for a bare engine with zero instrumentation overhead.
    backend:
        The storage backend: ``"memory"`` (the default columnar store) or
        ``"sqlite"`` (rows in SQLite with scan pushdown).  ``None`` reads
        the ``REPRO_DEFAULT_BACKEND`` environment variable, falling back to
        memory.  Without ``storage``, the sqlite backend uses an in-memory
        SQLite database (no persistence, but exercising the full adapter).
    storage:
        A durable storage directory (created if absent): the write-ahead
        log, snapshots and (for the sqlite backend) the base rows live
        there.  A fresh directory ingests ``data``; a directory holding
        prior state is *recovered* — pass no ``data`` then — and the
        :attr:`Engine.recovery_report` says what happened.
    wal:
        The WAL fsync policy for a durable directory: True / ``"always"``
        syncs every append, ``"batch"`` (the default) syncs per flush,
        False / ``"none"`` leaves syncing to the OS.  Requires ``storage``.
    snapshot:
        Auto-checkpoint every N applied deltas (``engine.checkpoint()``
        forces one).  Requires ``storage``.
    """
    database = as_database(data)
    instance = as_database(view_instance)
    manager: Optional[StorageManager] = None
    recovery: Optional[RecoveryResult] = None
    if storage is None:
        if wal is not None:
            raise StorageError("wal= requires a storage directory (storage=...)")
        if snapshot is not None:
            raise StorageError("snapshot= requires a storage directory (storage=...)")
        backend_name = backend if backend is not None else default_backend_name()
        if backend_name != "memory" and database is not None:
            database = BackedDatabase.from_database(
                database, make_backend(backend_name)
            )
    else:
        backend_name = backend
        if backend_name is None:
            # Reopening a directory must pick the backend its base rows
            # actually live in; only a genuinely fresh directory consults
            # the environment default.
            if os.path.exists(os.path.join(storage, SQLITE_FILENAME)):
                backend_name = "sqlite"
            else:
                backend_name = default_backend_name()
        manager = StorageManager(storage, backend=backend_name, fsync=_fsync_policy(wal))
        has_state = manager.last_seq > 0 or bool(list_snapshots(storage))
        if has_state:
            if database is not None:
                manager.close()
                raise StorageError(
                    f"storage directory {storage!r} already holds state; "
                    "omit data= to recover it (or point at a new directory)"
                )
            recovery = manager.recover()
            database = recovery.database
        else:
            database = manager.attach_database(
                database if database is not None else Database()
            )
    catalog = Catalog(
        schema=schema,
        views=views,
        constraints=constraints,
        data_schema=database.schema() if database is not None else None,
    )
    return Engine(
        catalog,
        database=database,
        view_instance=instance,
        algorithm=algorithm,
        mode=mode,
        executor=executor,
        cache_size=cache_size,
        use_view_index=use_view_index,
        observability=observability,
        storage_manager=manager,
        recovery=recovery,
        snapshot_interval=snapshot,
    )


def _fsync_policy(wal: "None | bool | str") -> str:
    if wal is None:
        return "batch"
    if wal is True:
        return "always"
    if wal is False:
        return "none"
    return str(wal)


class PreparedQuery:
    """One validated query bound to an engine; the verbs live here.

    Obtained from :meth:`Engine.query`; cheap to create (parse + catalog
    validation only) — all real work happens in the verb methods, each of
    which goes through the engine's session caches.
    """

    __slots__ = ("engine", "query")

    def __init__(self, engine: "Engine", query: ConjunctiveQuery):
        self.engine = engine
        self.query = query

    def rewrite(self) -> RewritingResult:
        """Rewrite this query using the engine's views (fingerprint-cached)."""
        return self.engine._rewrite(self.query)

    def answers(self) -> Answer:
        """Evaluate the query (through its best rewriting when one exists)."""
        return self.engine._answer(self.query)

    def explain(self) -> Explanation:
        """The full decision tree: rewriting choice → plan steps → caches."""
        return self.engine._explain(self.query)

    def certain(self, method: str = "inverse-rules") -> Answer:
        """Certain answers under sound views (open-world semantics)."""
        return self.engine._certain(self.query, method)

    def __repr__(self) -> str:
        return f"PreparedQuery({to_datalog(self.query)!r})"


class Engine:
    """A connection-style facade over rewriting, execution and maintenance."""

    def __init__(
        self,
        catalog: Catalog,
        database: Optional[Database] = None,
        view_instance: Optional[Database] = None,
        algorithm: str = "minicon",
        mode: str = "equivalent",
        executor: Optional[str] = None,
        cache_size: int = 512,
        use_view_index: bool = True,
        observability: bool = True,
        storage_manager: Optional[StorageManager] = None,
        recovery: Optional[RecoveryResult] = None,
        snapshot_interval: Optional[int] = None,
    ):
        if not isinstance(catalog, Catalog):
            raise QueryConstructionError(f"expected a Catalog, got {catalog!r}")
        self._catalog = catalog
        if database is not None:
            catalog.validate_database(database)
            violated = catalog.check_constraints(database)
            if violated:
                raise ConstraintViolationError(
                    "attached data violates integrity constraint(s): "
                    + ", ".join(violated),
                    violated=violated,
                )
        if view_instance is not None:
            catalog.validate_view_instance(view_instance)
        self._view_instance = view_instance
        self._obs: Optional[Instrumentation] = (
            Instrumentation() if observability else None
        )
        self._session = RewritingSession(
            catalog.views,
            database=database,
            algorithm=algorithm,
            mode=mode,
            cache_size=cache_size,
            use_view_index=use_view_index,
            executor=executor,
            instrumentation=self._obs,
        )
        self.queries_served = 0
        self.deltas_applied = 0
        self._storage = storage_manager
        self._snapshot_interval = (
            int(snapshot_interval) if snapshot_interval else None
        )
        self._deltas_since_checkpoint = 0
        #: What recovery found and replayed, or None for a fresh engine.
        self.recovery_report: Optional[Dict[str, Any]] = None
        if storage_manager is not None:
            if self._obs is not None:
                storage_manager.bind_metrics(self._obs)
            if recovery is not None:
                self._replay_recovery(recovery)

    def _replay_recovery(self, recovery: RecoveryResult) -> None:
        """Apply the recovered WAL tail through the session (view-maintaining)."""
        assert self._storage is not None
        store_restored = False
        if recovery.store_state is not None:
            store_restored = self._session.restore_store_state(recovery.store_state)
        for record in recovery.tail:
            self._session.apply_delta(parse_delta(record.payload))
            self._storage.mark_applied(record.seq)
        report = dict(recovery.report)
        report["store_restored"] = store_restored
        report["replayed"] = len(recovery.tail)
        self.recovery_report = report

    # -- the verbs ---------------------------------------------------------------
    def query(self, query: QueryInput) -> PreparedQuery:
        """Parse (if text) and validate a query against the catalog."""
        if isinstance(query, str):
            if self._obs is not None:
                with self._obs.stage("parse"):
                    parsed = parse_query(query)
            else:
                parsed = parse_query(query)
        elif isinstance(query, ConjunctiveQuery):
            parsed = query
        else:
            raise QueryConstructionError(
                f"expected datalog text or a ConjunctiveQuery, got {query!r}"
            )
        self._catalog.validate_query(parsed)
        return PreparedQuery(self, parsed)

    def apply(self, delta: DeltaLike) -> ChangeLog:
        """Apply a data delta; views and caches are maintained incrementally.

        Accepts a :class:`Delta` or ``+ fact.`` / ``- fact.`` text.  Returns
        the :class:`ChangeLog` saying which base predicates and views
        actually changed.
        """
        with self._request("apply"):
            if isinstance(delta, str):
                delta = parse_delta(delta)
            self._require_database("apply a delta")
            if self._storage is not None:
                # The durable protocol: journal first, apply second, move
                # the applied-watermark last.  Replay is idempotent, so a
                # crash between any two steps recovers exactly.
                assert self._session.database is not None
                seq = self._storage.journal(delta, self._session.database.version)
                log = self._session.apply_delta(delta)
                self._storage.mark_applied(seq)
            else:
                log = self._session.apply_delta(delta)
        self.deltas_applied += 1
        if self._storage is not None and self._snapshot_interval:
            self._deltas_since_checkpoint += 1
            if self._deltas_since_checkpoint >= self._snapshot_interval:
                self.checkpoint()
        return log

    def checkpoint(self) -> Dict[str, Any]:
        """Write a snapshot of the current state to the storage directory.

        Captures the base extents and (when materialized) the view store's
        derivation counters at the current WAL position, so a later restart
        replays only the log tail.  Returns ``{"path", "seq", "bytes"}``.
        """
        if self._storage is None:
            raise StorageError(
                "this engine has no storage directory; open it with "
                "repro.connect(storage=...) to checkpoint"
            )
        self._require_database("checkpoint")
        assert self._session.database is not None
        info = self._storage.checkpoint(
            self._session.database, self._session.export_store_state()
        )
        self._deltas_since_checkpoint = 0
        return info

    def batch(
        self,
        queries: Union[str, Sequence[QueryInput]],
        with_answers: bool = False,
        processes: int = 1,
    ) -> BatchReport:
        """Process a workload through the engine's configuration.

        ``queries`` is a sequence of queries (text or objects) or one datalog
        program text.  ``processes > 1`` fans out over worker processes, each
        with its own session (see :func:`repro.service.batch.run_batch`).
        """
        if isinstance(queries, str):
            queries = list(parse_program(queries))
        return run_batch(
            list(queries),
            self._session.views,
            database=self._session.database,
            algorithm=self._session.algorithm,
            mode=self._session.mode,
            cache_size=self._session.cache_size,
            use_view_index=self._session.use_view_index,
            with_answers=with_answers,
            processes=processes,
            executor=self._session.executor,
        )

    def stats(self) -> Dict[str, Any]:
        """Catalog, engine counters, and the full session/cache/store state."""
        return {
            "catalog": self._catalog.describe(),
            "queries_served": self.queries_served,
            "deltas_applied": self.deltas_applied,
            "session": self._session.stats(),
            "storage": self.storage_status(),
        }

    def storage_status(self) -> Optional[Dict[str, Any]]:
        """Durability health: backend, WAL position/lag, snapshot freshness.

        None for a plain in-memory engine with no storage attached; the
        server's ``/healthz`` embeds this when present.
        """
        backend = getattr(self._session.database, "backend", None)
        if self._storage is None:
            if backend is None:
                return None
            return {"backend": backend.capabilities.to_dict()}
        status = self._storage.status()
        if backend is not None:
            status["db_backend"] = backend.capabilities.to_dict()
        if self.recovery_report is not None:
            status["recovered"] = True
        return status

    # -- observability -------------------------------------------------------------
    def metrics(self) -> str:
        """The engine's metrics in Prometheus text exposition format.

        Point-in-time gauges (cache occupancy, containment-memo size) are
        refreshed at scrape time; counters and histograms accumulate as the
        engine serves.  Raises when the engine was opened with
        ``observability=False``.
        """
        obs = self._require_observability("render metrics")
        self._refresh_gauges(obs)
        return obs.registry.render()

    def trace(self, trace_id: Optional[str] = None) -> Optional[Trace]:
        """The most recently finished request trace (or one by id).

        Every verb runs under a trace; the returned
        :class:`~repro.obs.Trace` serializes to JSON via ``to_json()``
        (schema: ``docs/trace.schema.json``).  Returns None when nothing has
        been traced yet or the id fell out of the bounded ring.
        """
        obs = self._require_observability("read traces")
        if trace_id is not None:
            return obs.tracer.find(trace_id)
        return obs.tracer.last()

    @property
    def observability(self) -> Optional[Instrumentation]:
        """The engine's instrumentation bundle (None when disabled)."""
        return self._obs

    @property
    def metrics_registry(self) -> MetricsRegistry:
        """The live registry, for servers that add their own series."""
        return self._require_observability("expose a metrics registry").registry

    def _require_observability(self, action: str) -> Instrumentation:
        if self._obs is None:
            raise QueryConstructionError(
                f"this engine was opened with observability=False; cannot {action}"
            )
        return self._obs

    def _request(self, verb: str):
        """The per-verb trace/outcome context (no-op without observability)."""
        if self._obs is None:
            return nullcontext()
        return self._obs.request(verb)

    def _refresh_gauges(self, obs: Instrumentation) -> None:
        """Set the point-in-time gauges from the session's stats snapshot."""
        occupancy = obs.registry.gauge(
            "repro_cache_entries",
            "Current entry count of each bounded cache.",
            labels=("cache",),
        )
        stats = self._session.stats()
        for cache in ("rewrite_cache", "answer_cache", "translation_cache",
                      "containment_cache"):
            entry = stats.get(cache)
            if entry is not None:
                occupancy.labels(cache.removesuffix("_cache")).set(entry["size"])
        memo = stats.get("global.containment_memo")
        if memo is not None:
            occupancy.labels("containment_memo").set(memo["size"])
            obs.registry.gauge(
                "repro_containment_memo_hit_rate",
                "Hit rate of the process-global containment memo.",
            ).set(memo["hit_rate"])

    def check(self) -> Tuple[str, ...]:
        """Re-check integrity constraints; returns violated constraint names."""
        self._require_database("check constraints")
        assert self._session.database is not None
        return self._catalog.check_constraints(self._session.database)

    # -- materialization ----------------------------------------------------------
    def extent(self, view_name: str) -> Any:
        """The maintained extent of one view (materializing on first use)."""
        self._require_database("read view extents")
        return self._session.store().extent(view_name)

    def verify(self) -> list:
        """Cross-check maintained extents against full recomputation."""
        self._require_database("verify view extents")
        return verify_extents(self._session.store())

    # -- introspection ------------------------------------------------------------
    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def views(self):
        return self._session.views

    @property
    def database(self) -> Optional[Database]:
        return self._session.database

    @property
    def session(self) -> RewritingSession:
        """The underlying session (for benchmarks and advanced callers)."""
        return self._session

    @property
    def executor(self) -> str:
        """The configured executor name (``"compiled"`` / ``"interpreted"`` /
        ``"parallel"``)."""
        return self._session.executor

    @property
    def last_cache_hit(self) -> bool:
        """Whether the most recent rewrite/answer was served from cache."""
        return self._session.last_cache_hit

    # -- lifecycle ----------------------------------------------------------------
    @property
    def storage(self) -> Optional[StorageManager]:
        """The storage manager (None without a storage directory)."""
        return self._storage

    def close(self) -> None:
        """Drop every cache and materialization; flush and close storage.

        Without storage the engine stays usable afterwards (the caches
        rebuild); with a storage directory the WAL and backend are closed,
        so further :meth:`apply` calls raise :class:`StorageError`.
        """
        self._session.invalidate()
        if self._storage is not None:
            self._storage.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Engine({self._catalog!r}, data={self.database is not None}, "
            f"executor={self.executor!r})"
        )

    # -- internals ----------------------------------------------------------------
    def _require_database(self, action: str) -> None:
        if self._session.database is None:
            raise MaterializationError(
                f"this engine has no base data attached; cannot {action} "
                "(pass data=... to repro.connect)"
            )

    @staticmethod
    def _plan_target(best: Optional[Rewriting]) -> str:
        if best is not None and best.kind is RewritingKind.EQUIVALENT:
            return SOURCE_VIEWS
        if best is not None and best.kind is RewritingKind.PARTIAL:
            return SOURCE_VIEWS_AND_BASE
        return SOURCE_BASE

    def _rewrite(self, query: ConjunctiveQuery) -> RewritingResult:
        with self._request("rewrite"):
            return self._session.rewrite_cached(query)

    def _answer(self, query: ConjunctiveQuery) -> Answer:
        started = time.perf_counter()
        with self._request("query"):
            self._require_database("answer queries")
            rows, result = self._session.answer_with_plan(query)
        answered_from_cache = self._session.last_answer_from_cache
        self.queries_served += 1
        best = result.best
        source = self._plan_target(best)
        used = best if source != SOURCE_BASE else None
        provenance = Provenance(
            source=source,
            rewriting=to_datalog(used.query) if used is not None else None,
            kind=used.kind.value if used is not None else None,
            algorithm=result.algorithm,
            views_used=used.views_used if used is not None else (),
            cache_hit=self._session.last_cache_hit,
            answered_from_cache=answered_from_cache,
            fingerprint=self._session.last_fingerprint,
            executor=self._session.executor,
        )
        return Answer(
            rows=rows,
            query=to_datalog(query),
            provenance=provenance,
            elapsed=time.perf_counter() - started,
        )

    def _certain(self, query: ConjunctiveQuery, method: str) -> Answer:
        started = time.perf_counter()
        with self._request("certain"):
            instance = self._view_instance
            if instance is None:
                self._require_database(
                    "compute certain answers without a view instance"
                )
                instance = self._session.store().as_database()
            rows = certain_answers(
                query, self._session.views, instance, method=method
            )
        self.queries_served += 1
        provenance = Provenance(
            source=SOURCE_CERTAIN,
            rewriting=None,
            kind=None,
            algorithm=method,
            views_used=self._session.views.names(),
            cache_hit=False,
            fingerprint="",
            executor=self._session.executor,
        )
        return Answer(
            rows=rows,
            query=to_datalog(query),
            provenance=provenance,
            elapsed=time.perf_counter() - started,
        )

    def _explain(self, query: ConjunctiveQuery) -> Explanation:
        with self._request("explain"):
            return self._explain_uncounted(query)

    def _explain_uncounted(self, query: ConjunctiveQuery) -> Explanation:
        answer_cached = (
            self._session.database is not None
            and self._session.has_cached_answer(query)
        )
        result = self._session.rewrite_cached(query)
        rewrite_hit = self._session.last_cache_hit
        best = result.best
        choice = RewritingChoice(
            found=best is not None,
            chosen=to_datalog(best.query) if best is not None else None,
            kind=best.kind.value if best is not None else None,
            algorithm=result.algorithm,
            views_used=best.views_used if best is not None else (),
            candidates_examined=result.candidates_examined,
            cache_hit=rewrite_hit,
            alternatives=tuple(
                RewritingAlternative(
                    query=to_datalog(r.query),
                    kind=r.kind.value,
                    views_used=r.views_used,
                )
                for r in result.rewritings
                if r is not best
            ),
        )
        evaluation, materialization = self._describe_evaluation(query, best)
        executor = self._session.evaluation_executor
        executor_stats = executor.stats()
        caches = CacheReport(
            rewrite_cache_hit=rewrite_hit,
            answer_cached=answer_cached,
            plan_hits=executor_stats.get("plan_hits", 0),
            plan_misses=executor_stats.get("plan_misses", 0),
        )
        return Explanation(
            query=to_datalog(query),
            fingerprint=self._session.last_fingerprint,
            algorithm=self._session.algorithm,
            mode=self._session.mode,
            rewriting=choice,
            evaluation=evaluation,
            caches=caches,
            materialization=materialization,
        )

    def _describe_evaluation(
        self, query: ConjunctiveQuery, best: Optional[Rewriting]
    ) -> Tuple[Evaluation, Optional[Dict[str, Any]]]:
        executor_name = self._session.executor
        if self._session.database is None:
            return Evaluation(target="none", executor=executor_name, plans=()), None
        target = self._plan_target(best)
        if target == SOURCE_VIEWS:
            plan_query: "ConjunctiveQuery | UnionQuery" = best.query  # type: ignore[union-attr]
            plan_db = self._session.store().as_database()
        elif target == SOURCE_VIEWS_AND_BASE:
            plan_query = best.query  # type: ignore[union-attr]
            assert self._session.database is not None
            plan_db = self._session.store().as_database().merge(self._session.database)
        else:
            plan_query = query
            plan_db = self._session.database
        disjuncts = (
            plan_query.disjuncts
            if isinstance(plan_query, UnionQuery)
            else (plan_query,)
        )
        executor = self._session.evaluation_executor
        plans = tuple(
            self._describe_plan(disjunct, plan_db, executor)
            for disjunct in disjuncts
        )
        materialization = None
        if target in (SOURCE_VIEWS, SOURCE_VIEWS_AND_BASE):
            materialization = self._session.store().stats()
        return Evaluation(target=target, executor=executor_name, plans=plans), materialization

    @staticmethod
    def _describe_plan(
        disjunct: ConjunctiveQuery, database: Database, executor: Any
    ) -> PlanDescription:
        text = to_datalog(disjunct)
        # Both the serial compiled executor and the parallel executor (which
        # composes one) expose plan_for; the interpreter does not.
        if not hasattr(executor, "plan_for"):
            return PlanDescription(disjunct=text, strategy="interpreted")
        hits_before = executor.plan_hits
        try:
            plan = executor.plan_for(disjunct, database)
        except EvaluationError:
            return PlanDescription(disjunct=text, strategy="interpreted")
        cache_hit = executor.plan_hits > hits_before
        if plan is None:
            return PlanDescription(
                disjunct=text, strategy="interpreted", cache_hit=cache_hit
            )
        if plan.always_empty:
            return PlanDescription(
                disjunct=text, strategy="empty", cache_hit=cache_hit
            )
        steps = []
        for index, step in enumerate(plan.steps):
            if step.key_positions:
                operator = "hash_join" if index else "scan"
            else:
                operator = "scan" if index == 0 else "product"
            steps.append(
                PlanStep(
                    operator=operator,
                    predicate=step.predicate,
                    arity=step.arity,
                    key_positions=step.key_positions,
                    filters=len(step.filters),
                )
            )
        return PlanDescription(
            disjunct=text,
            strategy="compiled",
            steps=tuple(steps),
            cache_hit=cache_hit,
        )
