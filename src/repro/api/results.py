"""Typed results returned by the :mod:`repro.api` facade.

Two result objects cover the whole lifecycle:

* :class:`Answer` — the rows of a query plus the *provenance* of how they
  were produced: which rewriting (if any) was evaluated, over which instance
  (materialized views, views plus base relations, or the base database
  directly), whether the serving caches were hit, and by which executor.
* :class:`Explanation` — a structured, JSON-serializable tree describing the
  decision chain for one query: the rewriting choice (chosen plan,
  alternatives, candidates examined) → the physical plan steps each disjunct
  compiles to → the cache and materialization state the request would hit.

Both are plain frozen dataclasses with ``to_json()`` producing only JSON
types (dict/list/str/int/float/bool/None); the explanation format is pinned
by ``docs/explanation.schema.json`` and validated in ``tests/api``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple

#: Where an answer's rows were computed.
SOURCE_VIEWS = "views"
SOURCE_VIEWS_AND_BASE = "views+base"
SOURCE_BASE = "base"
SOURCE_CERTAIN = "certain"

ANSWER_SOURCES = (SOURCE_VIEWS, SOURCE_VIEWS_AND_BASE, SOURCE_BASE, SOURCE_CERTAIN)


@dataclass(frozen=True)
class Provenance:
    """How an :class:`Answer` was produced."""

    #: One of :data:`ANSWER_SOURCES`: the instance the rows came from.
    source: str
    #: Datalog text of the rewriting that was evaluated (``None`` when the
    #: query ran directly over the base database, or for certain answers).
    rewriting: Optional[str]
    #: The rewriting's kind (``"equivalent"``, ``"partial"``, ...), if any.
    kind: Optional[str]
    #: Rewriting algorithm (or certain-answer method) that produced the plan.
    algorithm: str
    #: Names of the views the plan reads.
    views_used: Tuple[str, ...] = ()
    #: Whether the rewriting was served from the session's fingerprint cache.
    cache_hit: bool = False
    #: Whether the *rows* came straight from the answer cache (no evaluation).
    answered_from_cache: bool = False
    #: Canonical fingerprint of the query (empty for certain answers).
    fingerprint: str = ""
    #: Name of the executor that evaluated the plan.
    executor: str = ""

    def to_json(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "rewriting": self.rewriting,
            "kind": self.kind,
            "algorithm": self.algorithm,
            "views_used": list(self.views_used),
            "cache_hit": self.cache_hit,
            "answered_from_cache": self.answered_from_cache,
            "fingerprint": self.fingerprint,
            "executor": self.executor,
        }


@dataclass(frozen=True)
class Answer:
    """The rows of one query plus the provenance that produced them.

    Behaves like a read-only set of tuples (iteration, ``len``, ``in``) so
    callers migrating from raw ``evaluate()`` results keep working.
    """

    rows: FrozenSet[Tuple[Any, ...]]
    query: str
    provenance: Provenance
    elapsed: float = 0.0

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: object) -> bool:
        return row in self.rows

    def __bool__(self) -> bool:
        return bool(self.rows)

    def sorted_rows(self) -> List[Tuple[Any, ...]]:
        """The rows in a stable, printable order."""
        return sorted(self.rows, key=repr)

    def to_json(self) -> Dict[str, Any]:
        return {
            "query": self.query,
            "rows": [list(row) for row in self.sorted_rows()],
            "count": len(self.rows),
            "provenance": self.provenance.to_json(),
            "elapsed": self.elapsed,
        }

    def __repr__(self) -> str:
        return (
            f"Answer({len(self.rows)} rows, source={self.provenance.source!r}, "
            f"cache_hit={self.provenance.cache_hit})"
        )


# ---------------------------------------------------------------------------
# Explanation tree
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RewritingAlternative:
    """One non-chosen rewriting the algorithm also found."""

    query: str
    kind: str
    views_used: Tuple[str, ...] = ()

    def to_json(self) -> Dict[str, Any]:
        return {
            "query": self.query,
            "kind": self.kind,
            "views_used": list(self.views_used),
        }


@dataclass(frozen=True)
class RewritingChoice:
    """The rewriting layer of an explanation: what was chosen and why."""

    found: bool
    chosen: Optional[str]
    kind: Optional[str]
    algorithm: str
    views_used: Tuple[str, ...]
    candidates_examined: int
    cache_hit: bool
    alternatives: Tuple[RewritingAlternative, ...] = ()

    def to_json(self) -> Dict[str, Any]:
        return {
            "found": self.found,
            "chosen": self.chosen,
            "kind": self.kind,
            "algorithm": self.algorithm,
            "views_used": list(self.views_used),
            "candidates_examined": self.candidates_examined,
            "cache_hit": self.cache_hit,
            "alternatives": [alt.to_json() for alt in self.alternatives],
        }


@dataclass(frozen=True)
class PlanStep:
    """One physical operator in a compiled pipeline."""

    #: ``"scan"`` (first step, no key), ``"hash_join"`` (indexed probe) or
    #: ``"product"`` (keyless non-first step — a cartesian product).
    operator: str
    predicate: str
    arity: int
    key_positions: Tuple[int, ...] = ()
    filters: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "operator": self.operator,
            "predicate": self.predicate,
            "arity": self.arity,
            "key_positions": list(self.key_positions),
            "filters": self.filters,
        }


@dataclass(frozen=True)
class PlanDescription:
    """The physical plan of one conjunctive disjunct."""

    disjunct: str
    #: ``"compiled"`` (set-at-a-time pipeline), ``"interpreted"`` (the
    #: backtracking interpreter — by choice or compiler fallback) or
    #: ``"empty"`` (a ground comparison is false; no rows possible).
    strategy: str
    steps: Tuple[PlanStep, ...] = ()
    cache_hit: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "disjunct": self.disjunct,
            "strategy": self.strategy,
            "steps": [step.to_json() for step in self.steps],
            "cache_hit": self.cache_hit,
        }


@dataclass(frozen=True)
class Evaluation:
    """The execution layer of an explanation."""

    #: ``"views"``, ``"views+base"``, ``"base"`` — or ``"none"`` when the
    #: engine has no data attached and nothing would be evaluated.
    target: str
    executor: str
    plans: Tuple[PlanDescription, ...] = ()

    def to_json(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "executor": self.executor,
            "plans": [plan.to_json() for plan in self.plans],
        }


@dataclass(frozen=True)
class CacheReport:
    """Cache state relevant to one explained request."""

    rewrite_cache_hit: bool
    answer_cached: bool
    plan_hits: int = 0
    plan_misses: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "rewrite_cache_hit": self.rewrite_cache_hit,
            "answer_cached": self.answer_cached,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
        }


@dataclass(frozen=True)
class Explanation:
    """A structured, JSON-serializable explanation of one query's lifecycle.

    The tree reads top-down the way a request flows: the rewriting choice,
    then the physical plans the chosen rewriting compiles to, then the cache
    and materialization state serving the request.
    """

    query: str
    fingerprint: str
    algorithm: str
    mode: str
    rewriting: RewritingChoice
    evaluation: Evaluation
    caches: CacheReport
    materialization: Optional[Dict[str, Any]] = field(default=None)

    def to_json(self) -> Dict[str, Any]:
        """A dict of pure JSON types (see ``docs/explanation.schema.json``)."""
        return {
            "query": self.query,
            "fingerprint": self.fingerprint,
            "algorithm": self.algorithm,
            "mode": self.mode,
            "rewriting": self.rewriting.to_json(),
            "evaluation": self.evaluation.to_json(),
            "caches": self.caches.to_json(),
            "materialization": self.materialization,
        }

    def to_text(self) -> str:
        """A human-readable tree rendering (what ``repro explain`` prints)."""
        lines = [f"query: {self.query}"]
        lines.append(f"  fingerprint: {self.fingerprint}")
        choice = self.rewriting
        tag = " [cached]" if choice.cache_hit else ""
        lines.append(
            f"  rewriting ({choice.algorithm}, {self.mode}, "
            f"{choice.candidates_examined} candidates examined){tag}:"
        )
        if choice.found:
            lines.append(f"    chosen [{choice.kind}]: {choice.chosen}")
            if choice.views_used:
                lines.append(f"    views used: {', '.join(choice.views_used)}")
            for alt in choice.alternatives:
                lines.append(f"    alternative [{alt.kind}]: {alt.query}")
        else:
            lines.append("    no rewriting found")
        lines.append(
            f"  evaluation (target={self.evaluation.target}, "
            f"executor={self.evaluation.executor}):"
        )
        for plan in self.evaluation.plans:
            tag = " [plan cached]" if plan.cache_hit else ""
            lines.append(f"    plan [{plan.strategy}]{tag}: {plan.disjunct}")
            for step in plan.steps:
                key = (
                    f" key={list(step.key_positions)}" if step.key_positions else ""
                )
                filters = f" filters={step.filters}" if step.filters else ""
                lines.append(
                    f"      {step.operator} {step.predicate}/{step.arity}{key}{filters}"
                )
        caches = self.caches
        lines.append(
            f"  caches: rewrite_hit={caches.rewrite_cache_hit} "
            f"answer_cached={caches.answer_cached} "
            f"plans={caches.plan_hits}h/{caches.plan_misses}m"
        )
        if self.materialization is not None:
            lines.append(
                f"  materialization: {self.materialization.get('views', 0)} views, "
                f"{self.materialization.get('extent_rows', 0)} extent rows, "
                f"{self.materialization.get('deltas_applied', 0)} deltas applied"
            )
        return "\n".join(lines)
