"""The :class:`Catalog`: schema + views + integrity constraints, validated once.

A catalog is the static half of an :class:`~repro.api.engine.Engine`: the
relation schema (name → arity), the view definitions available for rewriting,
and optional integrity constraints.  Everything is cross-validated **once at
construction** so queries, data and deltas can be checked cheaply per request
against a catalog known to be coherent:

* every base predicate used by a view body has one consistent arity, across
  views and against the declared schema;
* when a schema is declared explicitly, views may only mention declared
  relations (catching typos at attach time instead of as empty answers);
* view names cannot shadow base relations;
* constraints are *denial constraints* — boolean conjunctive queries (heads
  of arity 0) that must be **false** on valid data, e.g.
  ``same_course_twice() :- enrolled(S, C), enrolled(S, C2), C != C2.``

The catalog is immutable; engines share it freely.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.errors import QueryConstructionError, SchemaError
from repro.datalog.parser import parse_program, parse_views
from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.datalog.views import View, ViewSet
from repro.engine.database import Database

SchemaLike = Union[None, Mapping[str, int], Iterable[str], str]
ViewsLike = Union[ViewSet, Iterable[View], str, None]
ConstraintsLike = Union[None, str, Iterable[ConjunctiveQuery]]


def _parse_schema(schema: SchemaLike) -> Optional[Dict[str, int]]:
    """Normalize a schema argument to ``{relation: arity}`` (or None)."""
    if schema is None:
        return None
    if isinstance(schema, Mapping):
        out = dict(schema)
    else:
        entries = schema.split() if isinstance(schema, str) else list(schema)
        out = {}
        for entry in entries:
            name, sep, arity_text = str(entry).partition("/")
            if not sep or not name:
                raise SchemaError(
                    f"schema entry {entry!r} must look like 'relation/arity'"
                )
            try:
                out[name] = int(arity_text)
            except ValueError:
                raise SchemaError(
                    f"schema entry {entry!r} has a non-integer arity"
                ) from None
    for name, arity in out.items():
        if not isinstance(arity, int) or arity < 0:
            raise SchemaError(f"relation {name} has invalid arity {arity!r}")
    return out


def as_view_set(views: ViewsLike) -> ViewSet:
    """Normalize a views argument (datalog text, iterable, or ViewSet)."""
    if views is None:
        return ViewSet()
    if isinstance(views, ViewSet):
        return views
    if isinstance(views, str):
        return parse_views(views)
    return ViewSet(list(views))


def _as_constraints(constraints: ConstraintsLike) -> Tuple[ConjunctiveQuery, ...]:
    if constraints is None:
        return ()
    if isinstance(constraints, str):
        parsed: Iterable[ConjunctiveQuery] = parse_program(constraints)
    else:
        parsed = constraints
    out = []
    for constraint in parsed:
        if not isinstance(constraint, ConjunctiveQuery):
            raise QueryConstructionError(
                f"constraints must be conjunctive queries, got {constraint!r}"
            )
        if not constraint.is_boolean:
            raise QueryConstructionError(
                f"constraint {constraint.name} must be boolean (a denial "
                "constraint with an empty head); it has arity "
                f"{constraint.arity}"
            )
        out.append(constraint)
    return tuple(out)


class Catalog:
    """Schema, views and integrity constraints — the engine's static state."""

    __slots__ = ("views", "schema", "declared", "constraints")

    def __init__(
        self,
        schema: SchemaLike = None,
        views: ViewsLike = None,
        constraints: ConstraintsLike = None,
        data_schema: Optional[Mapping[str, int]] = None,
    ):
        view_set = as_view_set(views)
        declared = _parse_schema(schema)
        object.__setattr__(self, "views", view_set)
        object.__setattr__(self, "declared", declared)
        object.__setattr__(self, "constraints", _as_constraints(constraints))
        object.__setattr__(
            self, "schema", self._build_schema(declared, view_set, data_schema)
        )
        self._validate()

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("Catalog is immutable")

    # -- construction-time validation -------------------------------------------
    @staticmethod
    def _build_schema(
        declared: Optional[Dict[str, int]],
        views: ViewSet,
        data_schema: Optional[Mapping[str, int]],
    ) -> Dict[str, int]:
        """The effective schema: declared ∪ inferred-from-views ∪ data relations."""
        schema: Dict[str, int] = dict(declared or {})
        for view in views:
            for atom in view.body:
                name, arity = atom.predicate, len(atom.args)
                known = schema.get(name)
                if known is None:
                    if declared is not None:
                        raise SchemaError(
                            f"view {view.name} uses undeclared relation {name}/{arity}; "
                            f"declared relations: "
                            f"{', '.join(sorted(declared)) or '(none)'}"
                        )
                    schema[name] = arity
                elif known != arity:
                    raise SchemaError(
                        f"view {view.name} uses {name} with arity {arity}, "
                        f"but {name} has arity {known}"
                    )
        for name, arity in (data_schema or {}).items():
            known = schema.get(name)
            if known is None:
                if name not in views:
                    schema[name] = arity
            elif known != arity:
                raise SchemaError(
                    f"attached data has {name} with arity {arity}, "
                    f"but the catalog declares arity {known}"
                )
        return schema

    def _validate(self) -> None:
        for view in self.views:
            if view.name in self.schema:
                raise SchemaError(
                    f"view {view.name} shadows a base relation of the same name"
                )
        for constraint in self.constraints:
            for name, arity in constraint.predicates():
                self._check_predicate(
                    name, arity, f"constraint {constraint.name}"
                )

    def _check_predicate(self, name: str, arity: int, context: str) -> None:
        view = self.views.get(name)
        if view is not None:
            if view.arity != arity:
                raise SchemaError(
                    f"{context} uses view {name} with arity {arity}, "
                    f"but it has arity {view.arity}"
                )
            return
        known = self.schema.get(name)
        if known is None:
            # Only a *declared* schema closes the world; an inferred one
            # (views + data) cannot claim completeness, and querying a
            # relation nothing mentions yet is legitimately empty.
            if self.declared is not None:
                raise SchemaError(
                    f"{context} uses undeclared relation {name}/{arity}; "
                    f"declared relations: "
                    f"{', '.join(sorted(self.declared)) or '(none)'}; "
                    f"views: {', '.join(self.views.names()) or '(none)'}"
                )
            return
        if known != arity:
            raise SchemaError(
                f"{context} uses {name} with arity {arity}, "
                f"but {name} has arity {known}"
            )

    # -- per-request validation ---------------------------------------------------
    def validate_query(self, query: "ConjunctiveQuery | UnionQuery") -> None:
        """Check every predicate a query uses against the catalog.

        Unknown predicates and arity mismatches raise :class:`SchemaError`
        with the known relations listed — at query time, not as silently
        empty answers.
        """
        for name, arity in query.predicates():
            self._check_predicate(name, arity, f"query {query.name}")

    def validate_database(self, database: Database) -> None:
        """Check an attached base database's relations against the schema.

        Reads only the database's schema (names and arities) — never row
        content — so validating a storage-backed database stays lazy.
        """
        for name, arity in database.schema().items():
            known = self.schema.get(name)
            if known is not None and known != arity:
                raise SchemaError(
                    f"attached data has {name} with arity "
                    f"{arity}, but the catalog declares arity {known}"
                )
            if name in self.views:
                raise SchemaError(
                    f"attached base data contains relation {name}, "
                    "which is a view name (did you mean view_instance=?)"
                )

    def validate_view_instance(self, instance: Database) -> None:
        """Check a view instance: every relation must be a view, arity-correct."""
        for relation in instance.relations():
            view = self.views.get(relation.name)
            if view is None:
                raise SchemaError(
                    f"view instance contains {relation.name}/{relation.arity}, "
                    f"which is not a view; views: "
                    f"{', '.join(self.views.names()) or '(none)'}"
                )
            if view.arity != relation.arity:
                raise SchemaError(
                    f"view instance has {relation.name} with arity "
                    f"{relation.arity}, but the view has arity {view.arity}"
                )

    def check_constraints(self, database: Database) -> Tuple[str, ...]:
        """Names of denial constraints that are violated on ``database``."""
        from repro.engine.evaluate import evaluate_boolean  # avoid an import cycle

        return tuple(
            constraint.name
            for constraint in self.constraints
            if evaluate_boolean(constraint, database)
        )

    # -- introspection -------------------------------------------------------------
    def relations(self) -> Tuple[str, ...]:
        return tuple(sorted(self.schema))

    def is_view(self, name: str) -> bool:
        return name in self.views

    def describe(self) -> Dict[str, Any]:
        """A machine-readable snapshot (nested under ``engine.stats()``)."""
        return {
            "relations": {name: self.schema[name] for name in sorted(self.schema)},
            "declared": sorted(self.declared) if self.declared is not None else None,
            "views": list(self.views.names()),
            "constraints": [c.name for c in self.constraints],
        }

    def __repr__(self) -> str:
        return (
            f"Catalog(relations={len(self.schema)}, views={len(self.views)}, "
            f"constraints={len(self.constraints)})"
        )
