"""A small registry mapping experiment ids (E1..E17) to their descriptions.

The registry exists so ``benchmarks/`` and ``EXPERIMENTS.md`` agree on what
each experiment id means; benchmark modules register themselves at import
time and the documentation generator can enumerate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class Experiment:
    """Metadata describing one reproduced table or figure."""

    #: Stable identifier, e.g. ``"E4"``.
    id: str
    #: One-line description of what the experiment reproduces.
    title: str
    #: "table" or "figure" — the artefact shape in the evaluation.
    artefact: str
    #: The paper claim the experiment checks (free text, mirrors DESIGN.md).
    claim: str
    #: Name of the benchmark module that regenerates it.
    bench_module: str


_REGISTRY: Dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Register an experiment (idempotent for identical registrations)."""
    existing = _REGISTRY.get(experiment.id)
    if existing is not None and existing != experiment:
        raise ValueError(f"conflicting registration for experiment {experiment.id}")
    _REGISTRY[experiment.id] = experiment
    return experiment


def get_experiment(experiment_id: str) -> Optional[Experiment]:
    return _REGISTRY.get(experiment_id)


def all_experiments() -> List[Experiment]:
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


# Pre-register the full experiment index (mirrors DESIGN.md §4).
EXPERIMENTS = [
    Experiment("E1", "Paper worked examples: equivalent rewritings found and verified", "table",
               "Complete rewritings exist for the running examples and are verified by expansion",
               "benchmarks/bench_e1_paper_examples.py"),
    Experiment("E2", "Rewriting-length bound (R1)", "table",
               "If a complete rewriting exists, one exists with at most n view subgoals",
               "benchmarks/bench_e2_length_bound.py"),
    Experiment("E3", "NP-hardness scaling of rewriting existence (R2)", "figure",
               "Exhaustive rewriting-existence cost grows exponentially with query size",
               "benchmarks/bench_e3_np_scaling.py"),
    Experiment("E4", "Rewriting time vs number of views — chain queries", "figure",
               "MiniCon scales better than the bucket algorithm as views are added",
               "benchmarks/bench_e4_chain_views.py"),
    Experiment("E5", "Rewriting time vs number of views — star queries", "figure",
               "Same ordering as E4 on star-shaped queries",
               "benchmarks/bench_e5_star_views.py"),
    Experiment("E6", "Rewriting time vs number of views — complete queries", "figure",
               "Single-relation clique queries are the hardest shape for all algorithms",
               "benchmarks/bench_e6_complete_views.py"),
    Experiment("E7", "Query-optimization benefit of rewriting over views (R4)", "table",
               "Answering through materialized views is cheaper than the base-relation plan",
               "benchmarks/bench_e7_optimization.py"),
    Experiment("E8", "Rewriting with comparison predicates (R3)", "table",
               "Rewriting existence and verification remain decidable with comparisons",
               "benchmarks/bench_e8_comparisons.py"),
    Experiment("E9", "Maximally-contained rewritings and certain answers (R5)", "table",
               "MiniCon/bucket unions and inverse rules agree on certain answers",
               "benchmarks/bench_e9_certain_answers.py"),
    Experiment("E10", "Ablation: MiniCon MCD pruning vs bucket cross-product", "table",
               "MCDs prune the candidate space that the bucket algorithm enumerates",
               "benchmarks/bench_e10_ablation_mcd.py"),
    Experiment("E11", "Service throughput: fingerprint cache vs one-shot rewriting", "table",
               "A warm RewritingSession serves repeated (isomorphic) workload queries "
               "at >=5x the throughput of the cold path, with identical results",
               "benchmarks/bench_e11_service_throughput.py"),
    Experiment("E12", "Incremental view maintenance vs full recomputation under churn", "table",
               "Counting delta rules maintain view extents exactly (deletions included) "
               ">=5x faster than recomputation on small deltas, and delta-scoped cache "
               "invalidation beats the coarse version-counter flush on hit rate",
               "benchmarks/bench_e12_incremental_maintenance.py"),
    Experiment("E13", "Compiled set-at-a-time execution vs the backtracking interpreter", "table",
               "The compiled physical-plan executor answers chain/star/complete workload "
               "queries >=3x faster than the tuple-at-a-time interpreter, with identical "
               "answer sets on every measured query",
               "benchmarks/bench_e13_execution_engine.py"),
    Experiment("E14", "Cold-path rewriting: indexed containment search + memo vs naive reference", "table",
               "A cold maximally-contained rewriting request through the indexed "
               "homomorphism search, containment memo and expansion cache runs >=3x "
               "faster than the retained naive reference pipeline on chain/star/complete "
               "workloads at growing view counts, with identical rewritings and answers",
               "benchmarks/bench_e14_cold_rewriting.py"),
    Experiment("E15", "Concurrent serving latency through the HTTP layer", "table",
               "The instrumented HTTP server sustains mixed cold/warm workloads at "
               "growing client concurrency with warm p50 at concurrency 8 within 2x "
               "the single-client warm p50, coalesces concurrent identical queries, "
               "and the observability layer costs <=5% on E13-style execution",
               "benchmarks/bench_e15_serving_latency.py"),
    Experiment("E16", "Partitioned parallel hash joins vs serial compiled execution", "table",
               "Hash-partitioning the probe pipeline across 4 forked workers answers "
               "million-fact chain/star workload queries >=2.5x faster than the serial "
               "compiled engine (enforced on hosts with >=4 cores), with identical "
               "answer sets on every measured query and no silent serial fallbacks",
               "benchmarks/bench_e16_parallel_scaling.py"),
    Experiment("E17", "Durability: crash recovery and snapshot-accelerated replay", "table",
               "After a simulated crash, restart-replay recovery (write-ahead delta log "
               "over a pluggable backend) restores a million-fact engine with zero probe "
               "or view-extent mismatches vs the never-crashed writer, and recovering "
               "from a snapshot plus the WAL tail is >=3x faster than full replay",
               "benchmarks/bench_e17_durability.py"),
]

for _experiment in EXPERIMENTS:
    register(_experiment)
