"""Timing helpers used by the benchmark harness.

A single mean hides exactly the behavior a serving benchmark cares about
(cold-start spikes, GC pauses, scheduler noise), so every harness records the
per-repetition wall-clock samples and summarizes them with
:func:`sample_stats` — min / median / p90 plus mean — in its ``BENCH_*.json``.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by linear interpolation.

    Matches ``statistics.quantiles(..., method="inclusive")`` at its cut
    points but accepts any q, including a single-sample list (where every
    quantile is that sample).
    """
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def sample_stats(samples: Sequence[float]) -> Dict[str, float]:
    """The summary emitted into ``BENCH_*.json`` for a list of seconds.

    Keys are stable schema: ``count``, ``min``, ``median``, ``p90``, ``mean``,
    ``max`` — all seconds except ``count``.
    """
    if not samples:
        return {"count": 0}
    return {
        "count": len(samples),
        "min": min(samples),
        "median": statistics.median(samples),
        "p90": percentile(samples, 0.90),
        "mean": statistics.fmean(samples),
        "max": max(samples),
    }


@dataclass
class Measurement:
    """Wall-clock timings (seconds) of repeated calls plus the last return value."""

    label: str
    timings: List[float] = field(default_factory=list)
    result: Any = None

    @property
    def best(self) -> float:
        return min(self.timings) if self.timings else float("nan")

    @property
    def mean(self) -> float:
        return statistics.fmean(self.timings) if self.timings else float("nan")

    @property
    def median(self) -> float:
        return statistics.median(self.timings) if self.timings else float("nan")

    @property
    def p90(self) -> float:
        return percentile(self.timings, 0.90)

    @property
    def stdev(self) -> float:
        return statistics.pstdev(self.timings) if len(self.timings) > 1 else 0.0

    def summary(self) -> Dict[str, float]:
        """The :func:`sample_stats` summary of this measurement's timings."""
        return sample_stats(self.timings)

    def __str__(self) -> str:
        return f"{self.label}: median {self.median * 1000:.2f} ms over {len(self.timings)} runs"


def time_call(
    function: Callable[..., Any],
    *args: Any,
    repeat: int = 3,
    label: str = "",
    **kwargs: Any,
) -> Measurement:
    """Call ``function`` ``repeat`` times and record wall-clock timings.

    The value returned by the last call is kept in ``Measurement.result`` so
    benchmarks can both time a computation and report facts about its output
    (e.g. the number of rewritings found).
    """
    measurement = Measurement(label=label or getattr(function, "__name__", "call"))
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        value = function(*args, **kwargs)
        measurement.timings.append(time.perf_counter() - started)
        measurement.result = value
    return measurement
