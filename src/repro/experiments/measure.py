"""Timing helpers used by the benchmark harness."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Tuple


@dataclass
class Measurement:
    """Wall-clock timings (seconds) of repeated calls plus the last return value."""

    label: str
    timings: List[float] = field(default_factory=list)
    result: Any = None

    @property
    def best(self) -> float:
        return min(self.timings) if self.timings else float("nan")

    @property
    def mean(self) -> float:
        return statistics.fmean(self.timings) if self.timings else float("nan")

    @property
    def median(self) -> float:
        return statistics.median(self.timings) if self.timings else float("nan")

    @property
    def stdev(self) -> float:
        return statistics.pstdev(self.timings) if len(self.timings) > 1 else 0.0

    def __str__(self) -> str:
        return f"{self.label}: median {self.median * 1000:.2f} ms over {len(self.timings)} runs"


def time_call(
    function: Callable[..., Any],
    *args: Any,
    repeat: int = 3,
    label: str = "",
    **kwargs: Any,
) -> Measurement:
    """Call ``function`` ``repeat`` times and record wall-clock timings.

    The value returned by the last call is kept in ``Measurement.result`` so
    benchmarks can both time a computation and report facts about its output
    (e.g. the number of rewritings found).
    """
    measurement = Measurement(label=label or getattr(function, "__name__", "call"))
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        value = function(*args, **kwargs)
        measurement.timings.append(time.perf_counter() - started)
        measurement.result = value
    return measurement
