"""ASCII tables and series ("figures") for the benchmark harness output."""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Sequence


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Sequence[Any]], headers: Sequence[str], title: str = "") -> str:
    """Render a fixed-width ASCII table (the benchmarks' "paper table" output)."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[Any],
    x_label: str = "x",
    title: str = "",
) -> str:
    """Render one or more named series over common x values (a textual "figure").

    Output is a table with one row per x value and one column per series,
    which is the form recorded in ``EXPERIMENTS.md`` for every figure.
    """
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(x_values):
        row: List[Any] = [x]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else float("nan"))
        rows.append(row)
    return format_table(rows, headers, title=title)
