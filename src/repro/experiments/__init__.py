"""Experiment harness: measurement helpers and table/series formatting.

The benchmark scripts under ``benchmarks/`` use this package to time the
rewriting algorithms over generated workloads and to print the tables and
figure series recorded in ``EXPERIMENTS.md``.
"""

from repro.experiments.measure import (
    Measurement,
    percentile,
    sample_stats,
    time_call,
)
from repro.experiments.tables import format_series, format_table
from repro.experiments.registry import Experiment, all_experiments, get_experiment, register

__all__ = [
    "Experiment",
    "Measurement",
    "all_experiments",
    "format_series",
    "format_table",
    "get_experiment",
    "percentile",
    "register",
    "sample_stats",
    "time_call",
]
