"""A threaded HTTP/JSON front end over one :class:`repro.api.Engine`.

Stdlib only (:mod:`http.server` + :mod:`concurrent.futures`): the container
bakes in no web framework, and the engine's work is CPU-bound Python anyway —
what a front end must add is *discipline*, not parallel compute:

* **Bounded concurrency.**  POST work runs on a fixed worker pool; the
  admission count (submitted, not yet finished) is capped by ``queue_limit``
  and exported as the ``repro_server_queue_depth`` gauge.  A request arriving
  above the cap is rejected immediately with **503** and a ``Retry-After``
  hint — the server sheds load instead of queueing unboundedly.
* **In-flight coalescing.**  Identical queries are recognized by their
  canonical fingerprint (:mod:`repro.service.fingerprint` — renaming- and
  subgoal-order-invariant).  While one is being computed, followers share its
  future instead of submitting duplicate work; ``repro_server_coalesced_total``
  counts the collapsed requests and each follower's response carries
  ``"coalesced": true``.
* **Serialized engine access.**  The engine's caches are not thread-safe, so
  one lock guards every engine verb.  Under coalescing plus answer caches the
  critical section is microseconds for warm traffic; the pool exists to keep
  slow cold requests from blocking the accept loop, not to parallelize the
  GIL-bound engine.
* **Tracing.**  Every request gets a trace id, echoed in the
  ``X-Repro-Trace-Id`` header and the JSON body.  Requests that reach the
  engine reuse the engine trace's id, so ``engine.trace(trace_id)`` (and
  ``POST /query`` with ``"trace": true``) can return the full span tree.
* **Graceful drain.**  :meth:`ReproServer.shutdown` stops accepting, lets
  in-flight work finish, then closes the socket; the CLI wires SIGINT/SIGTERM
  to it so ``repro serve --http`` exits 0 under supervision.

Endpoints (all JSON unless noted):

=======================  =====================================================
``POST /query``          ``{"query": str, "trace"?: bool}`` → rows +
                         provenance (rewriting-only when the engine has no
                         base data)
``POST /explain``        ``{"query": str}`` → the explanation tree
                         (``docs/explanation.schema.json``)
``POST /apply-delta``    ``{"delta": str}`` → the change log
``GET /stats``           the full ``engine.stats()`` snapshot
``GET /metrics``         Prometheus text exposition (``text/plain``)
``GET /healthz``         liveness + drain state
=======================  =====================================================
"""

from __future__ import annotations

import json
import socket
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.api.engine import Engine
from repro.obs.trace import _new_trace_id
from repro.service.fingerprint import fingerprint

__all__ = ["ReproServer", "serve_http"]

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Seconds a handler waits on a worker future before giving up (504).
DEFAULT_RESULT_TIMEOUT = 120.0


class _Overloaded(Exception):
    """Raised when admission control rejects a request (mapped to 503)."""


class ReproServer:
    """The HTTP serving layer over one engine; see the module docs.

    Parameters
    ----------
    engine:
        An :class:`repro.api.Engine` opened with observability (the default);
        the server declares its own metric series on the engine's registry so
        one scrape covers both layers.
    host / port:
        Bind address; port 0 picks a free port (read :attr:`port` after
        construction).
    workers:
        Worker-pool threads executing POST work.
    queue_limit:
        Maximum submitted-but-unfinished POST requests before 503s.
    """

    def __init__(
        self,
        engine: Engine,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        queue_limit: int = 32,
        result_timeout: float = DEFAULT_RESULT_TIMEOUT,
    ):
        obs = engine.observability
        if obs is None:
            raise ReproError(
                "the HTTP server needs an instrumented engine; open it with "
                "observability=True (the repro.connect default)"
            )
        self._engine = engine
        self._obs = obs
        self.workers = max(1, int(workers))
        self.queue_limit = max(1, int(queue_limit))
        self.result_timeout = result_timeout
        self._engine_lock = threading.RLock()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-http"
        )
        self._admission_lock = threading.Lock()
        self._pending = 0
        self._inflight: Dict[Tuple[str, str], Future] = {}
        # Query text -> canonical fingerprint text (or None for unparseable
        # bodies).  Parsing on the handler thread just to build the coalescing
        # key would tax every warm request; templated traffic repeats a small
        # set of texts, so a bounded FIFO memo removes that cost.
        self._fingerprint_cache: Dict[str, Optional[str]] = {}
        self._fingerprint_lock = threading.Lock()
        self._draining = threading.Event()
        self._serve_thread: Optional[threading.Thread] = None

        registry = obs.registry
        self._http_requests = registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint and outcome.",
            labels=("endpoint", "outcome"),
        )
        self._http_seconds = registry.histogram(
            "repro_http_request_seconds",
            "Wall-clock seconds from request receipt to response, by endpoint.",
            labels=("endpoint",),
        )
        self._queue_depth = registry.gauge(
            "repro_server_queue_depth",
            "POST requests submitted to the worker pool and not yet finished.",
        )
        self._coalesced = registry.counter(
            "repro_server_coalesced_total",
            "Requests that shared an identical in-flight query's result "
            "instead of submitting duplicate work.",
        )
        self._rejections = registry.counter(
            "repro_server_rejected_total",
            "Requests rejected by admission control (queue full or draining).",
        )

        server = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            # Keep-alive + Nagle + delayed ACK = ~40ms stalls on small
            # responses; a serving layer measured in milliseconds must not
            # batch segments.
            disable_nagle_algorithm = True

            # The default handler logs every request to stderr; the server
            # exports counters instead.
            def log_message(self, format: str, *args: Any) -> None:
                pass

            def do_GET(self) -> None:
                server._handle(self, "GET")

            def do_POST(self) -> None:
                server._handle(self, "POST")

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True

    # -- lifecycle -----------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def engine(self) -> Engine:
        return self._engine

    def start(self) -> "ReproServer":
        """Serve in a background thread (returns immediately)."""
        if self._serve_thread is not None:
            raise RuntimeError("server already started")
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-http-accept", daemon=True
        )
        self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (blocking)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work, close.

        Idempotent; safe to call from a signal handler thread.
        """
        if self._draining.is_set():
            return
        self._draining.set()
        self._httpd.shutdown()
        self._pool.shutdown(wait=True)
        self._httpd.server_close()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- dispatch ------------------------------------------------------------------
    _GET_ROUTES = {"/healthz", "/stats", "/metrics"}
    _POST_ROUTES = {"/query", "/explain", "/apply-delta"}

    def _handle(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        path = handler.path.split("?", 1)[0]
        endpoint = path if path in (self._GET_ROUTES | self._POST_ROUTES) else "unknown"
        started = _monotonic()
        try:
            outcome = self._route(handler, method, path)
        except BrokenPipeError:  # pragma: no cover - client went away
            outcome = "disconnect"
        except Exception as error:  # pragma: no cover - defensive catch-all
            outcome = "error"
            try:
                self._send_json(
                    handler, 500, {"error": {"type": "InternalError", "message": str(error)}}
                )
            except Exception:
                pass
        self._http_requests.labels(endpoint, outcome).inc()
        self._http_seconds.labels(endpoint).observe(_monotonic() - started)

    def _route(self, handler: BaseHTTPRequestHandler, method: str, path: str) -> str:
        if method == "GET":
            if path == "/healthz":
                return self._get_healthz(handler)
            if path == "/stats":
                return self._get_stats(handler)
            if path == "/metrics":
                return self._get_metrics(handler)
            self._send_json(handler, 404, _error_body("NotFound", f"no route {path}"))
            return "not_found"
        if method == "POST":
            if path not in self._POST_ROUTES:
                self._send_json(
                    handler, 404, _error_body("NotFound", f"no route {path}")
                )
                return "not_found"
            return self._post(handler, path)
        self._send_json(  # pragma: no cover - only GET/POST are wired
            handler, 405, _error_body("MethodNotAllowed", method)
        )
        return "method_not_allowed"

    # -- GET endpoints -------------------------------------------------------------
    def _get_healthz(self, handler: BaseHTTPRequestHandler) -> str:
        body = {
            "status": "draining" if self.draining else "ok",
            "inflight": self._pending,
            "workers": self.workers,
        }
        with self._engine_lock:
            storage = self._engine.storage_status()
        if storage is not None:
            # Durable engines surface backend identity and WAL lag so load
            # balancers can see an unsynced or recovering replica.
            body["storage"] = storage
        self._send_json(handler, 200, body)
        return "ok"

    def _get_stats(self, handler: BaseHTTPRequestHandler) -> str:
        with self._engine_lock:
            stats = self._engine.stats()
        self._send_json(handler, 200, stats)
        return "ok"

    def _get_metrics(self, handler: BaseHTTPRequestHandler) -> str:
        with self._engine_lock:
            text = self._engine.metrics()
        body = text.encode("utf-8")
        handler.send_response(200)
        handler.send_header("Content-Type", METRICS_CONTENT_TYPE)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)
        return "ok"

    # -- POST endpoints ------------------------------------------------------------
    def _post(self, handler: BaseHTTPRequestHandler, path: str) -> str:
        trace_id = _new_trace_id()
        handler_map = {
            "/query": self._work_query,
            "/explain": self._work_explain,
            "/apply-delta": self._work_apply_delta,
        }
        try:
            body = self._read_json(handler)
        except ValueError as error:
            self._send_json(
                handler, 400, _error_body("BadRequest", str(error), trace_id), trace_id
            )
            return "client_error"
        work = handler_map[path]
        try:
            payload, coalesced = self._run(path, body, work, trace_id)
        except _Overloaded:
            self._rejections.inc()
            handler.send_response(503)
            handler.send_header("Retry-After", "1")
            response = json.dumps(
                _error_body("Overloaded", "worker queue full or draining", trace_id)
            ).encode("utf-8")
            handler.send_header("Content-Type", "application/json")
            handler.send_header("Content-Length", str(len(response)))
            handler.send_header("X-Repro-Trace-Id", trace_id)
            handler.end_headers()
            handler.wfile.write(response)
            return "rejected"
        except ReproError as error:
            self._send_json(
                handler,
                400,
                _error_body(type(error).__name__, str(error), trace_id),
                trace_id,
            )
            return "client_error"
        payload = dict(payload)
        payload.setdefault("trace_id", trace_id)
        payload["coalesced"] = coalesced
        if coalesced:
            # Followers share the leader's payload; their own id names this
            # HTTP exchange instead (the leader owns the engine trace).
            payload["trace_id"] = trace_id
        self._send_json(handler, 200, payload)
        return "ok"

    def _run(self, path, body, work, trace_id) -> Tuple[Dict[str, Any], bool]:
        """Admission control + coalescing; returns (payload, was_coalesced)."""
        key = self._coalesce_key(path, body)
        with self._admission_lock:
            future = self._inflight.get(key) if key is not None else None
            if future is not None:
                self._coalesced.inc()
                shared = True
            else:
                if self.draining or self._pending >= self.queue_limit:
                    raise _Overloaded()
                self._pending += 1
                self._queue_depth.set(self._pending)
                future = self._pool.submit(work, body, trace_id)
                if key is not None:
                    self._inflight[key] = future
                shared = False
        if not shared:
            # Registered OUTSIDE the admission lock: a fast worker can finish
            # before this line, in which case add_done_callback invokes the
            # cleanup inline on this thread — which must not already hold the
            # (non-reentrant) lock the cleanup acquires.
            future.add_done_callback(self._on_done(key))
        return future.result(timeout=self.result_timeout), shared

    def _on_done(self, key):
        def callback(_future: Future) -> None:
            with self._admission_lock:
                self._pending -= 1
                self._queue_depth.set(self._pending)
                if key is not None:
                    self._inflight.pop(key, None)
        return callback

    def _coalesce_key(self, path: str, body: Any) -> Optional[Tuple[str, str]]:
        """The in-flight identity of a request; None disables coalescing.

        Only ``/query`` coalesces (explain is cheap and apply-delta mutates).
        The key is the query's canonical fingerprint, so renamed/reordered
        copies of an in-flight query coalesce too — the same equivalence the
        session's caches use.
        """
        if path != "/query" or not isinstance(body, dict):
            return None
        text = body.get("query")
        if not isinstance(text, str):
            return None
        with self._fingerprint_lock:
            if text in self._fingerprint_cache:
                fp = self._fingerprint_cache[text]
                return None if fp is None else (path, fp)
        try:
            fp = fingerprint(self._engine.query(text).query).text
        except ReproError:
            fp = None  # let the worker produce the real error response
        with self._fingerprint_lock:
            if len(self._fingerprint_cache) >= 1024:
                self._fingerprint_cache.pop(next(iter(self._fingerprint_cache)))
            self._fingerprint_cache[text] = fp
        return None if fp is None else (path, fp)

    # -- the work (runs on the pool, engine lock held) -----------------------------
    def _work_query(self, body: Any, trace_id: str) -> Dict[str, Any]:
        text = _required_field(body, "query")
        want_trace = bool(body.get("trace")) if isinstance(body, dict) else False
        with self._engine_lock:
            prepared = self._engine.query(text)
            if self._engine.database is not None:
                answer = prepared.answers()
                payload = answer.to_json()
            else:
                result = prepared.rewrite()
                best = result.best
                payload = {
                    "query": text,
                    "rows": None,
                    "rewriting": str(best.query) if best is not None else None,
                    "kind": best.kind.value if best is not None else None,
                    "cache_hit": self._engine.last_cache_hit,
                }
            engine_trace = self._engine.trace()
            if engine_trace is not None:
                payload["trace_id"] = engine_trace.trace_id
                if want_trace:
                    payload["trace"] = engine_trace.to_json()
        return payload

    def _work_explain(self, body: Any, trace_id: str) -> Dict[str, Any]:
        text = _required_field(body, "query")
        with self._engine_lock:
            explanation = self._engine.query(text).explain()
            payload = {"explanation": explanation.to_json()}
            engine_trace = self._engine.trace()
            if engine_trace is not None:
                payload["trace_id"] = engine_trace.trace_id
        return payload

    def _work_apply_delta(self, body: Any, trace_id: str) -> Dict[str, Any]:
        text = _required_field(body, "delta")
        with self._engine_lock:
            log = self._engine.apply(text)
            payload = {"changelog": log.to_dict()}
            engine_trace = self._engine.trace()
            if engine_trace is not None:
                payload["trace_id"] = engine_trace.trace_id
        return payload

    # -- plumbing ------------------------------------------------------------------
    def _read_json(self, handler: BaseHTTPRequestHandler) -> Any:
        length = handler.headers.get("Content-Length")
        if length is None:
            raise ValueError("missing Content-Length")
        try:
            size = int(length)
        except ValueError:
            raise ValueError(f"bad Content-Length {length!r}") from None
        if size < 0 or size > 16 * 1024 * 1024:
            raise ValueError(f"unreasonable Content-Length {size}")
        raw = handler.rfile.read(size)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"request body is not valid JSON: {error}") from None

    def _send_json(
        self,
        handler: BaseHTTPRequestHandler,
        status: int,
        payload: Any,
        trace_id: Optional[str] = None,
    ) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(body)))
        if trace_id is not None:
            handler.send_header("X-Repro-Trace-Id", trace_id)
        elif isinstance(payload, dict) and "trace_id" in payload:
            handler.send_header("X-Repro-Trace-Id", str(payload["trace_id"]))
        handler.end_headers()
        handler.wfile.write(body)


def _monotonic() -> float:
    import time

    return time.perf_counter()


def _error_body(
    error_type: str, message: str, trace_id: Optional[str] = None
) -> Dict[str, Any]:
    body: Dict[str, Any] = {"error": {"type": error_type, "message": message}}
    if trace_id is not None:
        body["trace_id"] = trace_id
    return body


def _required_field(body: Any, field: str) -> str:
    if not isinstance(body, dict) or not isinstance(body.get(field), str):
        raise ReproError(f"request body must be a JSON object with a {field!r} string")
    return body[field]


def serve_http(
    engine: Engine,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 4,
    queue_limit: int = 32,
) -> ReproServer:
    """Start a :class:`ReproServer` in the background and return it."""
    return ReproServer(
        engine, host=host, port=port, workers=workers, queue_limit=queue_limit
    ).start()
