"""repro.server — a threaded HTTP/JSON serving layer over :mod:`repro.api`.

See :mod:`repro.server.http` for the endpoint catalog and the serving
discipline (bounded worker pool, in-flight coalescing, graceful drain), and
``docs/observability.md`` for the metric series the server exports.
"""

from repro.server.http import METRICS_CONTENT_TYPE, ReproServer, serve_http

__all__ = ["METRICS_CONTENT_TYPE", "ReproServer", "serve_http"]
