"""Canonical (frozen) databases of conjunctive queries.

The canonical database of a query *freezes* each variable into a distinct
fresh constant and turns the body into a set of ground facts.  It is the
standard tool behind the Chandra–Merlin containment test: ``Q1 ⊑ Q2`` iff the
frozen head of ``Q1`` is an answer of ``Q2`` over the canonical database of
``Q1``.  The rewriting algorithms also use frozen queries to test candidate
rewritings and to compute certain answers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.substitution import Substitution
from repro.datalog.terms import Constant, Term, Variable

#: Prefix used for frozen constants so they cannot clash with user constants.
FROZEN_PREFIX = "@frozen:"


def _escape_frozen(text: str) -> str:
    """Escape the ``:`` separator (and the escape character) in tags and names.

    Without escaping, the distinct pairs ``(tag="a:b", name="c")`` and
    ``(tag="a", name="b:c")`` would both freeze to ``@frozen:a:b:c`` and the
    two variables would collapse into one frozen constant.
    """
    return text.replace("%", "%25").replace(":", "%3A")


def _unescape_frozen(text: str) -> str:
    return text.replace("%3A", ":").replace("%25", "%")


def freeze_variable(variable: Variable, tag: str = "") -> Constant:
    """The frozen constant standing for a query variable.

    A non-empty ``tag`` namespaces the constant (``@frozen:tag:X``) so that
    frozen constants of different queries never collide.  ``:`` occurring in
    the tag or the variable name is escaped so distinct (tag, name) pairs
    always freeze to distinct constants.
    """
    if tag:
        return Constant(
            f"{FROZEN_PREFIX}{_escape_frozen(tag)}:{_escape_frozen(variable.name)}"
        )
    return Constant(f"{FROZEN_PREFIX}{_escape_frozen(variable.name)}")


def is_frozen_constant(term: Term) -> bool:
    """Whether a term is one of the constants introduced by freezing."""
    return isinstance(term, Constant) and isinstance(term.value, str) and term.value.startswith(
        FROZEN_PREFIX
    )


def freezing_substitution(query: ConjunctiveQuery, tag: str = "") -> Substitution:
    """The substitution mapping each variable of ``query`` to its frozen constant."""
    return Substitution({v: freeze_variable(v, tag) for v in query.variables()})


def freeze_query(
    query: ConjunctiveQuery, tag: str = ""
) -> Tuple[Atom, List[Atom], Substitution]:
    """Freeze a query into (frozen head, frozen body facts, freezing substitution).

    The optional ``tag`` keeps frozen constants of different queries distinct
    when several canonical databases are combined.
    """
    substitution = freezing_substitution(query, tag)
    frozen_head = substitution.apply_atom(query.head)
    frozen_body = [substitution.apply_atom(atom) for atom in query.body]
    return frozen_head, frozen_body, substitution


def canonical_database(query: ConjunctiveQuery, tag: str = ""):
    """The canonical database of ``query`` as an engine :class:`Database`.

    Imported lazily to keep the datalog layer independent of the engine
    package at import time.
    """
    from repro.engine.database import Database

    _, facts, _ = freeze_query(query, tag)
    return Database.from_atoms(facts)


def unfreeze_term(term: Term) -> Term:
    """Map a frozen constant back to the variable it stands for.

    Ordinary constants and variables pass through unchanged.
    """
    if is_frozen_constant(term):
        assert isinstance(term, Constant) and isinstance(term.value, str)
        name = term.value[len(FROZEN_PREFIX):]
        # Drop a namespacing tag of the form "tag:" if present.  Separators
        # inside the tag and the name itself are escaped by freezing, so the
        # split below is unambiguous.
        if ":" in name:
            name = name.rsplit(":", 1)[1]
        return Variable(_unescape_frozen(name))
    return term


def unfreeze_atom(atom: Atom) -> Atom:
    """Unfreeze every argument of an atom."""
    return atom.with_args(tuple(unfreeze_term(t) for t in atom.args))
