"""Conjunctive queries and unions of conjunctive queries."""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import QueryConstructionError, UnsafeQueryError
from repro.datalog.atoms import Atom, Comparison
from repro.datalog.substitution import Substitution
from repro.datalog.terms import Constant, Term, Variable


class ConjunctiveQuery:
    """A conjunctive query ``head :- body, comparisons``.

    * ``head`` is an atom whose arguments are the distinguished terms of the
      query (variables or constants).
    * ``body`` is a tuple of ordinary (relational) subgoals.
    * ``comparisons`` is a tuple of built-in comparison subgoals.

    The query is *safe* when every head variable and every variable used in a
    comparison also occurs in some ordinary subgoal.  Construction enforces
    safety unless ``require_safe=False`` is passed (a few intermediate
    rewriting constructions temporarily build unsafe queries).
    """

    __slots__ = (
        "head",
        "body",
        "comparisons",
        # Lazily computed caches (queries are immutable, so computing each
        # once is sound): the structural hash, the variable tuple, the cheap
        # canonical form, and the canonical fingerprint text the containment
        # memo keys verdicts by (filled in by repro.containment.memo).
        "_hash",
        "_variables",
        "_canonical",
        "_fingerprint_text",
    )

    def __init__(
        self,
        head: Atom,
        body: Iterable[Atom],
        comparisons: Iterable[Comparison] = (),
        require_safe: bool = True,
    ):
        if not isinstance(head, Atom):
            raise QueryConstructionError("query head must be an Atom")
        body_atoms = tuple(body)
        comparison_atoms = tuple(comparisons)
        for atom in body_atoms:
            if not isinstance(atom, Atom):
                raise QueryConstructionError(f"body subgoals must be Atoms, got {atom!r}")
        for comparison in comparison_atoms:
            if not isinstance(comparison, Comparison):
                raise QueryConstructionError(
                    f"comparison subgoals must be Comparisons, got {comparison!r}"
                )
        if not body_atoms and (head.variables() or comparison_atoms):
            # A body-less query can only be a ground fact.
            raise QueryConstructionError("a query with an empty body must have a ground head")
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body_atoms)
        object.__setattr__(self, "comparisons", comparison_atoms)
        if require_safe:
            self._check_safety()

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("ConjunctiveQuery is immutable")

    def _check_safety(self) -> None:
        body_vars = set(self.body_variables())
        for var in self.head.variables():
            if var not in body_vars:
                raise UnsafeQueryError(
                    f"unsafe query: head variable {var} does not occur in the body"
                )
        for comparison in self.comparisons:
            for var in comparison.variables():
                if var not in body_vars:
                    raise UnsafeQueryError(
                        f"unsafe query: comparison variable {var} does not occur in the body"
                    )

    # -- basic protocol ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Exact syntactic equality (same head, same body multiset, same comparisons)."""
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self.head == other.head
            and sorted(self.body, key=Atom.sort_key) == sorted(other.body, key=Atom.sort_key)
            and sorted(self.comparisons, key=Comparison.sort_key)
            == sorted(other.comparisons, key=Comparison.sort_key)
        )

    def __hash__(self) -> int:
        # Hashing sorts the body (order-insensitive equality), so the value is
        # computed once and cached; queries are immutable.
        try:
            return self._hash
        except AttributeError:
            pass
        value = hash(
            (
                self.head,
                tuple(sorted(self.body, key=Atom.sort_key)),
                tuple(sorted(self.comparisons, key=Comparison.sort_key)),
            )
        )
        object.__setattr__(self, "_hash", value)
        return value

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self!s})"

    def __str__(self) -> str:
        from repro.datalog.printer import to_datalog

        return to_datalog(self)

    # -- inspection ------------------------------------------------------------
    @property
    def name(self) -> str:
        """The predicate name of the head atom."""
        return self.head.predicate

    @property
    def arity(self) -> int:
        """The arity of the head atom (number of output columns)."""
        return len(self.head.args)

    @property
    def is_boolean(self) -> bool:
        """True for boolean queries (no output columns)."""
        return len(self.head.args) == 0

    def head_variables(self) -> Tuple[Variable, ...]:
        """Distinguished variables, in head-argument order without duplicates."""
        return self.head.variables()

    def body_variables(self) -> Tuple[Variable, ...]:
        """Variables occurring in ordinary subgoals, in order of first occurrence."""
        seen: list[Variable] = []
        for atom in self.body:
            for var in atom.variables():
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def variables(self) -> Tuple[Variable, ...]:
        """All variables of the query (head, body, comparisons), in order of occurrence."""
        try:
            return self._variables
        except AttributeError:
            pass
        seen: list[Variable] = []
        for source in (self.head.variables(), self.body_variables()):
            for var in source:
                if var not in seen:
                    seen.append(var)
        for comparison in self.comparisons:
            for var in comparison.variables():
                if var not in seen:
                    seen.append(var)
        result = tuple(seen)
        object.__setattr__(self, "_variables", result)
        return result

    def existential_variables(self) -> Tuple[Variable, ...]:
        """Variables of the body that are not distinguished."""
        head_vars = set(self.head.variables())
        return tuple(v for v in self.variables() if v not in head_vars)

    def constants(self) -> Tuple[Constant, ...]:
        """All constants occurring anywhere in the query."""
        seen: list[Constant] = []
        sources: list = [self.head, *self.body]
        for atom in sources:
            for constant in atom.constants():
                if constant not in seen:
                    seen.append(constant)
        for comparison in self.comparisons:
            for constant in comparison.constants():
                if constant not in seen:
                    seen.append(constant)
        return tuple(seen)

    def predicates(self) -> FrozenSet[Tuple[str, int]]:
        """The set of (relation name, arity) signatures used in the body."""
        return frozenset(atom.signature for atom in self.body)

    def subgoals_for(self, predicate: str) -> Tuple[Atom, ...]:
        """The body subgoals over the given predicate name."""
        return tuple(a for a in self.body if a.predicate == predicate)

    def size(self) -> int:
        """Number of ordinary subgoals (the ``n`` of the paper's length bound)."""
        return len(self.body)

    def join_variables(self) -> Tuple[Variable, ...]:
        """Variables occurring in at least two distinct body subgoals."""
        counts: Dict[Variable, int] = {}
        for atom in self.body:
            for var in set(atom.variables()):
                counts[var] = counts.get(var, 0) + 1
        return tuple(v for v in self.body_variables() if counts.get(v, 0) >= 2)

    # -- transformation ---------------------------------------------------------
    def apply(self, substitution: Substitution, require_safe: bool = True) -> "ConjunctiveQuery":
        """The query obtained by applying a substitution to every part."""
        return ConjunctiveQuery(
            substitution.apply_atom(self.head),
            substitution.apply_atoms(self.body),
            substitution.apply_comparisons(self.comparisons),
            require_safe=require_safe,
        )

    def with_head(self, head: Atom) -> "ConjunctiveQuery":
        return ConjunctiveQuery(head, self.body, self.comparisons, require_safe=False)

    def with_body(
        self,
        body: Iterable[Atom],
        comparisons: Optional[Iterable[Comparison]] = None,
        require_safe: bool = True,
    ) -> "ConjunctiveQuery":
        return ConjunctiveQuery(
            self.head,
            body,
            self.comparisons if comparisons is None else comparisons,
            require_safe=require_safe,
        )

    def with_name(self, name: str) -> "ConjunctiveQuery":
        """The same query with the head predicate renamed."""
        return ConjunctiveQuery(
            self.head.rename_predicate(name), self.body, self.comparisons, require_safe=False
        )

    def add_subgoals(
        self,
        atoms: Iterable[Atom] = (),
        comparisons: Iterable[Comparison] = (),
    ) -> "ConjunctiveQuery":
        """The query with extra subgoals conjoined to its body."""
        return ConjunctiveQuery(
            self.head,
            self.body + tuple(atoms),
            self.comparisons + tuple(comparisons),
            require_safe=False,
        )

    def rename_variables(self, mapping: "Substitution | Dict[Variable, Variable]") -> "ConjunctiveQuery":
        """Apply a variable renaming to the whole query."""
        substitution = mapping if isinstance(mapping, Substitution) else Substitution(mapping)
        return self.apply(substitution, require_safe=False)

    def canonical(self) -> "ConjunctiveQuery":
        """A canonical variant: variables renamed to V1, V2, ... and body sorted.

        Two queries that are identical up to variable renaming and subgoal
        order have equal canonical variants *provided* the renaming respects
        first-occurrence order; this is a cheap normal form used for hashing
        and duplicate elimination, not a graph-isomorphism test (use
        ``containment.is_equivalent`` for semantic equivalence).
        """
        try:
            return self._canonical
        except AttributeError:
            pass
        ordered_body = sorted(self.body, key=Atom.sort_key)
        mapping: Dict[Variable, Variable] = {}

        def canon(var: Variable) -> Variable:
            if var not in mapping:
                mapping[var] = Variable(f"V{len(mapping) + 1}")
            return mapping[var]

        for var in self.head.variables():
            canon(var)
        for atom in ordered_body:
            for var in atom.variables():
                canon(var)
        for comparison in self.comparisons:
            for var in comparison.variables():
                canon(var)
        substitution = Substitution(dict(mapping))
        result = ConjunctiveQuery(
            substitution.apply_atom(self.head),
            sorted(substitution.apply_atoms(ordered_body), key=Atom.sort_key),
            sorted(substitution.apply_comparisons(self.comparisons), key=Comparison.sort_key),
            require_safe=False,
        )
        object.__setattr__(self, "_canonical", result)
        return result

    def freshened_against(
        self, other: "ConjunctiveQuery | Iterable[Variable]"
    ) -> "ConjunctiveQuery":
        """A copy whose variables are renamed to avoid clashing with ``other``."""
        from repro.datalog.freshen import rename_apart

        avoid: Iterable[Variable]
        if isinstance(other, ConjunctiveQuery):
            avoid = other.variables()
        else:
            avoid = tuple(other)
        renaming = rename_apart(self.variables(), avoid)
        return self.rename_variables(renaming)

    def is_safe(self) -> bool:
        """Whether the query satisfies the safety condition."""
        try:
            self._check_safety()
        except UnsafeQueryError:
            return False
        return True


class UnionQuery:
    """A union of conjunctive queries with compatible heads.

    Used for maximally-contained rewritings, which in general are unions of
    conjunctive rewritings, and for the result of interleaving-style
    constructions in the contained-rewriting enumeration.
    """

    __slots__ = ("disjuncts",)

    def __init__(self, disjuncts: Iterable[ConjunctiveQuery]):
        queries = tuple(disjuncts)
        if not queries:
            raise QueryConstructionError("a union query needs at least one disjunct")
        name = queries[0].name
        arity = queries[0].arity
        for query in queries[1:]:
            if query.name != name or query.arity != arity:
                raise QueryConstructionError(
                    "all disjuncts of a union query must share the head predicate and arity"
                )
        object.__setattr__(self, "disjuncts", queries)

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("UnionQuery is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionQuery):
            return NotImplemented
        return set(q.canonical() for q in self.disjuncts) == set(
            q.canonical() for q in other.disjuncts
        )

    def __hash__(self) -> int:
        return hash(frozenset(q.canonical() for q in self.disjuncts))

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __repr__(self) -> str:
        return f"UnionQuery({list(self.disjuncts)!r})"

    def __str__(self) -> str:
        from repro.datalog.printer import to_datalog

        return "\n".join(to_datalog(q) for q in self.disjuncts)

    @property
    def name(self) -> str:
        return self.disjuncts[0].name

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    def predicates(self) -> FrozenSet[Tuple[str, int]]:
        out: set = set()
        for query in self.disjuncts:
            out |= query.predicates()
        return frozenset(out)

    def simplified(self) -> "UnionQuery":
        """Remove duplicate disjuncts (up to the cheap canonical form)."""
        seen = set()
        unique = []
        for query in self.disjuncts:
            key = query.canonical()
            if key not in seen:
                seen.add(key)
                unique.append(query)
        return UnionQuery(unique)


QueryLike = "ConjunctiveQuery | UnionQuery"


def as_union(query: "ConjunctiveQuery | UnionQuery") -> UnionQuery:
    """View any query as a union of conjunctive queries."""
    if isinstance(query, UnionQuery):
        return query
    return UnionQuery([query])
