"""A small parser for datalog-style query, view and database text.

Syntax
------
* A **rule** is ``head :- subgoal, subgoal, ... .``  The trailing period is
  optional for single-rule inputs but recommended.
* A **fact** is a ground atom followed by a period, e.g. ``cites(a, b).``
* **Variables** start with an upper-case letter or underscore (``X``, ``_Y``).
* **Constants** are lower-case identifiers (``smith``), numbers (``3``,
  ``4.5``, ``-2``, ``1e-5``) or quoted strings (``'New York'`` /
  ``"New York"``).  Strings support backslash escapes: ``\\``, ``\'``,
  ``\"``, ``\n``, ``\r``, ``\t`` and ``\\uXXXX`` / ``\\UXXXXXXXX`` code
  points; any other escaped character stands for itself.
* **Comparisons** are infix: ``X < Y``, ``X != 'a'``, ``Z >= 10``.
* ``%`` and ``#`` start a comment that runs to the end of the line.

Example
-------
>>> q = parse_query("q(X, Y) :- cites(X, Z), cites(Z, Y), X != Y.")
>>> q.size()
2
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ParseError
from repro.datalog.atoms import Atom, Comparison, ComparisonOperator
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.terms import Constant, Term, Variable
from repro.datalog.views import View, ViewSet


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>[%\#][^\n]*)
  | (?P<implies>:-|<-)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<period>\.(?!\d))
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)
  | (?P<string>'(?:\\.|[^'\\])*'|"(?:\\.|[^"\\])*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.text!r}, {self.position})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}", text=text, position=position
            )
        kind = match.lastgroup
        assert kind is not None
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


#: One-character escape sequences (the inverse of the printer's escaping).
_SIMPLE_ESCAPES = {"n": "\n", "r": "\r", "t": "\t"}


def _unescape_string(body: str, text: str, position: int) -> str:
    """Resolve backslash escapes in a quoted string's interior.

    ``\\uXXXX`` and ``\\UXXXXXXXX`` name code points; ``\\n``/``\\r``/``\\t``
    are the usual controls; any other escaped character stands for itself
    (which covers ``\\\\``, ``\\'`` and ``\\"``).
    """
    if "\\" not in body:
        return body
    out: List[str] = []
    index = 0
    length = len(body)
    while index < length:
        char = body[index]
        if char != "\\":
            out.append(char)
            index += 1
            continue
        # The token regex only matches a backslash followed by another
        # character, so body[index + 1] exists.
        escape = body[index + 1]
        if escape in _SIMPLE_ESCAPES:
            out.append(_SIMPLE_ESCAPES[escape])
            index += 2
        elif escape in ("u", "U"):
            digits = 4 if escape == "u" else 8
            hex_part = body[index + 2 : index + 2 + digits]
            try:
                code = int(hex_part, 16)
                out.append(chr(code))
            except (ValueError, OverflowError):
                raise ParseError(
                    f"invalid \\{escape} escape in string literal",
                    text=text,
                    position=position,
                )
            if len(hex_part) != digits:
                raise ParseError(
                    f"\\{escape} escape needs {digits} hex digits",
                    text=text,
                    position=position,
                )
            index += 2 + digits
        else:
            out.append(escape)
            index += 2
    return "".join(out)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token stream helpers ------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", text=self.text, position=len(self.text))
        self.index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.text!r}", text=self.text, position=token.position
            )
        return token

    def _accept(self, kind: str) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind:
            self.index += 1
            return token
        return None

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)

    # -- grammar ---------------------------------------------------------------
    def parse_term(self) -> Term:
        token = self._next()
        if token.kind == "number":
            text = token.text
            is_float = "." in text or "e" in text or "E" in text
            value = float(text) if is_float else int(text)
            return Constant(value)
        if token.kind == "string":
            return Constant(
                _unescape_string(token.text[1:-1], self.text, token.position)
            )
        if token.kind == "ident":
            name = token.text
            if name[0].isupper() or name[0] == "_":
                return Variable(name)
            return Constant(name)
        raise ParseError(
            f"expected a term, found {token.text!r}", text=self.text, position=token.position
        )

    def parse_atom(self) -> Atom:
        ident = self._expect("ident")
        if ident.text[0].isupper():
            raise ParseError(
                f"predicate names must start with a lower-case letter: {ident.text!r}",
                text=self.text,
                position=ident.position,
            )
        self._expect("lparen")
        args: List[Term] = []
        if self._accept("rparen") is None:
            args.append(self.parse_term())
            while self._accept("comma") is not None:
                args.append(self.parse_term())
            self._expect("rparen")
        return Atom(ident.text, args)

    def parse_literal(self) -> Union[Atom, Comparison]:
        # A literal is an atom when an identifier is followed by '(';
        # otherwise it must be a comparison between two terms.
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", text=self.text, position=len(self.text))
        if token.kind == "ident":
            following = (
                self.tokens[self.index + 1] if self.index + 1 < len(self.tokens) else None
            )
            if following is not None and following.kind == "lparen":
                return self.parse_atom()
        left = self.parse_term()
        op_token = self._expect("op")
        right = self.parse_term()
        return Comparison(left, ComparisonOperator.from_symbol(op_token.text), right)

    def parse_rule(self) -> ConjunctiveQuery:
        head = self.parse_atom()
        body: List[Atom] = []
        comparisons: List[Comparison] = []
        if self._accept("implies") is not None:
            literal = self.parse_literal()
            self._add_literal(literal, body, comparisons)
            while self._accept("comma") is not None:
                literal = self.parse_literal()
                self._add_literal(literal, body, comparisons)
        self._accept("period")
        return ConjunctiveQuery(head, body, comparisons)

    @staticmethod
    def _add_literal(
        literal: Union[Atom, Comparison], body: List[Atom], comparisons: List[Comparison]
    ) -> None:
        if isinstance(literal, Atom):
            body.append(literal)
        else:
            comparisons.append(literal)

    def parse_fact(self) -> Atom:
        atom = self.parse_atom()
        self._accept("period")
        if not atom.is_ground():
            raise ParseError(
                f"facts must be ground, found variables in {atom}", text=self.text
            )
        return atom


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"cites(X, 'smith')"``."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    parser._accept("period")
    if not parser.at_end():
        token = parser._peek()
        assert token is not None
        raise ParseError("trailing input after atom", text=text, position=token.position)
    return atom


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a single conjunctive query rule."""
    parser = _Parser(text)
    query = parser.parse_rule()
    if not parser.at_end():
        token = parser._peek()
        assert token is not None
        raise ParseError(
            "trailing input after query (use parse_program for multiple rules)",
            text=text,
            position=token.position,
        )
    return query


def parse_program(text: str) -> List[ConjunctiveQuery]:
    """Parse a sequence of rules (one or more)."""
    parser = _Parser(text)
    rules: List[ConjunctiveQuery] = []
    while not parser.at_end():
        rules.append(parser.parse_rule())
    if not rules:
        raise ParseError("empty program", text=text)
    return rules


def parse_view(text: str, name: Optional[str] = None) -> View:
    """Parse a single view definition.

    The view name defaults to the head predicate of the rule.
    """
    query = parse_query(text)
    return View(name or query.name, query)


def parse_views(text: str) -> ViewSet:
    """Parse several view definitions, one rule each."""
    return ViewSet([View(q.name, q) for q in parse_program(text)])


def parse_database(text: str) -> List[Atom]:
    """Parse a list of ground facts, e.g. ``"cites(a,b). cites(b,c)."``."""
    parser = _Parser(text)
    facts: List[Atom] = []
    while not parser.at_end():
        facts.append(parser.parse_fact())
    return facts
