"""Fresh-variable generation and renaming queries apart.

Rewriting algorithms constantly need variables that are guaranteed not to
clash with variables already in play (view expansion, canonical rewritings,
inverse rules with Skolem terms).  :class:`FreshVariableFactory` centralizes
that concern.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Set

from repro.datalog.substitution import Substitution
from repro.datalog.terms import Variable


class FreshVariableFactory:
    """Produces variables with names not used anywhere in a given context.

    Parameters
    ----------
    reserved:
        Variable names (or variables) that must never be produced.
    prefix:
        Prefix of generated names; generated variables look like ``_F1``,
        ``_F2``, ... by default.
    """

    def __init__(self, reserved: Iterable["Variable | str"] = (), prefix: str = "_F"):
        self._prefix = prefix
        self._used: Set[str] = set()
        self._count = 0
        self.reserve(reserved)

    def reserve(self, items: Iterable["Variable | str"]) -> None:
        """Mark additional names as unavailable."""
        for item in items:
            self._used.add(item.name if isinstance(item, Variable) else str(item))

    def _issued_counter_name(self, name: str) -> bool:
        """Whether ``name`` is a counter-generated name this factory already issued.

        Counter-generated names are not stored in ``_used`` (see the fast path
        in :meth:`fresh`), so hint-based generation consults the counter
        directly; the check is O(1).
        """
        if not name.startswith(self._prefix):
            return False
        suffix = name[len(self._prefix):]
        if not suffix.isdigit() or str(int(suffix)) != suffix:
            return False
        return 0 < int(suffix) <= self._count

    def _taken(self, name: str) -> bool:
        return name in self._used or self._issued_counter_name(name)

    def fresh(self, hint: str = "") -> Variable:
        """A variable whose name has never been produced or reserved.

        ``hint`` is incorporated into the name for readability when possible
        (e.g. ``fresh("X")`` may produce ``X_1``).
        """
        if hint:
            candidate = hint
            if not self._taken(candidate):
                self._used.add(candidate)
                return Variable(candidate)
            for i in itertools.count(1):
                candidate = f"{hint}_{i}"
                if not self._taken(candidate):
                    self._used.add(candidate)
                    return Variable(candidate)
        if not self._used:
            # Fast path for the empty reserved set: counter-generated names
            # cannot collide with anything, so skip the membership scan.
            self._count += 1
            return Variable(f"{self._prefix}{self._count}")
        while True:
            self._count += 1
            candidate = f"{self._prefix}{self._count}"
            if candidate not in self._used:
                return Variable(candidate)

    def fresh_many(self, count: int, hint: str = "") -> Iterator[Variable]:
        """Generate ``count`` fresh variables."""
        for _ in range(count):
            yield self.fresh(hint)


def rename_apart(
    variables: Iterable[Variable],
    avoid: Iterable[Variable],
    factory: "FreshVariableFactory | None" = None,
) -> Substitution:
    """A renaming of ``variables`` that avoids clashing with ``avoid``.

    Only variables that actually clash are renamed; the result is a
    substitution suitable for applying to the query owning ``variables``.
    """
    owned = tuple(variables)
    avoid_names = {v.name for v in avoid}
    clashing = [var for var in owned if var.name in avoid_names]
    if not clashing:
        # Fast path: nothing clashes, so no factory (and no reserved-set scan)
        # is needed at all.
        return Substitution({})
    if factory is None:
        factory = FreshVariableFactory(reserved=avoid_names | {v.name for v in owned})
    mapping = {var: factory.fresh(var.name) for var in clashing}
    return Substitution(mapping)
