"""Fresh-variable generation and renaming queries apart.

Rewriting algorithms constantly need variables that are guaranteed not to
clash with variables already in play (view expansion, canonical rewritings,
inverse rules with Skolem terms).  :class:`FreshVariableFactory` centralizes
that concern.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Set

from repro.datalog.substitution import Substitution
from repro.datalog.terms import Variable


class FreshVariableFactory:
    """Produces variables with names not used anywhere in a given context.

    Parameters
    ----------
    reserved:
        Variable names (or variables) that must never be produced.
    prefix:
        Prefix of generated names; generated variables look like ``_F1``,
        ``_F2``, ... by default.
    """

    def __init__(self, reserved: Iterable["Variable | str"] = (), prefix: str = "_F"):
        self._prefix = prefix
        self._used: Set[str] = set()
        self._counter = itertools.count(1)
        self.reserve(reserved)

    def reserve(self, items: Iterable["Variable | str"]) -> None:
        """Mark additional names as unavailable."""
        for item in items:
            self._used.add(item.name if isinstance(item, Variable) else str(item))

    def fresh(self, hint: str = "") -> Variable:
        """A variable whose name has never been produced or reserved.

        ``hint`` is incorporated into the name for readability when possible
        (e.g. ``fresh("X")`` may produce ``X_1``).
        """
        if hint:
            candidate = hint
            if candidate not in self._used:
                self._used.add(candidate)
                return Variable(candidate)
            for i in itertools.count(1):
                candidate = f"{hint}_{i}"
                if candidate not in self._used:
                    self._used.add(candidate)
                    return Variable(candidate)
        while True:
            candidate = f"{self._prefix}{next(self._counter)}"
            if candidate not in self._used:
                self._used.add(candidate)
                return Variable(candidate)

    def fresh_many(self, count: int, hint: str = "") -> Iterator[Variable]:
        """Generate ``count`` fresh variables."""
        for _ in range(count):
            yield self.fresh(hint)


def rename_apart(
    variables: Iterable[Variable],
    avoid: Iterable[Variable],
    factory: "FreshVariableFactory | None" = None,
) -> Substitution:
    """A renaming of ``variables`` that avoids clashing with ``avoid``.

    Only variables that actually clash are renamed; the result is a
    substitution suitable for applying to the query owning ``variables``.
    """
    avoid_names = {v.name for v in avoid}
    if factory is None:
        factory = FreshVariableFactory(reserved=avoid_names | {v.name for v in variables})
    mapping = {}
    for var in variables:
        if var.name in avoid_names:
            mapping[var] = factory.fresh(var.name)
    return Substitution(mapping)
