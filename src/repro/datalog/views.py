"""Views: named conjunctive queries over the base schema."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import QueryConstructionError
from repro.datalog.atoms import Atom
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.terms import Term, Variable


class View:
    """A materialized view: a name plus the conjunctive query defining it.

    The view's *schema atom* is ``name(X1, ..., Xk)`` where ``X1..Xk`` are the
    head arguments of the defining query.  Rewritings use atoms over the view
    name; expanding them replaces each view atom with the view definition's
    body (after unifying head arguments and freshening existential variables).
    """

    __slots__ = ("name", "definition")

    def __init__(self, name: str, definition: ConjunctiveQuery):
        if not name or not isinstance(name, str):
            raise QueryConstructionError("view name must be a non-empty string")
        if not isinstance(definition, ConjunctiveQuery):
            raise QueryConstructionError("view definition must be a ConjunctiveQuery")
        object.__setattr__(self, "name", name)
        # Normalize the definition's head predicate to the view name so that
        # `view.definition.head` doubles as the view's schema atom.
        object.__setattr__(self, "definition", definition.with_name(name))

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("View is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return self.name == other.name and self.definition == other.definition

    def __hash__(self) -> int:
        return hash((self.name, self.definition))

    def __repr__(self) -> str:
        return f"View({self.name!r}, {self.definition!s})"

    def __str__(self) -> str:
        return str(self.definition)

    # -- inspection ------------------------------------------------------------
    @property
    def arity(self) -> int:
        return self.definition.arity

    @property
    def head(self) -> Atom:
        """The schema atom of the view (head of the definition)."""
        return self.definition.head

    @property
    def body(self) -> Tuple[Atom, ...]:
        return self.definition.body

    def head_variables(self) -> Tuple[Variable, ...]:
        return self.definition.head_variables()

    def existential_variables(self) -> Tuple[Variable, ...]:
        return self.definition.existential_variables()

    def predicates(self):
        return self.definition.predicates()

    def atom(self, args: Iterable[Term]) -> Atom:
        """A view atom ``name(args)`` for use in a rewriting body."""
        terms = tuple(args)
        if len(terms) != self.arity:
            raise QueryConstructionError(
                f"view {self.name} has arity {self.arity}, got {len(terms)} arguments"
            )
        return Atom(self.name, terms)

    def covers_predicate(self, predicate: str) -> bool:
        """Whether the view definition mentions the given base relation."""
        return any(atom.predicate == predicate for atom in self.body)


class ViewSet:
    """An ordered collection of views with unique names.

    Behaves like an immutable mapping from view name to :class:`View` and an
    iterable of views (in insertion order).
    """

    __slots__ = ("_views", "_version_token")

    def __init__(self, views: Iterable[View] = ()):
        ordered: Dict[str, View] = {}
        for view in views:
            if not isinstance(view, View):
                raise QueryConstructionError(f"expected a View, got {view!r}")
            if view.name in ordered:
                raise QueryConstructionError(f"duplicate view name: {view.name}")
            ordered[view.name] = view
        object.__setattr__(self, "_views", ordered)
        object.__setattr__(self, "_version_token", None)

    def version_token(self) -> int:
        """A token identifying this view set's contents.

        View sets are immutable, so "the views changed" means a *different*
        ``ViewSet`` object is now in play; caches compare tokens to detect
        that.  Equal contents yield equal tokens (within a process); the token
        is computed lazily and cached.
        """
        token = self._version_token
        if token is None:
            token = hash(tuple(self._views.items()))
            object.__setattr__(self, "_version_token", token)
        return token

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("ViewSet is immutable")

    def __iter__(self) -> Iterator[View]:
        return iter(self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, name: object) -> bool:
        if isinstance(name, View):
            return name.name in self._views
        return name in self._views

    def __getitem__(self, name: str) -> View:
        return self._views[name]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViewSet):
            return NotImplemented
        return self._views == other._views

    def __repr__(self) -> str:
        return f"ViewSet({list(self._views)})"

    def get(self, name: str, default: Optional[View] = None) -> Optional[View]:
        return self._views.get(name, default)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._views)

    def add(self, view: View) -> "ViewSet":
        """A new view set with one more view."""
        return ViewSet(list(self) + [view])

    def extend(self, views: Iterable[View]) -> "ViewSet":
        return ViewSet(list(self) + list(views))

    def restrict(self, names: Iterable[str]) -> "ViewSet":
        """The subset of views with the given names (order preserved)."""
        wanted = set(names)
        return ViewSet([v for v in self if v.name in wanted])

    def definitions(self) -> Tuple[ConjunctiveQuery, ...]:
        return tuple(v.definition for v in self)

    def covering(self, predicate: str) -> List[View]:
        """Views whose definitions mention the given base relation."""
        return [v for v in self if v.covers_predicate(predicate)]

    def is_view_predicate(self, predicate: str) -> bool:
        return predicate in self._views


def make_views(definitions: Iterable[ConjunctiveQuery]) -> ViewSet:
    """Wrap a collection of named conjunctive queries as a view set.

    The head predicate of each query becomes the view name.
    """
    return ViewSet([View(q.name, q) for q in definitions])
