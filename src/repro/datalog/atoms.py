"""Atoms: relational subgoals and built-in comparison subgoals."""

from __future__ import annotations

import enum
from typing import Any, Iterable, Iterator, Sequence, Tuple

from repro.errors import QueryConstructionError
from repro.datalog.terms import (
    Constant,
    Term,
    Variable,
    make_term,
    term_constants,
    term_sort_key,
    term_variables,
)


class Atom:
    """A relational subgoal ``predicate(t1, ..., tk)``.

    Atoms are immutable; the argument tuple may mix variables and constants.
    An atom with an empty argument list is allowed (a propositional fact).
    """

    __slots__ = ("predicate", "args", "_hash", "_const_positions", "_sort_key")

    def __init__(self, predicate: str, args: Iterable[Any] = ()):
        if not predicate or not isinstance(predicate, str):
            raise QueryConstructionError("atom predicate must be a non-empty string")
        terms = tuple([a if isinstance(a, Term) else make_term(a) for a in args])
        const_positions = []
        for position, term in enumerate(terms):
            if isinstance(term, Constant):
                const_positions.append((position, term))
        set_slot = object.__setattr__
        set_slot(self, "predicate", predicate)
        set_slot(self, "args", terms)
        set_slot(self, "_hash", hash((predicate, terms)))
        set_slot(self, "_const_positions", tuple(const_positions))

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("Atom is immutable")

    # -- basic protocol ----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return (
            isinstance(other, Atom)
            and other._hash == self._hash
            and other.predicate == self.predicate
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {list(self.args)!r})"

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(str(a) for a in self.args)})"

    def __len__(self) -> int:
        return len(self.args)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.args)

    # -- inspection --------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def signature(self) -> Tuple[str, int]:
        """The (predicate name, arity) pair identifying the relation."""
        return (self.predicate, len(self.args))

    @property
    def const_positions(self) -> Tuple[Tuple[int, Constant], ...]:
        """The (argument position, constant) pairs of the atom, precomputed.

        This is the atom's *constant signature*: a homomorphism can map this
        atom onto a target only if the target carries the same constant at
        each of these positions, so the containment search uses it as an O(1)
        fail-fast filter when building candidate lists.
        """
        return self._const_positions

    def variables(self) -> Tuple[Variable, ...]:
        """The variables of the atom (recursing into function terms), in order."""
        seen: list[Variable] = []
        for term in self.args:
            for var in term_variables(term):
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def constants(self) -> Tuple[Constant, ...]:
        """The constants of the atom (recursing into function terms), in order."""
        seen: list[Constant] = []
        for term in self.args:
            for constant in term_constants(term):
                if constant not in seen:
                    seen.append(constant)
        return tuple(seen)

    def is_ground(self) -> bool:
        """True when the atom contains no variables."""
        return not self.variables()

    # -- rewriting helpers ---------------------------------------------------
    def with_args(self, args: Sequence[Term]) -> "Atom":
        """A copy of this atom with a different argument list."""
        return Atom(self.predicate, args)

    def rename_predicate(self, predicate: str) -> "Atom":
        """A copy of this atom with a different predicate name."""
        return Atom(predicate, self.args)

    def sort_key(self) -> tuple:
        """A deterministic sort key used to canonicalize bodies (computed once)."""
        try:
            return self._sort_key
        except AttributeError:
            pass
        key = (self.predicate, len(self.args), tuple(term_sort_key(t) for t in self.args))
        object.__setattr__(self, "_sort_key", key)
        return key


class ComparisonOperator(enum.Enum):
    """The built-in comparison operators supported by the library."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flip(self) -> "ComparisonOperator":
        """The operator obtained by swapping the two operands."""
        return _FLIPPED[self]

    def negate(self) -> "ComparisonOperator":
        """The logical negation of the operator."""
        return _NEGATED[self]

    def evaluate(self, left: Any, right: Any) -> bool:
        """Apply the comparison to two Python values."""
        try:
            if self is ComparisonOperator.EQ:
                return left == right
            if self is ComparisonOperator.NE:
                return left != right
            if self is ComparisonOperator.LT:
                return left < right
            if self is ComparisonOperator.LE:
                return left <= right
            if self is ComparisonOperator.GT:
                return left > right
            return left >= right
        except TypeError:
            # Incomparable values (e.g. int vs str) never satisfy an order
            # comparison; equality/disequality already returned above.
            return False

    @classmethod
    def from_symbol(cls, symbol: str) -> "ComparisonOperator":
        try:
            return _BY_SYMBOL[symbol]
        except KeyError:
            raise QueryConstructionError(f"unknown comparison operator: {symbol!r}") from None


_BY_SYMBOL = {op.value: op for op in ComparisonOperator}
_FLIPPED = {
    ComparisonOperator.EQ: ComparisonOperator.EQ,
    ComparisonOperator.NE: ComparisonOperator.NE,
    ComparisonOperator.LT: ComparisonOperator.GT,
    ComparisonOperator.LE: ComparisonOperator.GE,
    ComparisonOperator.GT: ComparisonOperator.LT,
    ComparisonOperator.GE: ComparisonOperator.LE,
}
_NEGATED = {
    ComparisonOperator.EQ: ComparisonOperator.NE,
    ComparisonOperator.NE: ComparisonOperator.EQ,
    ComparisonOperator.LT: ComparisonOperator.GE,
    ComparisonOperator.LE: ComparisonOperator.GT,
    ComparisonOperator.GT: ComparisonOperator.LE,
    ComparisonOperator.GE: ComparisonOperator.LT,
}


class Comparison:
    """A built-in comparison subgoal ``left op right``.

    Both sides are terms (variables or constants).  Comparisons never bind
    variables; safety of a query requires every variable used in a comparison
    to also appear in an ordinary subgoal.
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, left: Any, op: "ComparisonOperator | str", right: Any):
        if isinstance(op, str):
            op = ComparisonOperator.from_symbol(op)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", make_term(left))
        object.__setattr__(self, "right", make_term(right))

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("Comparison is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Comparison):
            return False
        if other.op == self.op and other.left == self.left and other.right == self.right:
            return True
        # A comparison is also equal to its flipped form: X < Y  ==  Y > X.
        return (
            other.op == self.op.flip()
            and other.left == self.right
            and other.right == self.left
        )

    def __hash__(self) -> int:
        # Hash must be symmetric under flipping to stay consistent with __eq__.
        canonical = self.canonical()
        return hash((canonical.op, canonical.left, canonical.right))

    def __repr__(self) -> str:
        return f"Comparison({self.left!r}, {self.op.value!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"

    # -- inspection --------------------------------------------------------
    def variables(self) -> Tuple[Variable, ...]:
        out: list[Variable] = []
        for term in (self.left, self.right):
            for var in term_variables(term):
                if var not in out:
                    out.append(var)
        return tuple(out)

    def constants(self) -> Tuple[Constant, ...]:
        out: list[Constant] = []
        for term in (self.left, self.right):
            for constant in term_constants(term):
                if constant not in out:
                    out.append(constant)
        return tuple(out)

    def is_ground(self) -> bool:
        return isinstance(self.left, Constant) and isinstance(self.right, Constant)

    def evaluate_ground(self) -> bool:
        """Evaluate a ground comparison; raises if it is not ground."""
        if not self.is_ground():
            raise QueryConstructionError(f"comparison {self} is not ground")
        assert isinstance(self.left, Constant) and isinstance(self.right, Constant)
        return self.op.evaluate(self.left.value, self.right.value)

    def canonical(self) -> "Comparison":
        """A canonical orientation (smaller term first, by sort key) for hashing.

        Orientation only matters for the symmetric operators (``=``/``!=``)
        and for pairs related by flipping; canonicalizing makes equal
        comparisons hash identically.
        """
        left_key = term_sort_key(self.left)
        right_key = term_sort_key(self.right)
        if left_key <= right_key:
            return self
        return Comparison(self.right, self.op.flip(), self.left)

    def flipped(self) -> "Comparison":
        """The same constraint written with the operands swapped."""
        return Comparison(self.right, self.op.flip(), self.left)

    def negated(self) -> "Comparison":
        """The logical negation of this comparison."""
        return Comparison(self.left, self.op.negate(), self.right)

    def sort_key(self) -> tuple:
        canonical = self.canonical()
        return (
            canonical.op.value,
            term_sort_key(canonical.left),
            term_sort_key(canonical.right),
        )
