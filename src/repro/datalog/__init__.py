"""Datalog / conjunctive-query representation layer.

This package contains the symbolic substrate on which the whole library is
built: terms, atoms, comparison predicates, conjunctive queries, unions of
conjunctive queries, views, substitutions and unification, a small text
parser, and pretty-printing.

The representation follows the conventions of the PODS'95 paper: a
conjunctive query has a *head* (the answer atom whose arguments are the
distinguished variables), a *body* of ordinary relational subgoals, and an
optional conjunction of built-in comparison subgoals.
"""

from repro.datalog.terms import Constant, FunctionTerm, Term, Variable
from repro.datalog.atoms import Atom, Comparison, ComparisonOperator
from repro.datalog.substitution import Substitution, unify_atoms, unify_terms
from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.datalog.views import View, ViewSet
from repro.datalog.freshen import FreshVariableFactory, rename_apart
from repro.datalog.parser import (
    parse_atom,
    parse_database,
    parse_program,
    parse_query,
    parse_view,
    parse_views,
)
from repro.datalog.printer import to_datalog
from repro.datalog.canonical import canonical_database, freeze_query

__all__ = [
    "Atom",
    "Comparison",
    "ComparisonOperator",
    "ConjunctiveQuery",
    "Constant",
    "FreshVariableFactory",
    "FunctionTerm",
    "Substitution",
    "Term",
    "UnionQuery",
    "Variable",
    "View",
    "ViewSet",
    "canonical_database",
    "freeze_query",
    "parse_atom",
    "parse_database",
    "parse_program",
    "parse_query",
    "parse_view",
    "parse_views",
    "rename_apart",
    "to_datalog",
    "unify_atoms",
    "unify_terms",
]
