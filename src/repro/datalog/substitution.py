"""Substitutions and unification over terms and atoms.

A substitution maps variables to terms.  Substitutions are the basic tool of
every algorithm in the library: containment mappings are substitutions from
one query's variables into another query's terms, view expansion applies a
substitution from view head variables to rewriting terms, MiniCon descriptions
carry partial substitutions, and so on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple, Union

from repro.datalog.atoms import Atom, Comparison
from repro.datalog.terms import Constant, FunctionTerm, Term, Variable, term_variables


class Substitution(Mapping[Variable, Term]):
    """An immutable mapping from variables to terms.

    Applying a substitution replaces each variable in its domain with the
    associated term; variables outside the domain are left untouched.  The
    mapping interface (``len``, ``iter``, ``[]``) is over the domain.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Optional[Mapping[Variable, Term]] = None):
        items: Dict[Variable, Term] = {}
        if mapping:
            for var, term in mapping.items():
                if not isinstance(var, Variable):
                    raise TypeError(f"substitution keys must be variables, got {var!r}")
                if not isinstance(term, Term):
                    raise TypeError(f"substitution values must be terms, got {term!r}")
                items[var] = term
        self._mapping: Dict[Variable, Term] = items

    # -- Mapping protocol ----------------------------------------------------
    def __getitem__(self, var: Variable) -> Term:
        return self._mapping[var]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._mapping == other._mapping
        if isinstance(other, Mapping):
            return dict(self._mapping) == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}: {t}" for v, t in sorted(self._mapping.items(), key=lambda p: p[0].name))
        return f"{{{inner}}}"

    # -- construction ---------------------------------------------------------
    @classmethod
    def empty(cls) -> "Substitution":
        return cls()

    @classmethod
    def of(cls, **bindings: Union[str, int, float, bool, Term]) -> "Substitution":
        """Build a substitution from keyword arguments.

        Keys are variable names, values are coerced with the usual
        variable/constant convention (capitalised strings become variables).
        """
        from repro.datalog.terms import make_term

        return cls({Variable(name): make_term(value) for name, value in bindings.items()})

    def bind(self, var: Variable, term: Term) -> "Substitution":
        """A new substitution extending this one with ``var -> term``.

        Raises ``ValueError`` if ``var`` is already bound to a different term.
        """
        existing = self._mapping.get(var)
        if existing is not None:
            if existing == term:
                return self
            raise ValueError(f"variable {var} already bound to {existing}, cannot rebind to {term}")
        new = dict(self._mapping)
        new[var] = term
        return Substitution(new)

    def merge(self, other: "Substitution") -> Optional["Substitution"]:
        """The union of two substitutions, or ``None`` if they conflict."""
        merged = dict(self._mapping)
        for var, term in other.items():
            existing = merged.get(var)
            if existing is None:
                merged[var] = term
            elif existing != term:
                return None
        return Substitution(merged)

    def compose(self, other: "Substitution") -> "Substitution":
        """The composition ``self  then  other``.

        Applying the result is the same as applying ``self`` first and then
        ``other``: ``(self.compose(other))(t) == other(self(t))``.
        """
        composed: Dict[Variable, Term] = {}
        for var, term in self._mapping.items():
            composed[var] = other.apply_term(term)
        for var, term in other.items():
            composed.setdefault(var, term)
        return Substitution(composed)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """The substitution restricted to the given domain variables."""
        keep = set(variables)
        return Substitution({v: t for v, t in self._mapping.items() if v in keep})

    def without(self, variables: Iterable[Variable]) -> "Substitution":
        """The substitution with the given variables removed from the domain."""
        drop = set(variables)
        return Substitution({v: t for v, t in self._mapping.items() if v not in drop})

    # -- application -----------------------------------------------------------
    def apply_term(self, term: Term) -> Term:
        if isinstance(term, Variable):
            return self._mapping.get(term, term)
        if isinstance(term, FunctionTerm):
            return FunctionTerm(term.function, tuple(self.apply_term(a) for a in term.args))
        return term

    def apply_atom(self, atom: Atom) -> Atom:
        return atom.with_args(tuple(self.apply_term(t) for t in atom.args))

    def apply_comparison(self, comparison: Comparison) -> Comparison:
        return Comparison(
            self.apply_term(comparison.left),
            comparison.op,
            self.apply_term(comparison.right),
        )

    def apply_atoms(self, atoms: Iterable[Atom]) -> Tuple[Atom, ...]:
        return tuple(self.apply_atom(a) for a in atoms)

    def apply_comparisons(self, comparisons: Iterable[Comparison]) -> Tuple[Comparison, ...]:
        return tuple(self.apply_comparison(c) for c in comparisons)

    # -- inspection -----------------------------------------------------------
    def is_renaming(self) -> bool:
        """True when the substitution maps variables injectively to variables."""
        values = list(self._mapping.values())
        if not all(isinstance(v, Variable) for v in values):
            return False
        return len(set(values)) == len(values)

    def inverse(self) -> Optional["Substitution"]:
        """The inverse of a renaming substitution, or ``None`` if not a renaming."""
        if not self.is_renaming():
            return None
        return Substitution({t: v for v, t in self._mapping.items() if isinstance(t, Variable)})


def unify_terms(
    left: Term, right: Term, substitution: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Most general unifier of two terms, extending an existing substitution.

    The unifier treats both sides symmetrically: variables on either side may
    be bound.  Returns ``None`` when unification fails.
    """
    subst = substitution if substitution is not None else Substitution.empty()
    left = subst.apply_term(left)
    right = subst.apply_term(right)
    if left == right:
        return subst
    if isinstance(left, Variable):
        if left in term_variables(right):
            return None  # occurs check
        return _extend(subst, left, right)
    if isinstance(right, Variable):
        if right in term_variables(left):
            return None  # occurs check
        return _extend(subst, right, left)
    if isinstance(left, FunctionTerm) and isinstance(right, FunctionTerm):
        if left.function != right.function or len(left.args) != len(right.args):
            return None
        for l_arg, r_arg in zip(left.args, right.args):
            result = unify_terms(l_arg, r_arg, subst)
            if result is None:
                return None
            subst = result
        return subst
    # Two distinct constants, or a constant against a function term.
    return None


def _extend(subst: Substitution, var: Variable, term: Term) -> Substitution:
    """Bind ``var`` to ``term`` and normalize earlier bindings through it."""
    single = Substitution({var: term})
    updated = {v: single.apply_term(t) for v, t in subst.items()}
    updated[var] = term
    return Substitution(updated)


def unify_atoms(
    left: Atom, right: Atom, substitution: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Most general unifier of two atoms, or ``None`` if they do not unify."""
    if left.predicate != right.predicate or len(left.args) != len(right.args):
        return None
    subst = substitution if substitution is not None else Substitution.empty()
    for l_term, r_term in zip(left.args, right.args):
        result = unify_terms(l_term, r_term, subst)
        if result is None:
            return None
        subst = result
    return subst


def match_atom(
    pattern: Atom, target: Atom, substitution: Optional[Substitution] = None
) -> Optional[Substitution]:
    """One-way matching: bind variables of ``pattern`` so it becomes ``target``.

    Unlike :func:`unify_atoms`, variables occurring in ``target`` are treated
    as constants (they are never bound).  This is the operation needed by
    containment mappings and by evaluating queries over ground databases.
    """
    if pattern.predicate != target.predicate or len(pattern.args) != len(target.args):
        return None
    subst = substitution if substitution is not None else Substitution.empty()
    bindings = dict(subst)
    for p_term, t_term in zip(pattern.args, target.args):
        if isinstance(p_term, Constant):
            if p_term != t_term:
                return None
            continue
        assert isinstance(p_term, Variable)
        bound = bindings.get(p_term)
        if bound is None:
            bindings[p_term] = t_term
        elif bound != t_term:
            return None
    return Substitution(bindings)
