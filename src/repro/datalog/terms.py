"""Terms: variables and constants.

Terms are immutable and hashable so they can be freely used as dictionary
keys and members of sets (substitutions, canonical databases, join keys).

Because the containment search and the rewriting algorithms hash and compare
terms in their innermost loops, terms precompute their hash at construction
time, and :class:`Variable` / :class:`Constant` are *interned*: constructing
the same variable name (or the same constant value-and-type) twice returns
the same object, so equality checks hit CPython's identity fast path.  The
intern tables are bounded; once full, construction simply stops interning
(fresh-variable factories can mint unbounded numbers of one-shot names).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple, Union

#: Bound on each intern table.  Parser-produced names intern early and stay;
#: the cap only stops one-shot fresh variables from growing the table forever.
_INTERN_LIMIT = 1 << 16


class Term:
    """Abstract base class for the two kinds of terms.

    A term is either a :class:`Variable` or a :class:`Constant`.  The class
    exists mostly so signatures can say ``Term`` and so ``isinstance`` checks
    read well.
    """

    __slots__ = ()

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Variable)

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)


class Variable(Term):
    """A query variable, identified by its name.

    Variable names are ordinary strings.  By the conventions of the parser
    they start with an upper-case letter or an underscore, but the class
    itself accepts any non-empty string.
    """

    __slots__ = ("name", "_hash")

    _interned: Dict[str, "Variable"] = {}

    def __new__(cls, name: str = ""):
        if cls is Variable:
            cached = Variable._interned.get(name)
            if cached is not None:
                return cached
        return super().__new__(cls)

    def __init__(self, name: str):
        try:
            self._hash  # already initialised: the interned instance was returned
            return
        except AttributeError:
            pass
        if not name:
            raise ValueError("variable name must be a non-empty string")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("var", name)))
        if type(self) is Variable and len(Variable._interned) < _INTERN_LIMIT:
            Variable._interned[name] = self

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("Variable is immutable")

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __lt__(self, other: "Variable") -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name < other.name


#: Python values a :class:`Constant` may wrap.
ConstantValue = Union[str, int, float, bool]


class Constant(Term):
    """A constant value appearing in a query or a database tuple.

    Constants wrap plain Python values (strings, ints, floats, bools).  Two
    constants are equal iff their wrapped values are equal and of the same
    "kind" (numbers compare numerically, so ``Constant(1) == Constant(1.0)``
    mirrors Python semantics, which is what the engine relies on for joins).
    """

    __slots__ = ("value", "_hash")

    # Keyed by (type, value): Constant(1), Constant(1.0) and Constant(True)
    # compare equal but print differently, so they must stay distinct objects.
    _interned: Dict[Tuple[type, ConstantValue], "Constant"] = {}

    def __new__(cls, value: ConstantValue = ""):
        if cls is Constant:
            try:
                cached = Constant._interned.get((value.__class__, value))
            except TypeError:  # unhashable value; __init__ raises the TypeError
                cached = None
            if cached is not None:
                return cached
        return super().__new__(cls)

    def __init__(self, value: ConstantValue):
        try:
            self._hash  # already initialised: the interned instance was returned
            return
        except AttributeError:
            pass
        if not isinstance(value, (str, int, float, bool)):
            raise TypeError(
                f"constant values must be str, int, float or bool, got {type(value).__name__}"
            )
        object.__setattr__(self, "value", value)
        # hash(1) == hash(1.0) == hash(True), so equal constants (numbers
        # compare numerically) still hash identically after precomputation.
        object.__setattr__(self, "_hash", hash(("const", value)))
        if type(self) is Constant and len(Constant._interned) < _INTERN_LIMIT:
            Constant._interned[(value.__class__, value)] = self

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("Constant is immutable")

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return isinstance(other, Constant) and other.value == self.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'" if _needs_quotes(self.value) else self.value
        return str(self.value)

    def __lt__(self, other: "Constant") -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        return _sort_key(self.value) < _sort_key(other.value)


class FunctionTerm(Term):
    """A function term ``f(t1, ..., tk)``.

    Function terms never appear in user-written queries; they are introduced
    internally by the inverse-rules rewriting algorithm, where they play the
    role of Skolem terms standing for the unknown witnesses of a view's
    existential variables.  The engine grounds them into opaque Skolem values.
    """

    __slots__ = ("function", "args", "_hash")

    def __init__(self, function: str, args: Iterable["Term"] = ()):
        if not function:
            raise ValueError("function name must be a non-empty string")
        arg_tuple = tuple(args)
        for arg in arg_tuple:
            if not isinstance(arg, Term):
                raise TypeError(f"function term arguments must be terms, got {arg!r}")
        object.__setattr__(self, "function", function)
        object.__setattr__(self, "args", arg_tuple)
        object.__setattr__(self, "_hash", hash(("func", function, arg_tuple)))

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("FunctionTerm is immutable")

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return (
            isinstance(other, FunctionTerm)
            and other.function == self.function
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"FunctionTerm({self.function!r}, {list(self.args)!r})"

    def __str__(self) -> str:
        return f"{self.function}({', '.join(str(a) for a in self.args)})"


def term_variables(term: Term) -> Tuple["Variable", ...]:
    """All variables occurring (recursively) in a term, in order of occurrence."""
    if isinstance(term, Variable):
        return (term,)
    if isinstance(term, FunctionTerm):
        out: list[Variable] = []
        for arg in term.args:
            for var in term_variables(arg):
                if var not in out:
                    out.append(var)
        return tuple(out)
    return ()


def term_constants(term: Term) -> Tuple["Constant", ...]:
    """All constants occurring (recursively) in a term, in order of occurrence."""
    if isinstance(term, Constant):
        return (term,)
    if isinstance(term, FunctionTerm):
        out: list[Constant] = []
        for arg in term.args:
            for constant in term_constants(arg):
                if constant not in out:
                    out.append(constant)
        return tuple(out)
    return ()


def _needs_quotes(value: str) -> bool:
    """Whether a string constant needs quoting to survive a parse round-trip."""
    if not value:
        return True
    if not (value[0].islower()):
        return True
    return not all(ch.isalnum() or ch == "_" for ch in value)


def _sort_key(value: ConstantValue) -> tuple:
    """Total order over heterogeneous constant values (kind first, then value)."""
    if isinstance(value, bool):
        return (0, value)
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, value)


def term_sort_key(term: Term) -> tuple:
    """A deterministic sort key over mixed sequences of terms."""
    if isinstance(term, Variable):
        return (0, term.name)
    if isinstance(term, Constant):
        return (1,) + _sort_key(term.value)
    assert isinstance(term, FunctionTerm)
    return (2, term.function, tuple(term_sort_key(a) for a in term.args))


def make_term(value: Any) -> Term:
    """Coerce a Python value into a :class:`Term`.

    Existing terms pass through unchanged; strings that look like variables
    (leading upper-case letter or underscore) become variables; everything
    else becomes a constant.  This is a convenience for building queries
    programmatically in examples and tests.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)
