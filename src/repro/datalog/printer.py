"""Pretty-printing of queries, views and databases in datalog syntax.

The printed form round-trips through :mod:`repro.datalog.parser`.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.datalog.atoms import Atom, Comparison
from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.datalog.views import View, ViewSet


def atom_to_datalog(atom: Atom) -> str:
    """Render a single atom, e.g. ``cites(X, 'smith')``."""
    return str(atom)


def comparison_to_datalog(comparison: Comparison) -> str:
    """Render a single comparison, e.g. ``X < 5``."""
    return str(comparison)


def query_to_datalog(query: ConjunctiveQuery) -> str:
    """Render a conjunctive query as a single datalog rule."""
    parts = [str(atom) for atom in query.body]
    parts.extend(str(c) for c in query.comparisons)
    if not parts:
        return f"{query.head}."
    return f"{query.head} :- {', '.join(parts)}."


def union_to_datalog(query: UnionQuery) -> str:
    """Render a union query as one rule per disjunct."""
    return "\n".join(query_to_datalog(q) for q in query.disjuncts)


def view_to_datalog(view: View) -> str:
    """Render a view definition (identical to its defining rule)."""
    return query_to_datalog(view.definition)


def views_to_datalog(views: "ViewSet | Iterable[View]") -> str:
    """Render a collection of views, one rule per line."""
    return "\n".join(view_to_datalog(v) for v in views)


def to_datalog(
    obj: Union[Atom, Comparison, ConjunctiveQuery, UnionQuery, View, ViewSet],
) -> str:
    """Render any datalog-layer object in parser-compatible text form."""
    if isinstance(obj, ConjunctiveQuery):
        return query_to_datalog(obj)
    if isinstance(obj, UnionQuery):
        return union_to_datalog(obj)
    if isinstance(obj, View):
        return view_to_datalog(obj)
    if isinstance(obj, ViewSet):
        return views_to_datalog(obj)
    if isinstance(obj, Atom):
        return atom_to_datalog(obj)
    if isinstance(obj, Comparison):
        return comparison_to_datalog(obj)
    raise TypeError(f"cannot render object of type {type(obj).__name__}")
