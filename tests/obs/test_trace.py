"""Tracer behaviour, and ``Trace.to_json()`` pinned by ``docs/trace.schema.json``.

The server echoes trace trees to clients, so the JSON form is a contract,
validated the same way as ``docs/explanation.schema.json``: through
:mod:`jsonschema` when installed, otherwise through a minimal built-in
validator covering the keywords the schema uses (type, required, properties,
additionalProperties, items, minimum, and ``$ref`` into ``definitions`` —
the span tree is recursive).
"""

import json
import threading
from pathlib import Path

import pytest

from repro import connect
from repro.obs import Tracer

SCHEMA_PATH = Path(__file__).resolve().parents[2] / "docs" / "trace.schema.json"

VIEWS = """
v_rs(A, B) :- r(A, C), s(C, B).
v_r(A, B) :- r(A, B).
v_s(A, B) :- s(A, B).
"""
DATA = "r(1, 2). r(3, 4). s(2, 5). s(4, 6)."
QUERY = "q(X, Z) :- r(X, Y), s(Y, Z)."

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _check_type(value, expected, path):
    expected_types = expected if isinstance(expected, list) else [expected]
    for name in expected_types:
        if isinstance(value, _TYPES[name]):
            # bool is an int subclass; don't let True pass as a number.
            if name in ("integer", "number") and isinstance(value, bool):
                continue
            return
    raise AssertionError(f"{path}: {value!r} is not of type {expected}")


def _resolve_ref(ref, root):
    assert ref.startswith("#/"), f"only local refs supported, got {ref!r}"
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def mini_validate(value, schema, root, path="$"):
    """Validate the subset of JSON Schema draft-07 this contract uses."""
    if "$ref" in schema:
        mini_validate(value, _resolve_ref(schema["$ref"], root), root, path)
        return
    if "type" in schema:
        _check_type(value, schema["type"], path)
    if "minimum" in schema and isinstance(value, (int, float)):
        assert value >= schema["minimum"], f"{path}: {value} < {schema['minimum']}"
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            assert key in value, f"{path}: missing required key {key!r}"
        properties = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            extra = set(value) - set(properties)
            assert not extra, f"{path}: unexpected keys {sorted(extra)}"
        for key, subschema in properties.items():
            if key in value:
                mini_validate(value[key], subschema, root, f"{path}.{key}")
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            mini_validate(item, schema["items"], root, f"{path}[{index}]")


def validate(payload, schema):
    mini_validate(payload, schema, schema)
    try:
        import jsonschema
    except ImportError:
        return
    jsonschema.validate(payload, schema)


@pytest.fixture(scope="module")
def schema():
    return json.loads(SCHEMA_PATH.read_text())


class TestTracer:
    def test_trace_records_nested_spans(self):
        tracer = Tracer()
        with tracer.trace("answers") as trace:
            with tracer.span("rewrite", cache="miss"):
                with tracer.span("search"):
                    pass
            with tracer.span("execute"):
                pass
        root = trace.root
        assert [span.name for span in root.children] == ["rewrite", "execute"]
        assert root.children[0].annotations == {"cache": "miss"}
        assert root.children[0].children[0].name == "search"
        assert trace.duration is not None and trace.duration >= 0

    def test_nested_trace_joins_the_enclosing_tree(self):
        tracer = Tracer()
        with tracer.trace("explain") as outer:
            with tracer.trace("rewrite") as inner:
                assert inner is outer
        assert [span.name for span in outer.root.children] == ["rewrite"]
        assert tracer.last() is outer

    def test_disabled_tracer_is_a_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("answers") as trace:
            with tracer.span("rewrite") as span:
                assert span is None
        assert trace is None
        assert tracer.last() is None

    def test_span_without_active_trace_is_a_noop(self):
        tracer = Tracer()
        with tracer.span("orphan") as span:
            assert span is None

    def test_finished_ring_is_bounded(self):
        tracer = Tracer(keep=2)
        for index in range(4):
            with tracer.trace(f"t{index}"):
                pass
        names = [trace.name for trace in tracer.recent(10)]
        assert names == ["t2", "t3"]

    def test_find_by_trace_id_and_clear(self):
        tracer = Tracer()
        with tracer.trace("answers") as trace:
            pass
        assert tracer.find(trace.trace_id) is trace
        assert tracer.find("no-such-id") is None
        tracer.clear()
        assert tracer.last() is None

    def test_trace_ids_are_unique(self):
        tracer = Tracer()
        ids = set()
        for _ in range(32):
            with tracer.trace("t") as trace:
                ids.add(trace.trace_id)
        assert len(ids) == 32

    def test_threads_do_not_share_the_active_stack(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)
        failures = []

        def work(name):
            try:
                with tracer.trace(name) as trace:
                    barrier.wait(timeout=5)
                    with tracer.span(f"{name}-child"):
                        barrier.wait(timeout=5)
                    assert trace.name == name
                    assert [s.name for s in trace.root.children] == [f"{name}-child"]
            except Exception as error:  # pragma: no cover - failure reporting
                failures.append(error)

        threads = [threading.Thread(target=work, args=(n,)) for n in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not failures


class TestTraceJsonContract:
    def test_schema_file_is_valid_json_schema(self, schema):
        assert schema["type"] == "object"
        assert schema["additionalProperties"] is False
        assert "span" in schema["definitions"]

    def test_handmade_trace_validates(self, schema):
        tracer = Tracer()
        with tracer.trace("answers", query="q1"):
            with tracer.span("rewrite"):
                with tracer.span("search", candidates=3):
                    pass
        payload = tracer.last().to_json()
        validate(payload, schema)
        # Pure JSON: round-trips through the json module unchanged.
        assert json.loads(json.dumps(payload)) == payload

    def test_engine_answer_trace_validates(self, schema):
        engine = connect(views=VIEWS, data=DATA)
        engine.query(QUERY).answers()
        payload = engine.trace().to_json()
        validate(payload, schema)
        assert payload["name"] == "query"
        # The instrumented stages appear as child spans of the verb.
        child_names = {span["name"] for span in payload["root"]["children"]}
        assert child_names  # at least one instrumented stage ran

    def test_engine_explain_trace_validates(self, schema):
        engine = connect(views=VIEWS, data=DATA)
        engine.query(QUERY).explain()
        validate(engine.trace().to_json(), schema)

    def test_engine_delta_trace_validates(self, schema):
        engine = connect(views=VIEWS, data=DATA)
        engine.apply("+ r(9, 2).")
        payload = engine.trace().to_json()
        validate(payload, schema)
        assert payload["name"] == "apply"
