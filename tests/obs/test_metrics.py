"""Tests for the dependency-free metrics core (:mod:`repro.obs.metrics`)."""

import math
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_raises(self):
        counter = Counter()
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)
        assert counter.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_can_go_negative(self):
        gauge = Gauge()
        gauge.dec(4)
        assert gauge.value == -4.0


class TestHistogramBuckets:
    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(set(DEFAULT_LATENCY_BUCKETS))

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram(buckets=())

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(buckets=(1.0, 1.0, 2.0))

    def test_trailing_inf_bound_is_implicit(self):
        histogram = Histogram(buckets=(1.0, 2.0, float("inf")))
        assert histogram.bounds == (1.0, 2.0)

    def test_observations_land_in_le_buckets(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 8.0):
            histogram.observe(value)
        # le semantics: 1.0 belongs to the le="1.0" bucket, 8.0 to +Inf.
        assert histogram.cumulative_counts() == [2, 3, 4, 5]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(14.0)


class TestHistogramQuantiles:
    def test_linear_interpolation_inside_crossing_bucket(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 8.0):
            histogram.observe(value)
        # cumulative [1, 2, 3, 4]; rank 2.0 crosses in (1, 2].
        assert histogram.quantile(0.5) == pytest.approx(2.0)
        # rank 1.0 crosses in (0, 1].
        assert histogram.quantile(0.25) == pytest.approx(1.0)

    def test_tail_bucket_reports_highest_finite_bound(self):
        histogram = Histogram(buckets=(1.0, 4.0))
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 4.0
        assert histogram.p99 == 4.0

    def test_empty_histogram_quantile_is_nan(self):
        histogram = Histogram(buckets=(1.0,))
        assert math.isnan(histogram.quantile(0.5))

    def test_out_of_range_quantile_raises(self):
        histogram = Histogram(buckets=(1.0,))
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="quantile"):
                histogram.quantile(bad)

    def test_snapshot_shape(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        empty = histogram.snapshot()
        assert empty == {"count": 0, "sum": 0.0, "p50": None, "p90": None, "p99": None}
        histogram.observe(0.5)
        loaded = histogram.snapshot()
        assert loaded["count"] == 1
        assert loaded["sum"] == pytest.approx(0.5)
        assert all(loaded[key] is not None for key in ("p50", "p90", "p99"))


class TestMetricFamily:
    def test_labelled_children_are_cached_per_value(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("kind",))
        assert family.labels("a") is family.labels("a")
        assert family.labels("a") is not family.labels("b")
        family.labels("a").inc()
        assert family.labels("a").value == 1.0
        assert family.labels("b").value == 0.0

    def test_named_label_values(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("kind", "outcome"))
        assert family.labels(kind="a", outcome="ok") is family.labels("a", "ok")
        with pytest.raises(ValueError, match="missing label"):
            family.labels(kind="a")
        with pytest.raises(ValueError, match="unexpected labels"):
            family.labels(kind="a", outcome="ok", extra="?")
        with pytest.raises(ValueError, match="not both"):
            family.labels("a", outcome="ok")

    def test_wrong_label_arity_raises(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("kind",))
        with pytest.raises(ValueError, match="expected 1 label"):
            family.labels("a", "b")

    def test_solo_family_proxies_mutations(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        assert registry.get("c_total").value == 2.0
        assert registry.get("g").value == 7.0
        assert registry.get("h_seconds").snapshot()["count"] == 1

    def test_labelled_family_rejects_solo_access(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("kind",))
        with pytest.raises(ValueError, match="use .labels"):
            family.inc()


class TestRegistry:
    def test_declaration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", labels=("kind",))
        second = registry.counter("x_total", "different help", labels=("kind",))
        assert first is second

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already declared"):
            registry.gauge("x_total")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("kind",))
        with pytest.raises(ValueError, match="already declared"):
            registry.counter("x_total", labels=("other",))

    def test_families_are_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zz_total")
        registry.gauge("aa")
        assert [family.name for family in registry.families()] == ["aa", "zz_total"]

    def test_collect_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", labels=("kind",)).labels("fast").inc(3)
        registry.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = registry.collect()
        assert snapshot["jobs_total"]["type"] == "counter"
        assert snapshot["jobs_total"]["series"] == [
            {"labels": {"kind": "fast"}, "value": 3.0}
        ]
        series = snapshot["lat_seconds"]["series"][0]
        assert series["labels"] == {}
        assert series["count"] == 1


EXPECTED_EXPOSITION = """\
# HELP depth Queue depth.
# TYPE depth gauge
depth 3
# HELP jobs_total Jobs run.
# TYPE jobs_total counter
jobs_total{kind="fast"} 1
jobs_total{kind="slow"} 2
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 5.55
lat_seconds_count 3
"""


class TestExposition:
    def test_render_matches_golden_text(self):
        registry = MetricsRegistry()
        jobs = registry.counter("jobs_total", "Jobs run.", labels=("kind",))
        jobs.labels("fast").inc()
        jobs.labels("slow").inc(2)
        registry.gauge("depth", "Queue depth.").set(3)
        latency = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            latency.observe(value)
        assert registry.render() == EXPECTED_EXPOSITION

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("q",))
        family.labels('a"b\\c\nd').inc()
        rendered = registry.render()
        assert '{q="a\\"b\\\\c\\nd"}' in rendered

    def test_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "line one\nline two")
        assert "# HELP x_total line one\\nline two" in registry.render()


class TestThreadSafety:
    """Hammer each primitive from a pool; totals must come out exact."""

    THREADS = 8
    ROUNDS = 2_000

    def _hammer(self, work):
        with ThreadPoolExecutor(max_workers=self.THREADS) as pool:
            for future in [pool.submit(work) for _ in range(self.THREADS)]:
                future.result()

    def test_counter_increments_are_not_lost(self):
        counter = Counter()
        self._hammer(lambda: [counter.inc() for _ in range(self.ROUNDS)])
        assert counter.value == float(self.THREADS * self.ROUNDS)

    def test_gauge_balanced_inc_dec_nets_zero(self):
        gauge = Gauge()

        def work():
            for _ in range(self.ROUNDS):
                gauge.inc(2)
                gauge.dec(2)

        self._hammer(work)
        assert gauge.value == 0.0

    def test_histogram_count_and_sum_are_exact(self):
        histogram = Histogram(buckets=(0.5, 1.0))
        self._hammer(lambda: [histogram.observe(0.25) for _ in range(self.ROUNDS)])
        total = self.THREADS * self.ROUNDS
        assert histogram.count == total
        assert histogram.sum == pytest.approx(0.25 * total)
        assert histogram.cumulative_counts() == [total, total, total]

    def test_labelled_family_child_creation_race(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("kind",))

        def work():
            for index in range(self.ROUNDS):
                family.labels(str(index % 4)).inc()

        self._hammer(work)
        total = sum(child.value for _, child in family.children())
        assert total == float(self.THREADS * self.ROUNDS)
        assert len(family.children()) == 4
