"""Tests for database generators and the realistic scenarios."""

import pytest

from repro.engine.evaluate import evaluate, materialize_views
from repro.rewriting.rewriter import rewrite
from repro.workloads.data import (
    random_chain_database,
    random_database,
    random_graph_database,
    scaled_database,
)
from repro.workloads.generators import chain_query
from repro.workloads.schemas import ALL_SCENARIOS, enterprise_schema, paper_example, university_schema


class TestDataGenerators:
    def test_random_database_respects_schema(self):
        database = random_database({"r": 2, "s": 3}, tuples_per_relation=20, seed=1)
        assert database.relation("r").arity == 2
        assert database.relation("s").arity == 3
        assert len(database.relation("r")) <= 20

    def test_random_database_reproducible(self):
        a = random_database({"r": 2}, tuples_per_relation=30, seed=5)
        b = random_database({"r": 2}, tuples_per_relation=30, seed=5)
        assert a == b

    def test_chain_database_joins(self):
        database = random_chain_database(3, tuples_per_relation=80, domain_size=10, seed=0)
        answers = evaluate(chain_query(3), database)
        assert answers  # consecutive relations share a domain, so joins succeed

    def test_graph_database(self):
        database = random_graph_database(num_nodes=10, num_edges=40, seed=2)
        assert database.relation("edge").arity == 2
        assert len(database.relation("edge")) <= 40

    def test_scaled_database_multiplies_size(self):
        base = random_database({"r": 2}, tuples_per_relation=25, seed=1)
        scaled = scaled_database(base, 3)
        assert len(scaled.relation("r")) == 3 * len(base.relation("r"))

    def test_scaled_database_preserves_join_counts(self):
        base = random_chain_database(2, tuples_per_relation=30, domain_size=10, seed=3)
        scaled = scaled_database(base, 2)
        base_answers = evaluate(chain_query(2), base)
        scaled_answers = evaluate(chain_query(2), scaled)
        assert len(scaled_answers) == 2 * len(base_answers)


class TestScenarios:
    @pytest.mark.parametrize("factory", [paper_example, university_schema, enterprise_schema])
    def test_scenarios_build_and_materialize(self, factory):
        scenario = factory()
        database = scenario.make_database(40, 0)
        assert database.size() > 0
        instance = materialize_views(scenario.views, database)
        assert set(instance.relation_names()) == set(scenario.views.names())

    @pytest.mark.parametrize("factory", [paper_example, university_schema, enterprise_schema])
    def test_primary_query_has_equivalent_rewriting(self, factory):
        scenario = factory()
        result = rewrite(scenario.query, scenario.views, algorithm="minicon")
        assert result.has_equivalent

    def test_scenario_databases_reproducible(self):
        scenario = university_schema()
        assert scenario.make_database(30, 7) == scenario.make_database(30, 7)

    def test_all_scenarios_registry(self):
        assert set(ALL_SCENARIOS) == {"paper-example", "university", "enterprise"}
        for factory in ALL_SCENARIOS.values():
            assert factory().queries

    def test_university_rewriting_gives_same_answers(self):
        scenario = university_schema()
        database = scenario.make_database(60, 1)
        result = rewrite(scenario.query, scenario.views, algorithm="minicon")
        best = result.best
        instance = materialize_views(scenario.views, database)
        assert evaluate(best.query, instance) == evaluate(scenario.query, database)
