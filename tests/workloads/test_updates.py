"""Tests for the update-workload (churn stream) generators."""

import pytest

from repro.errors import QueryConstructionError
from repro.engine.database import Database
from repro.materialize.store import MaterializedViewStore
from repro.materialize.compare import assert_consistent
from repro.workloads.data import random_chain_database
from repro.workloads.updates import (
    chain_update_workload,
    complete_update_workload,
    star_update_workload,
    update_stream,
    update_workload,
)


class TestUpdateStream:
    def test_deterministic(self):
        db = random_chain_database(3, tuples_per_relation=50, seed=5)
        first = update_stream(db, steps=4, churn=0.02, seed=11)
        second = update_stream(db, steps=4, churn=0.02, seed=11)
        assert first == second
        different = update_stream(db, steps=4, churn=0.02, seed=12)
        assert first != different

    def test_deltas_are_valid_against_evolving_state(self):
        db = random_chain_database(3, tuples_per_relation=50, seed=0)
        deltas = update_stream(db, steps=6, churn=0.02, seed=1)
        shadow = db.copy()
        for delta in deltas:
            for name, rows in delta.removed.items():
                for row in rows:
                    assert row in shadow.tuples(name)
            for name, rows in delta.inserted.items():
                for row in rows:
                    assert row not in shadow.tuples(name)
            effective = shadow.apply_delta(delta)
            assert effective == delta  # every change was effective

    def test_input_database_not_mutated(self):
        db = random_chain_database(2, tuples_per_relation=30, seed=0)
        before = {name: db.tuples(name) for name in db.relation_names()}
        update_stream(db, steps=5, churn=0.05, seed=2)
        assert {name: db.tuples(name) for name in db.relation_names()} == before

    def test_churn_size(self):
        db = random_chain_database(2, tuples_per_relation=100, seed=0)
        deltas = update_stream(db, steps=3, churn=0.05, seed=3)
        expected = max(1, int(db.size() * 0.05))
        for delta in deltas:
            assert delta.size() <= expected  # saturated draws may be skipped
            assert delta.size() >= expected - 2

    def test_insert_ratio_extremes(self):
        db = random_chain_database(2, tuples_per_relation=40, seed=0)
        inserts_only = update_stream(db, steps=3, churn=0.05, insert_ratio=1.0, seed=4)
        assert all(not d.removed for d in inserts_only)
        deletes_only = update_stream(db, steps=3, churn=0.05, insert_ratio=0.0, seed=4)
        assert all(not d.inserted for d in deletes_only)

    def test_restricted_relations(self):
        db = random_chain_database(3, tuples_per_relation=40, seed=0)
        deltas = update_stream(db, steps=4, churn=0.05, relations=["r1"], seed=5)
        assert all(d.predicates() <= {"r1"} for d in deltas)

    def test_unknown_relation_rejected(self):
        db = Database.from_dict({"r": [(1, 2)]})
        with pytest.raises(QueryConstructionError):
            update_stream(db, relations=["ghost"])

    def test_bad_parameters_rejected(self):
        db = Database.from_dict({"r": [(1, 2)]})
        with pytest.raises(QueryConstructionError):
            update_stream(db, steps=-1)
        with pytest.raises(QueryConstructionError):
            update_stream(db, insert_ratio=1.5)


class TestShapeWorkloads:
    @pytest.mark.parametrize("kind", ["chain", "star", "complete"])
    def test_front_door(self, kind):
        workload = update_workload(
            kind, steps=3, churn=0.02, tuples_per_relation=40, seed=1
        ) if kind != "complete" else update_workload(kind, steps=3, churn=0.02, seed=1)
        assert workload.name == kind
        assert len(workload.deltas) == 3
        assert workload.total_churn() > 0
        assert len(workload.views) > 0

    def test_unknown_kind(self):
        with pytest.raises(QueryConstructionError):
            update_workload("zigzag")

    def test_chain_stream_drives_store_consistently(self):
        workload = chain_update_workload(
            length=3, tuples_per_relation=40, steps=4, churn=0.05, seed=2,
            segment_lengths=[1, 2],
        )
        store = MaterializedViewStore(workload.views, workload.database)
        for delta in workload.deltas:
            store.apply_delta(delta)
            assert_consistent(store)

    def test_star_and_complete_streams_drive_store(self):
        for workload in (
            star_update_workload(arms=3, tuples_per_relation=30, steps=3, churn=0.05, seed=3),
            complete_update_workload(size=3, num_edges=60, steps=3, churn=0.05, seed=4),
        ):
            store = MaterializedViewStore(workload.views, workload.database)
            for delta in workload.deltas:
                store.apply_delta(delta)
                assert_consistent(store)
