"""Tests for the chain/star/complete/random workload generators."""

import pytest

from repro.errors import QueryConstructionError
from repro.datalog.terms import Variable
from repro.rewriting.rewriter import rewrite
from repro.workloads.generators import (
    chain_query,
    chain_views,
    complete_query,
    complete_views,
    random_query,
    random_views,
    star_query,
    star_views,
    workload,
)


class TestChain:
    def test_chain_query_shape(self):
        query = chain_query(4)
        assert query.size() == 4
        assert query.head_variables() == (Variable("X0"), Variable("X4"))
        assert len(query.predicates()) == 4

    def test_single_relation_chain(self):
        query = chain_query(3, distinct_relations=False)
        assert query.predicates() == frozenset({("r", 2)})

    def test_invalid_length(self):
        with pytest.raises(QueryConstructionError):
            chain_query(0)

    def test_chain_views_cover_all_segments(self):
        views = chain_views(3)
        # Segments: 3 of length 1, 2 of length 2, 1 of length 3.
        assert len(views) == 6

    def test_segment_length_filter(self):
        views = chain_views(4, segment_lengths=[2])
        assert len(views) == 3
        assert all(v.definition.size() == 2 for v in views)

    def test_endpoint_views_are_rewritable(self):
        query = chain_query(4)
        views = chain_views(4, segment_lengths=[2])
        result = rewrite(query, views, algorithm="minicon")
        assert result.has_equivalent

    def test_expose_all_variables(self):
        views = chain_views(2, segment_lengths=[2], expose_endpoints_only=False)
        assert list(views)[0].arity == 3


class TestStar:
    def test_star_query_shape(self):
        query = star_query(3)
        assert query.size() == 3
        assert query.arity == 3
        assert Variable("C") not in query.head_variables()

    def test_star_query_with_center(self):
        query = star_query(3, expose_center=True)
        assert query.arity == 4

    def test_star_views_default_subsets(self):
        views = star_views(3)
        assert len(views) == 5  # 3 single-arm + 2 adjacent pairs

    def test_star_views_custom_subsets(self):
        views = star_views(4, arm_subsets=[[1, 2, 3, 4]])
        assert len(views) == 1
        assert list(views)[0].definition.size() == 4

    def test_invalid_arm_index(self):
        with pytest.raises(QueryConstructionError):
            star_views(2, arm_subsets=[[3]])

    def test_full_coverage_view_gives_rewriting(self):
        query = star_query(3)
        views = star_views(3, arm_subsets=[[1, 2, 3]])
        assert rewrite(query, views, algorithm="minicon").has_equivalent


class TestComplete:
    def test_complete_query_shape(self):
        query = complete_query(4)
        assert query.size() == 6  # C(4,2) ordered pairs i<j
        assert query.arity == 4

    def test_minimum_size(self):
        with pytest.raises(QueryConstructionError):
            complete_query(1)

    def test_complete_views_deterministic_given_seed(self):
        a = complete_views(3, num_views=4, seed=7)
        b = complete_views(3, num_views=4, seed=7)
        assert [str(v) for v in a] == [str(v) for v in b]

    def test_complete_views_all_over_edge_relation(self):
        for view in complete_views(3, num_views=3):
            assert view.predicates() == frozenset({("edge", 2)})


class TestRandom:
    def test_random_query_is_connected_and_reproducible(self):
        q1 = random_query(num_subgoals=5, seed=3)
        q2 = random_query(num_subgoals=5, seed=3)
        assert q1 == q2
        assert q1.size() == 5

    def test_random_query_distinguished_count(self):
        query = random_query(num_subgoals=4, num_distinguished=3, seed=1)
        assert query.arity <= 3

    def test_random_views_unique_names(self):
        views = random_views(num_views=6, seed=2)
        assert len(views.names()) == 6

    def test_different_seeds_differ(self):
        assert random_query(num_subgoals=5, seed=1) != random_query(num_subgoals=5, seed=2)


class TestWorkloadFrontDoor:
    @pytest.mark.parametrize("kind", ["chain", "star", "complete", "random"])
    def test_workload_kinds(self, kind):
        spec = workload(kind, seed=1, num_views=4)
        assert spec.query.size() >= 1
        assert len(spec.views) >= 1
        assert spec.name == kind

    def test_chain_num_views_truncates(self):
        spec = workload("chain", length=4, num_views=3)
        assert len(spec.views) == 3

    def test_unknown_kind(self):
        with pytest.raises(QueryConstructionError):
            workload("zigzag")

    def test_str_lists_query_and_views(self):
        spec = workload("chain", length=2)
        assert "q(X0, X2)" in str(spec)
