"""Tests for the MaterializedViewStore: maintenance, fallback, staleness."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_views
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.terms import FunctionTerm, Variable
from repro.datalog.views import View, ViewSet
from repro.errors import MaterializationError
from repro.engine.database import Database
from repro.materialize.changelog import (
    STRATEGY_INCREMENTAL,
    STRATEGY_RECOMPUTE,
    STRATEGY_UNAFFECTED,
)
from repro.materialize.compare import assert_consistent, verify_extents
from repro.materialize.delta import Delta
from repro.materialize.store import MaterializedViewStore

VIEWS = parse_views(
    """
    v_rs(A, B) :- r(A, C), s(C, B).
    v_r(A, B) :- r(A, B).
    v_t(A, B) :- t(A, B).
    """
)


def make_store():
    db = Database.from_dict({"r": [(1, 2)], "s": [(2, 3)], "t": [(9, 9)]})
    return MaterializedViewStore(VIEWS, db), db


class TestMaterialization:
    def test_initial_extents(self):
        store, _db = make_store()
        assert store.extent("v_rs") == frozenset({(1, 3)})
        assert store.extent("v_r") == frozenset({(1, 2)})
        assert store.extent("v_t") == frozenset({(9, 9)})
        assert_consistent(store)

    def test_unknown_view_raises(self):
        store, _db = make_store()
        with pytest.raises(MaterializationError):
            store.extent("nope")
        with pytest.raises(MaterializationError):
            store.refresh("nope")

    def test_as_database_is_live(self):
        store, _db = make_store()
        instance = store.as_database()
        store.apply_delta(Delta.insertion("r", [(1, 5), (5, 2)]))
        # Same object, maintained in place.
        assert instance is store.as_database()
        assert instance.tuples("v_rs") == frozenset({(1, 3), (5, 3)})


class TestApplyDelta:
    def test_changelog_scopes_to_affected_views(self):
        store, _db = make_store()
        log = store.apply_delta(Delta.insertion("r", [(7, 2)]))
        assert log.base_predicates == frozenset({"r"})
        assert set(log.changed_views) == {"v_rs", "v_r"}
        assert log.view_change("v_rs").strategy == STRATEGY_INCREMENTAL
        assert log.view_change("v_t").strategy == STRATEGY_UNAFFECTED
        assert log.affected_predicates() == frozenset({"r", "v_rs", "v_r"})
        assert store.views_skipped == 1

    def test_deletion_through_shared_join_witness(self):
        # Removing the only s-tuple empties v_rs but leaves v_r alone.
        store, _db = make_store()
        log = store.apply_delta(Delta.deletion("s", [(2, 3)]))
        assert store.extent("v_rs") == frozenset()
        assert store.extent("v_r") == frozenset({(1, 2)})
        assert log.view_change("v_rs").removed == frozenset({(1, 3)})
        assert_consistent(store)

    def test_noop_delta_changes_nothing(self):
        store, _db = make_store()
        log = store.apply_delta(Delta.insertion("r", [(1, 2)]))  # already present
        assert log.delta.is_empty()
        assert log.is_empty
        assert not log.changed_views

    def test_derivation_count_visible(self):
        store, _db = make_store()
        store.apply_delta(Delta.insertion("r", [(1, 7)]))
        store.apply_delta(Delta.insertion("s", [(7, 3)]))
        # (1, 3) now derivable through C=2 and C=7.
        assert store.derivation_count("v_rs", (1, 3)) == 2
        store.apply_delta(Delta.deletion("s", [(2, 3)]))
        assert store.extent("v_rs") == frozenset({(1, 3)})
        assert store.derivation_count("v_rs", (1, 3)) == 1

    def test_changelog_to_dict(self):
        store, _db = make_store()
        log = store.apply_delta(Delta.insertion("r", [(7, 2)]))
        payload = log.to_dict()
        assert payload["base_predicates"] == ["r"]
        assert payload["delta_size"] == 1
        assert {v["view"] for v in payload["views"]} == {"v_rs", "v_r", "v_t"}


class TestFallbackAndStaleness:
    def test_unsupported_view_falls_back_to_recompute(self):
        head = Atom("v_fn", [Variable("X")])
        body = [Atom("r", [Variable("X"), FunctionTerm("f", [Variable("X")])])]
        views = ViewSet([View("v_fn", ConjunctiveQuery(head, body))])
        db = Database.from_dict({"r": [(1, 2)]})
        store = MaterializedViewStore(views, db)
        log = store.apply_delta(Delta.insertion("r", [(3, 4)]))
        assert log.view_change("v_fn").strategy == STRATEGY_RECOMPUTE
        assert store.views_recomputed == 1

    def test_out_of_band_mutation_self_heals(self):
        store, db = make_store()
        db.add_fact("r", (8, 2))  # behind the store's back
        assert store.is_stale()
        assert store.extent("v_rs") == frozenset({(1, 3), (8, 3)})
        assert not store.is_stale()
        assert store.full_refreshes == 2

    def test_views_affected_by(self):
        store, _db = make_store()
        assert store.views_affected_by(["r"]) == ("v_rs", "v_r")
        assert store.views_affected_by(["t"]) == ("v_t",)
        assert store.views_affected_by(["nope"]) == ()

    def test_verify_extents_reports_mismatch(self):
        store, _db = make_store()
        # Sabotage the maintained instance to prove the checker sees it.
        store.as_database().add_fact("v_rs", (0, 0))
        mismatches = verify_extents(store)
        assert len(mismatches) == 1
        assert mismatches[0].view == "v_rs"
        assert mismatches[0].spurious == frozenset({(0, 0)})


class TestChurnConsistency:
    def test_long_mixed_stream_stays_exact(self):
        import random

        rng = random.Random(7)
        db = Database.from_dict(
            {
                "r": [(rng.randrange(10), rng.randrange(10)) for _ in range(80)],
                "s": [(rng.randrange(10), rng.randrange(10)) for _ in range(80)],
                "t": [(rng.randrange(10), rng.randrange(10)) for _ in range(20)],
            }
        )
        store = MaterializedViewStore(VIEWS, db)
        for _step in range(25):
            inserted, removed = {}, {}
            for name in ("r", "s", "t"):
                rows = sorted(db.tuples(name))
                if rows:
                    removed.setdefault(name, set()).update(
                        rng.sample(rows, min(2, len(rows)))
                    )
                inserted.setdefault(name, set()).update(
                    (rng.randrange(10), rng.randrange(10)) for _ in range(2)
                )
            store.apply_delta(Delta(inserted=inserted, removed=removed))
            assert_consistent(store)
        assert store.views_recomputed == 0
