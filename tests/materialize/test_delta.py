"""Tests for Delta construction, normalization, parsing and application."""

import pytest

from repro.errors import SchemaError
from repro.engine.database import Database
from repro.materialize.delta import Delta, parse_delta


class TestConstruction:
    def test_empty(self):
        delta = Delta()
        assert delta.is_empty()
        assert delta.size() == 0
        assert delta.predicates() == frozenset()

    def test_rows_are_frozen_and_tupled(self):
        delta = Delta(inserted={"r": [[1, 2], (1, 2), (3, 4)]})
        assert delta.inserted_rows("r") == frozenset({(1, 2), (3, 4)})
        assert delta.size() == 2

    def test_insert_and_remove_of_same_row_keeps_the_insertion(self):
        # Removals apply before insertions, so delete+reinsert means the row
        # is present afterwards — the insertion wins, the removal is dropped.
        delta = Delta(inserted={"r": [(1, 2), (3, 4)]}, removed={"r": [(1, 2)]})
        assert delta.inserted_rows("r") == frozenset({(1, 2), (3, 4)})
        assert delta.removed_rows("r") == frozenset()
        assert delta.predicates() == frozenset({"r"})

    def test_mixed_arity_rows_rejected(self):
        with pytest.raises(SchemaError):
            Delta(inserted={"r": [(1, 2), (1,)]})

    def test_named_constructors(self):
        assert Delta.insertion("r", [(1,)]).inserted_rows("r") == frozenset({(1,)})
        assert Delta.deletion("r", [(1,)]).removed_rows("r") == frozenset({(1,)})

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Delta().inserted = {}


class TestAlgebra:
    def test_inverted(self):
        delta = Delta(inserted={"r": [(1, 2)]}, removed={"s": [(3,)]})
        inverse = delta.inverted()
        assert inverse.removed_rows("r") == frozenset({(1, 2)})
        assert inverse.inserted_rows("s") == frozenset({(3,)})

    def test_merge_is_sequential_composition(self):
        # d1 inserts (1,2); d2 removes it again and inserts (5,6).  The later
        # operation wins per row: the merged delta must remove (1,2) (it may
        # have been present before d1) and insert (5,6).
        first = Delta(inserted={"r": [(1, 2)]})
        second = Delta(removed={"r": [(1, 2)]}, inserted={"r": [(5, 6)]})
        merged = first.merge(second)
        assert merged.inserted_rows("r") == frozenset({(5, 6)})
        assert merged.removed_rows("r") == frozenset({(1, 2)})

    def test_merge_remove_then_reinsert(self):
        first = Delta(removed={"r": [(1, 2)]})
        second = Delta(inserted={"r": [(1, 2)]})
        merged = first.merge(second)
        assert merged.inserted_rows("r") == frozenset({(1, 2)})
        assert merged.removed_rows("r") == frozenset()

    def test_equality_and_hash(self):
        a = Delta(inserted={"r": [(1, 2)]})
        b = Delta(inserted={"r": [(1, 2)]})
        assert a == b
        assert hash(a) == hash(b)
        assert a != Delta(removed={"r": [(1, 2)]})


class TestTextFormat:
    def test_round_trip(self):
        delta = Delta(
            inserted={"r": [(1, 2)], "name": [("ada", "lovelace")]},
            removed={"s": [(3, 4)]},
        )
        assert parse_delta(delta.to_text()) == delta

    def test_parse_comments_and_blanks(self):
        delta = parse_delta("# header\n\n+ r(1, 2).\n- s(3, 4).\n")
        assert delta.inserted_rows("r") == frozenset({(1, 2)})
        assert delta.removed_rows("s") == frozenset({(3, 4)})

    def test_parse_rejects_unsigned_lines(self):
        with pytest.raises(SchemaError):
            parse_delta("r(1, 2).")

    def test_parse_folds_lines_sequentially(self):
        # The text reads as a change script: the last line mentioning a row wins.
        assert parse_delta("+ r(1).\n- r(1).\n") == Delta(removed={"r": [(1,)]})
        assert parse_delta("- r(1).\n+ r(1).\n") == Delta(inserted={"r": [(1,)]})
        assert parse_delta("+ r(1).\n- r(1).\n+ r(1).\n") == Delta(
            inserted={"r": [(1,)]}
        )


class TestDatabaseApplyDelta:
    def test_effective_delta_drops_noops(self):
        db = Database.from_dict({"r": [(1, 2)], "s": [(9, 9)]})
        effective = db.apply_delta(
            Delta(
                inserted={"r": [(1, 2), (3, 4)]},  # (1,2) already present
                removed={"s": [(9, 9), (0, 0)]},  # (0,0) absent
            )
        )
        assert effective.inserted_rows("r") == frozenset({(3, 4)})
        assert effective.removed_rows("s") == frozenset({(9, 9)})
        assert db.tuples("r") == frozenset({(1, 2), (3, 4)})
        assert db.tuples("s") == frozenset()

    def test_version_observes_every_applied_change(self):
        db = Database.from_dict({"r": [(1, 2)]})
        before = db.version
        db.apply_delta(Delta(inserted={"r": [(3, 4)]}, removed={"r": [(1, 2)]}))
        assert db.version > before
        unchanged = db.version
        db.apply_delta(Delta(inserted={"r": [(3, 4)]}))  # no-op insert
        assert db.version == unchanged

    def test_deletions_apply_before_insertions(self):
        # A row removed and a different row inserted into the same relation:
        # both take effect.
        db = Database.from_dict({"r": [(1, 2)]})
        effective = db.apply_delta(Delta(inserted={"r": [(5, 6)]}, removed={"r": [(1, 2)]}))
        assert effective.size() == 2
        assert db.tuples("r") == frozenset({(5, 6)})

    def test_insert_into_new_relation_creates_it(self):
        db = Database()
        effective = db.apply_delta(Delta(inserted={"fresh": [(1,)]}))
        assert effective.inserted_rows("fresh") == frozenset({(1,)})
        assert db.tuples("fresh") == frozenset({(1,)})

    def test_remove_from_missing_relation_is_noop(self):
        db = Database()
        effective = db.apply_delta(Delta(removed={"ghost": [(1,)]}))
        assert effective.is_empty()

    def test_delete_then_reinsert_of_absent_row_inserts_it(self):
        # The regression the sequencing-aware normalization fixes: the old
        # order-insensitive cancellation dropped this delta entirely.
        db = Database.from_dict({"r": [(9, 9)]})
        effective = db.apply_delta(Delta(inserted={"r": [(1, 2)]}, removed={"r": [(1, 2)]}))
        assert db.tuples("r") == frozenset({(9, 9), (1, 2)})
        assert effective.inserted_rows("r") == frozenset({(1, 2)})


class TestDatabaseMutationRouting:
    def test_remove_fact_bumps_version(self):
        db = Database.from_dict({"r": [(1, 2)]})
        before = db.version
        assert db.remove_fact("r", (1, 2)) is True
        assert db.version == before + 1
        assert db.remove_fact("r", (1, 2)) is False
        assert db.version == before + 1

    def test_relation_discard_returns_presence(self):
        db = Database.from_dict({"r": [(1, 2)]})
        relation = db.relation("r")
        assert relation.discard((1, 2)) is True
        assert relation.discard((1, 2)) is False
