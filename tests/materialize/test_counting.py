"""Tests for the counting delta rules: exactness against recomputation."""

import random
from collections import Counter

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_query
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.terms import FunctionTerm, Variable
from repro.engine.database import Database
from repro.engine.evaluate import evaluate
from repro.materialize.counting import (
    UnsupportedViewDefinition,
    apply_count_changes,
    check_supported,
    delta_counts,
    derivation_counts,
)
from repro.materialize.delta import Delta


def maintained_extent(definition, db, deltas):
    """Apply deltas via counting maintenance; return the final extent."""
    counts = derivation_counts(definition, db)
    for delta in deltas:
        effective = db.apply_delta(delta)
        apply_count_changes(counts, delta_counts(definition, db, effective))
    return frozenset(counts)


class TestDerivationCounts:
    def test_counts_are_multiplicities_not_distinct_rows(self):
        # v(A) :- r(A, B): two B-witnesses for A=1 -> count 2, one row.
        db = Database.from_dict({"r": [(1, 2), (1, 3), (4, 5)]})
        definition = parse_query("v(A) :- r(A, B).")
        counts = derivation_counts(definition, db)
        assert counts == Counter({(1,): 2, (4,): 1})

    def test_deletion_keeps_row_while_derivations_remain(self):
        db = Database.from_dict({"r": [(1, 2), (1, 3)]})
        definition = parse_query("v(A) :- r(A, B).")
        counts = derivation_counts(definition, db)
        effective = db.apply_delta(Delta.deletion("r", [(1, 2)]))
        inserted, removed = apply_count_changes(
            counts, delta_counts(definition, db, effective)
        )
        assert inserted == frozenset() and removed == frozenset()
        assert counts == Counter({(1,): 1})
        effective = db.apply_delta(Delta.deletion("r", [(1, 3)]))
        inserted, removed = apply_count_changes(
            counts, delta_counts(definition, db, effective)
        )
        assert removed == frozenset({(1,)})
        assert counts == Counter()


class TestDeltaRulesMatchRecomputation:
    def check(self, definition_text, base, deltas):
        definition = parse_query(definition_text)
        db = Database.from_dict(base)
        extent = maintained_extent(definition, db, deltas)
        assert extent == evaluate(definition, db)

    def test_join_insertions(self):
        self.check(
            "v(A, C) :- r(A, B), s(B, C).",
            {"r": [(1, 2)], "s": [(2, 3)]},
            [Delta(inserted={"r": [(5, 2)], "s": [(2, 9)]})],
        )

    def test_join_deletions(self):
        self.check(
            "v(A, C) :- r(A, B), s(B, C).",
            {"r": [(1, 2), (5, 2)], "s": [(2, 3), (2, 9)]},
            [Delta(removed={"r": [(5, 2)], "s": [(2, 3)]})],
        )

    def test_self_join(self):
        # Both occurrences of r get their own delta rule; a single inserted
        # tuple can participate in either (or both) positions.
        self.check(
            "v(A, C) :- r(A, B), r(B, C).",
            {"r": [(1, 1), (1, 2)]},
            [
                Delta(inserted={"r": [(2, 1)]}),
                Delta(removed={"r": [(1, 1)]}),
                Delta(inserted={"r": [(2, 2)]}, removed={"r": [(1, 2)]}),
            ],
        )

    def test_constants_in_body(self):
        self.check(
            'v(A) :- r(A, "x").',
            {"r": [(1, "x"), (2, "y")]},
            [Delta(inserted={"r": [(3, "x"), (4, "y")]}, removed={"r": [(1, "x")]})],
        )

    def test_repeated_variable_in_subgoal(self):
        self.check(
            "v(A) :- r(A, A).",
            {"r": [(1, 1), (1, 2)]},
            [Delta(inserted={"r": [(2, 2), (3, 4)]}, removed={"r": [(1, 1)]})],
        )

    def test_comparisons(self):
        self.check(
            "v(A, B) :- r(A, B), A < B.",
            {"r": [(1, 5), (5, 1)]},
            [Delta(inserted={"r": [(2, 9), (9, 2)]}, removed={"r": [(1, 5)]})],
        )

    def test_mixed_batch_on_same_relation(self):
        self.check(
            "v(A, C) :- r(A, B), s(B, C).",
            {"r": [(1, 2), (3, 2)], "s": [(2, 4)]},
            [Delta(inserted={"r": [(7, 2)], "s": [(2, 8)]}, removed={"r": [(1, 2)], "s": [(2, 4)]})],
        )

    def test_randomized_churn_matches_recompute(self):
        rng = random.Random(42)
        definition = parse_query("v(A, C) :- r(A, B), s(B, C), t(C).")
        db = Database.from_dict(
            {
                "r": [(rng.randrange(8), rng.randrange(8)) for _ in range(60)],
                "s": [(rng.randrange(8), rng.randrange(8)) for _ in range(60)],
                "t": [(rng.randrange(8),) for _ in range(12)],
            }
        )
        counts = derivation_counts(definition, db)
        for _step in range(40):
            inserted, removed = {}, {}
            for name, arity in (("r", 2), ("s", 2), ("t", 1)):
                rows = sorted(db.tuples(name))
                if rows and rng.random() < 0.8:
                    removed.setdefault(name, set()).add(rng.choice(rows))
                inserted.setdefault(name, set()).add(
                    tuple(rng.randrange(8) for _ in range(arity))
                )
            effective = db.apply_delta(Delta(inserted=inserted, removed=removed))
            apply_count_changes(counts, delta_counts(definition, db, effective))
            assert frozenset(counts) == evaluate(definition, db)
            assert all(c > 0 for c in counts.values())


class TestUnsupportedAndInconsistent:
    def test_function_terms_rejected(self):
        head = Atom("v", [Variable("X")])
        body = [Atom("r", [Variable("X"), FunctionTerm("f", [Variable("X")])])]
        definition = ConjunctiveQuery(head, body)
        with pytest.raises(UnsupportedViewDefinition):
            check_supported(definition)

    def test_negative_count_raises(self):
        from repro.materialize.counting import CountInconsistencyError

        counts = Counter({(1,): 1})
        with pytest.raises(CountInconsistencyError):
            apply_count_changes(counts, Counter({(1,): -2}))

    def test_irrelevant_delta_produces_no_changes(self):
        definition = parse_query("v(A, C) :- r(A, B), s(B, C).")
        db = Database.from_dict({"r": [(1, 2)], "s": [(2, 3)], "zzz": [(0,)]})
        effective = db.apply_delta(Delta.insertion("zzz", [(7,)]))
        assert delta_counts(definition, db, effective) == Counter()
