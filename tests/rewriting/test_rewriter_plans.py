"""Tests for the rewrite() front door and the rewriting result containers."""

import pytest

from repro.errors import RewritingError
from repro.datalog.parser import parse_query, parse_views
from repro.datalog.queries import UnionQuery
from repro.rewriting.plans import Rewriting, RewritingKind, RewritingResult
from repro.rewriting.rewriter import ALGORITHMS, MODES, rewrite


class TestRewriteFrontDoor:
    @pytest.mark.parametrize("algorithm", ["exhaustive", "bucket", "minicon"])
    def test_equivalent_mode(self, algorithm, chain3_query, chain3_views):
        result = rewrite(chain3_query, chain3_views, algorithm=algorithm, mode="equivalent")
        assert result.has_equivalent
        assert all(r.kind is RewritingKind.EQUIVALENT for r in result.rewritings)
        assert result.elapsed >= 0.0

    def test_contained_mode_keeps_contained_rewritings(self, citation_views):
        query = parse_query("q(X, Y) :- cites(X, Z), cites(Z, Y), same_topic(X, Y).")
        result = rewrite(query, citation_views, algorithm="minicon", mode="contained")
        assert result.rewritings
        assert any(r.kind is RewritingKind.CONTAINED for r in result.rewritings)

    def test_maximally_contained_mode_appends_union(self, citation_query, citation_views):
        result = rewrite(
            citation_query, citation_views, algorithm="minicon", mode="maximally-contained"
        )
        kinds = {r.kind for r in result.rewritings}
        assert RewritingKind.MAXIMALLY_CONTAINED in kinds or RewritingKind.EQUIVALENT in kinds

    def test_partial_mode(self, chain3_query):
        views = parse_views("v_rs(A, B) :- r(A, C), s(C, B).")
        result = rewrite(chain3_query, views, mode="partial")
        assert result.rewritings
        assert all(r.kind is RewritingKind.PARTIAL for r in result.rewritings)

    def test_inverse_rules_algorithm(self, chain3_query, chain3_views):
        result = rewrite(chain3_query, chain3_views, algorithm="inverse-rules")
        assert result.rewritings[0].kind is RewritingKind.MAXIMALLY_CONTAINED

    def test_unknown_algorithm(self, chain3_query, chain3_views):
        with pytest.raises(RewritingError):
            rewrite(chain3_query, chain3_views, algorithm="quantum")

    def test_unknown_mode(self, chain3_query, chain3_views):
        with pytest.raises(RewritingError):
            rewrite(chain3_query, chain3_views, mode="sideways")

    def test_views_accepted_as_plain_list(self, chain3_query, chain3_views):
        result = rewrite(chain3_query, list(chain3_views), algorithm="minicon")
        assert result.has_equivalent

    def test_constants_are_exported(self):
        assert "minicon" in ALGORITHMS
        assert "equivalent" in MODES


class TestRewritingContainers:
    def _make(self, query_text, kind, algorithm="minicon"):
        return Rewriting(
            query=parse_query(query_text), kind=kind, algorithm=algorithm, views_used=("v",)
        )

    def test_best_prefers_smallest_equivalent(self, chain3_query, chain3_views):
        result = RewritingResult(query=chain3_query, views=chain3_views, algorithm="x")
        result.rewritings = [
            self._make("q(X, W) :- v1(X, Y), v2(Y, Z), v3(Z, W).", RewritingKind.EQUIVALENT),
            self._make("q(X, W) :- v12(X, Z), v3(Z, W).", RewritingKind.EQUIVALENT),
            self._make("q(X, W) :- v_all(X, W).", RewritingKind.CONTAINED),
        ]
        assert result.best.query.size() == 2

    def test_best_falls_back_to_maximally_contained(self, chain3_query, chain3_views):
        result = RewritingResult(query=chain3_query, views=chain3_views, algorithm="x")
        result.rewritings = [
            self._make("q(X, W) :- v(X, W).", RewritingKind.CONTAINED),
            self._make("q(X, W) :- v2(X, W).", RewritingKind.MAXIMALLY_CONTAINED),
        ]
        assert result.best.kind is RewritingKind.MAXIMALLY_CONTAINED

    def test_best_none_when_empty(self, chain3_query, chain3_views):
        result = RewritingResult(query=chain3_query, views=chain3_views, algorithm="x")
        assert result.best is None
        assert not result
        assert len(result) == 0

    def test_rewriting_disjuncts_and_size(self):
        union = UnionQuery(
            [parse_query("q(X) :- v1(X)."), parse_query("q(X) :- v2(X), v3(X).")]
        )
        rewriting = Rewriting(query=union, kind=RewritingKind.MAXIMALLY_CONTAINED, algorithm="x")
        assert len(rewriting.disjuncts()) == 2
        assert rewriting.size() == 3

    def test_is_equivalent_flag(self):
        partial = self._make("q(X) :- v(X), r(X).", RewritingKind.PARTIAL)
        contained = self._make("q(X) :- v(X).", RewritingKind.CONTAINED)
        assert partial.is_equivalent
        assert not contained.is_equivalent

    def test_str_mentions_algorithm(self):
        rewriting = self._make("q(X) :- v(X).", RewritingKind.EQUIVALENT, algorithm="bucket")
        assert "bucket" in str(rewriting)
