"""Tests for equality normalization used by the exhaustive rewriter."""

from repro.datalog.parser import parse_query, parse_views
from repro.containment.containment import is_equivalent
from repro.rewriting.exhaustive import ExhaustiveRewriter, normalize_equalities


class TestNormalizeEqualities:
    def test_constant_equality_is_inlined(self):
        query = parse_query("q(E) :- emp(E, S), S = 7.")
        normalized = normalize_equalities(query)
        assert normalized == parse_query("q(E) :- emp(E, 7).")

    def test_variable_equality_is_inlined(self):
        query = parse_query("q(X) :- r(X, Y), s(Z, X), Y = Z.")
        normalized = normalize_equalities(query)
        assert len(normalized.comparisons) == 0
        assert is_equivalent(normalized, query)

    def test_head_variables_are_preserved(self):
        query = parse_query("q(X) :- r(X, Y), X = 5.")
        normalized = normalize_equalities(query)
        assert normalized.head == query.head
        assert is_equivalent(normalized, query)

    def test_chained_equalities(self):
        query = parse_query("q(X) :- r(X, Y), s(Z, W), Y = Z, Z = W.")
        normalized = normalize_equalities(query)
        assert len(normalized.comparisons) == 0
        assert is_equivalent(normalized, query)

    def test_queries_without_equalities_unchanged(self):
        query = parse_query("q(X) :- r(X, Y), Y < 5.")
        assert normalize_equalities(query) == query

    def test_preserves_equivalence_in_general(self):
        query = parse_query("q(A) :- r(A, B), t(B, C), C = 3, B != 0.")
        assert is_equivalent(normalize_equalities(query), query)


class TestExhaustiveWithEqualities:
    def test_constant_view_matches_equality_query(self):
        query = parse_query("q(E) :- emp(E, S), S = 7.")
        views = parse_views("v(A) :- emp(A, 7).")
        assert ExhaustiveRewriter(views).rewrite(query).has_equivalent

    def test_equality_join_view(self):
        query = parse_query("q(X) :- r(X, Y), s(Z), Y = Z.")
        views = parse_views("v(A) :- r(A, B), s(B).")
        assert ExhaustiveRewriter(views).rewrite(query).has_equivalent

    def test_negative_case_still_rejected(self):
        query = parse_query("q(E) :- emp(E, S), S = 7.")
        views = parse_views("v(A) :- emp(A, 8).")
        assert not ExhaustiveRewriter(views).rewrite(query).has_equivalent
