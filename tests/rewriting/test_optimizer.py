"""Tests for cost-based plan selection."""

import pytest

from repro.datalog.parser import parse_query, parse_views
from repro.engine.database import Database
from repro.engine.evaluate import evaluate, materialize_views
from repro.rewriting.optimizer import OptimizationResult, choose_best_plan, enumerate_plans
from repro.rewriting.plans import RewritingKind
from repro.workloads.schemas import university_schema


@pytest.fixture
def join_setting():
    query = parse_query("q(X, Z) :- r(X, Y), s(Y, Z).")
    views = parse_views(
        """
        v_rs(A, B) :- r(A, C), s(C, B).
        v_r(A, B) :- r(A, B).
        v_s(A, B) :- s(A, B).
        """
    )
    database = Database.from_dict(
        {
            "r": [(i, i % 20) for i in range(400)],
            "s": [(i % 20, i) for i in range(400)],
        }
    )
    return query, views, database


class TestEnumeratePlans:
    def test_complete_and_partial_plans_enumerated(self, join_setting):
        query, views, _ = join_setting
        plans = enumerate_plans(query, views)
        kinds = {p.kind for p in plans}
        assert RewritingKind.EQUIVALENT in kinds
        assert RewritingKind.PARTIAL in kinds

    def test_plans_are_minimized_and_distinct(self, join_setting):
        query, views, _ = join_setting
        plans = enumerate_plans(query, views)
        canons = [p.query.canonical() for p in plans]
        assert len(canons) == len(set(canons))

    def test_without_partial(self, join_setting):
        query, views, _ = join_setting
        plans = enumerate_plans(query, views, include_partial=False)
        assert all(p.kind is RewritingKind.EQUIVALENT for p in plans)

    def test_multiple_algorithms_deduplicate(self, join_setting):
        query, views, _ = join_setting
        single = enumerate_plans(query, views, algorithms=("minicon",))
        double = enumerate_plans(query, views, algorithms=("minicon", "bucket"))
        assert {p.query.canonical() for p in single} <= {p.query.canonical() for p in double}


class TestChooseBestPlan:
    @pytest.mark.parametrize("metric", ["estimate", "measured"])
    def test_materialized_join_wins(self, join_setting, metric):
        query, views, database = join_setting
        result = choose_best_plan(query, views, database, metric=metric)
        assert isinstance(result, OptimizationResult)
        assert result.best.uses_views
        assert "v_rs" in result.best.rewriting.views_used
        assert result.speedup_over_base >= 1.0

    def test_base_plan_always_among_alternatives(self, join_setting):
        query, views, database = join_setting
        result = choose_best_plan(query, views, database)
        assert any(choice.source == "base" for choice in result.alternatives)

    def test_base_plan_wins_when_views_do_not_help(self):
        query = parse_query("q(X) :- t(X, Y).")
        views = parse_views("v_r(A, B) :- r(A, B).")
        database = Database.from_dict({"t": [(1, 2)], "r": [(3, 4)]})
        result = choose_best_plan(query, views, database)
        assert result.best.source == "base"
        assert not result.best.uses_views
        assert result.speedup_over_base == 1.0

    def test_chosen_plan_returns_correct_answers(self, join_setting):
        query, views, database = join_setting
        result = choose_best_plan(query, views, database, metric="measured")
        expected = evaluate(query, database)
        if result.best.uses_views:
            instance = materialize_views(views, database)
            if result.best.rewriting.kind is RewritingKind.PARTIAL:
                instance = instance.merge(database)
            assert evaluate(result.best.plan, instance) == expected
        else:
            assert evaluate(result.best.plan, database) == expected

    def test_university_scenario_picks_materialized_view(self):
        scenario = university_schema()
        database = scenario.make_database(150, seed=3)
        result = choose_best_plan(scenario.query, scenario.views, database, metric="measured")
        assert result.best.uses_views
        assert result.speedup_over_base > 1.0
