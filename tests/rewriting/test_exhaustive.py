"""Tests for candidate generation and the paper's bounded exhaustive search."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_query, parse_views
from repro.rewriting.candidates import (
    candidate_atoms_for_view,
    candidate_view_atoms,
    candidates_by_view,
)
from repro.rewriting.exhaustive import ExhaustiveRewriter
from repro.rewriting.plans import RewritingKind
from repro.rewriting.verify import is_complete_rewriting


class TestCandidates:
    def test_identity_view_produces_query_term_atoms(self, chain3_query, chain3_views):
        atoms = candidate_atoms_for_view(chain3_query, chain3_views["v_r"])
        assert Atom("v_r", ["X", "Y"]) in atoms

    def test_multi_subgoal_view_maps_whole_body(self, chain3_query, chain3_views):
        atoms = candidate_atoms_for_view(chain3_query, chain3_views["v_rs"])
        assert atoms == [Atom("v_rs", ["X", "Z"])]

    def test_view_not_embeddable_gives_no_candidates(self, chain3_query):
        views = parse_views("v_bad(A, B) :- r(A, C), r(C, B).")
        assert candidate_atoms_for_view(chain3_query, views["v_bad"]) == []

    def test_candidates_deduplicated_across_views(self, chain3_query, chain3_views):
        atoms = candidate_view_atoms(chain3_query, chain3_views)
        assert len(atoms) == len(set(atoms))

    def test_candidates_by_view_keys(self, chain3_query, chain3_views):
        grouped = candidates_by_view(chain3_query, chain3_views)
        assert set(grouped) == set(chain3_views.names())

    def test_same_relation_multiple_subgoals(self):
        query = parse_query("q(X, Z) :- e(X, Y), e(Y, Z).")
        views = parse_views("v(A, B) :- e(A, B).")
        atoms = candidate_atoms_for_view(query, views["v"])
        assert set(atoms) == {Atom("v", ["X", "Y"]), Atom("v", ["Y", "Z"])}


class TestExhaustiveRewriter:
    def test_finds_two_view_rewriting(self, chain3_query, chain3_views):
        result = ExhaustiveRewriter(chain3_views).rewrite(chain3_query)
        assert result.has_equivalent
        best = result.best
        assert best is not None
        assert best.kind is RewritingKind.EQUIVALENT
        assert is_complete_rewriting(best.query, chain3_query, chain3_views)

    def test_smallest_rewriting_found_first(self, chain3_query, chain3_views):
        result = ExhaustiveRewriter(chain3_views).rewrite(chain3_query)
        assert result.best.query.size() == 2  # v_rs + v_t (or v_r + v_st)

    def test_find_all_enumerates_alternatives(self, chain3_query, chain3_views):
        result = ExhaustiveRewriter(chain3_views, find_all=True).rewrite(chain3_query)
        assert len(result.equivalent_rewritings()) >= 2
        sizes = {r.query.size() for r in result.equivalent_rewritings()}
        assert 2 in sizes

    def test_no_rewriting_when_views_insufficient(self, chain3_query):
        views = parse_views("v_r(A, B) :- r(A, B). v_s(A, B) :- s(A, B).")
        result = ExhaustiveRewriter(views).rewrite(chain3_query)
        assert not result.has_equivalent

    def test_no_rewriting_when_view_hides_join_variable(self):
        # The view projects away the join variable, so the join cannot be
        # reconstructed — the classic non-usable view.
        query = parse_query("q(X, Z) :- r(X, Y), s(Y, Z).")
        views = parse_views("v_r_proj(A) :- r(A, B). v_s(A, B) :- s(A, B).")
        result = ExhaustiveRewriter(views).rewrite(query)
        assert not result.has_equivalent

    def test_identity_views_always_give_rewriting(self, chain3_query):
        views = parse_views(
            "v_r(A, B) :- r(A, B). v_s(A, B) :- s(A, B). v_t(A, B) :- t(A, B)."
        )
        result = ExhaustiveRewriter(views).rewrite(chain3_query)
        assert result.has_equivalent
        assert result.best.query.size() == 3

    def test_rewriting_respects_length_bound(self, chain3_query, chain3_views):
        result = ExhaustiveRewriter(chain3_views, find_all=True).rewrite(chain3_query)
        bound = chain3_query.size()
        for rewriting in result.equivalent_rewritings():
            assert rewriting.query.size() <= bound

    def test_max_subgoals_cap_can_miss_rewritings(self, chain3_query):
        views = parse_views(
            "v_r(A, B) :- r(A, B). v_s(A, B) :- s(A, B). v_t(A, B) :- t(A, B)."
        )
        capped = ExhaustiveRewriter(views, max_subgoals=2).rewrite(chain3_query)
        assert not capped.has_equivalent

    def test_query_with_constants(self):
        query = parse_query("q(X) :- enrolled(X, cs101), tough(cs101).")
        views = parse_views("v(A, B) :- enrolled(A, B), tough(B).")
        result = ExhaustiveRewriter(views).rewrite(query)
        assert result.has_equivalent
        assert result.best.query.body[0] == Atom("v", ["X", "cs101"])

    def test_query_with_comparisons(self):
        query = parse_query("q(X) :- emp(X, S), S > 100.")
        views = parse_views("v(A, B) :- emp(A, B).")
        result = ExhaustiveRewriter(views).rewrite(query)
        assert result.has_equivalent
        assert len(result.best.query.comparisons) == 1

    def test_view_with_comparison_too_strict(self):
        query = parse_query("q(X) :- emp(X, S), S > 100.")
        views = parse_views("v(A) :- emp(A, B), B > 200.")
        result = ExhaustiveRewriter(views).rewrite(query)
        assert not result.has_equivalent

    def test_view_with_matching_comparison(self):
        query = parse_query("q(X) :- emp(X, S), S > 100.")
        views = parse_views("v(A) :- emp(A, B), B > 100.")
        result = ExhaustiveRewriter(views).rewrite(query)
        assert result.has_equivalent

    def test_decision_procedure_helper(self, chain3_query, chain3_views):
        assert ExhaustiveRewriter(chain3_views).has_complete_rewriting(chain3_query)

    def test_candidates_examined_is_reported(self, chain3_query, chain3_views):
        result = ExhaustiveRewriter(chain3_views, find_all=True).rewrite(chain3_query)
        assert result.candidates_examined >= len(result.rewritings)
