"""Tests for maximally-contained rewritings, partial rewritings and view usability."""

import pytest

from repro.errors import RewritingError
from repro.datalog.parser import parse_query, parse_view, parse_views
from repro.datalog.queries import UnionQuery
from repro.containment.containment import is_contained, is_equivalent
from repro.engine.database import Database
from repro.rewriting.contained import maximally_contained_rewriting
from repro.rewriting.expansion import expand_rewriting
from repro.rewriting.partial import partial_rewritings
from repro.rewriting.plans import RewritingKind
from repro.rewriting.usability import view_is_relevant, view_is_usable, view_is_useful


class TestMaximallyContained:
    def test_union_of_incomparable_disjuncts(self, citation_views):
        # Indirect citation with a common topic: no equivalent rewriting
        # exists, and two incomparable contained rewritings do (through
        # v_mutual twice, and through v_chain).
        query = parse_query("q(X, Y) :- cites(X, Z), cites(Z, Y), same_topic(X, Y).")
        plan = maximally_contained_rewriting(query, citation_views)
        assert plan is not None
        assert plan.kind is RewritingKind.MAXIMALLY_CONTAINED
        assert isinstance(plan.query, UnionQuery)
        assert len(plan.query) == 2
        expansion = plan.expansion
        assert expansion is not None
        assert is_contained(expansion, query)
        assert not is_contained(query, expansion)

    def test_equivalent_disjunct_marks_plan_equivalent(self, chain3_query, chain3_views):
        plan = maximally_contained_rewriting(chain3_query, chain3_views)
        assert plan is not None
        assert plan.kind is RewritingKind.EQUIVALENT

    def test_none_when_no_view_applies(self):
        query = parse_query("q(X) :- t(X).")
        views = parse_views("v(A) :- r(A).")
        assert maximally_contained_rewriting(query, views) is None

    def test_pruning_removes_subsumed_disjuncts(self):
        query = parse_query("q(X) :- r(X, Y).")
        views = parse_views(
            """
            v_general(A, B) :- r(A, B).
            v_specific(A) :- r(A, 5).
            """
        )
        plan = maximally_contained_rewriting(query, views, prune=True)
        assert plan is not None
        # The specific view's rewriting is contained in the general one and is pruned.
        assert not isinstance(plan.query, UnionQuery)

    def test_prune_false_keeps_all_disjuncts(self):
        query = parse_query("q(X) :- r(X, Y).")
        views = parse_views(
            """
            v_general(A, B) :- r(A, B).
            v_specific(A) :- r(A, 5).
            """
        )
        plan = maximally_contained_rewriting(query, views, prune=False)
        assert isinstance(plan.query, UnionQuery)
        assert len(plan.query) == 2

    def test_bucket_and_minicon_unions_are_equivalent(self, citation_query, citation_views):
        minicon_plan = maximally_contained_rewriting(
            citation_query, citation_views, algorithm="minicon"
        )
        bucket_plan = maximally_contained_rewriting(
            citation_query, citation_views, algorithm="bucket"
        )
        assert minicon_plan is not None and bucket_plan is not None
        assert is_equivalent(minicon_plan.expansion, bucket_plan.expansion)

    def test_unknown_algorithm_rejected(self, citation_query, citation_views):
        with pytest.raises(RewritingError):
            maximally_contained_rewriting(citation_query, citation_views, algorithm="nope")


class TestPartialRewritings:
    def test_partial_plan_mixes_views_and_base_relations(self, chain3_query):
        views = parse_views("v_rs(A, B) :- r(A, C), s(C, B).")
        plans = partial_rewritings(chain3_query, views)
        assert plans
        plan = plans[0]
        assert plan.kind is RewritingKind.PARTIAL
        predicates = {atom.predicate for atom in plan.query.body}
        assert "v_rs" in predicates
        assert "t" in predicates

    def test_partial_expansions_are_equivalent(self, chain3_query, chain3_views):
        for plan in partial_rewritings(chain3_query, chain3_views):
            assert plan.expansion is not None
            assert is_equivalent(plan.expansion, chain3_query)

    def test_complete_plans_excluded_by_default(self, chain3_query, chain3_views):
        plans = partial_rewritings(chain3_query, chain3_views)
        for plan in plans:
            assert any(
                not chain3_views.is_view_predicate(a.predicate) for a in plan.query.body
            )

    def test_include_complete_flag(self, chain3_query, chain3_views):
        plans = partial_rewritings(chain3_query, chain3_views, include_complete=True)
        assert any(plan.kind is RewritingKind.EQUIVALENT for plan in plans)

    def test_no_views_applicable_gives_no_plans(self, chain3_query):
        views = parse_views("v(A) :- unrelated(A).")
        assert partial_rewritings(chain3_query, views) == []

    def test_max_plans_caps_enumeration(self, chain3_query, chain3_views):
        capped = partial_rewritings(chain3_query, chain3_views, max_plans=1)
        assert len(capped) <= 1


class TestUsability:
    def test_relevant_view(self, chain3_query, chain3_views):
        assert view_is_relevant(chain3_query, chain3_views["v_rs"])

    def test_irrelevant_view(self, chain3_query):
        view = parse_view("v(A, B) :- r(A, C), r(C, B).")
        assert not view_is_relevant(chain3_query, view)

    def test_usable_view(self, chain3_query, chain3_views):
        assert view_is_usable(chain3_query, chain3_views["v_rs"], chain3_views)

    def test_unusable_view_that_mentions_right_relations(self):
        # The view projects away the join variable: relevant relations, but no
        # complete rewriting (even partial) can use it.
        query = parse_query("q(X, Z) :- r(X, Y), s(Y, Z).")
        view = parse_view("v_lossy(A) :- r(A, B).")
        others = parse_views("v_r(A, B) :- r(A, B). v_s(A, B) :- s(A, B).")
        assert not view_is_usable(query, view, others)

    def test_usable_only_in_partial_rewriting(self):
        query = parse_query("q(X, Z) :- r(X, Y), s(Y, Z), t(Z, W).")
        view = parse_view("v_rs(A, B) :- r(A, C), s(C, B).")
        # No view covers t, so the only equivalent plans are partial ones.
        assert view_is_usable(query, view, [], allow_partial=True)
        assert not view_is_usable(query, view, [], allow_partial=False)

    def test_useful_view_reduces_cost(self):
        query = parse_query("q(X, Z) :- r(X, Y), s(Y, Z).")
        view = parse_view("v_rs(A, B) :- r(A, C), s(C, B).")
        database = Database.from_dict(
            {
                "r": [(i, i % 10) for i in range(300)],
                "s": [(i % 10, i) for i in range(300)],
            }
        )
        assert view_is_useful(query, view, database)

    def test_view_not_useful_when_it_cannot_be_used(self):
        query = parse_query("q(X, Z) :- r(X, Y), s(Y, Z).")
        view = parse_view("v_lossy(A) :- r(A, B).")
        database = Database.from_dict({"r": [(1, 2)], "s": [(2, 3)]})
        assert not view_is_useful(query, view, database)
