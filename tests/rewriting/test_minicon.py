"""Tests for the MiniCon algorithm (MCD formation and combination)."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_query, parse_views
from repro.rewriting.minicon import MiniConRewriter
from repro.rewriting.plans import RewritingKind
from repro.rewriting.verify import is_complete_rewriting, is_contained_rewriting


class TestMCDFormation:
    def test_single_subgoal_mcd(self, chain3_query, chain3_views):
        mcds = MiniConRewriter(chain3_views).form_mcds(chain3_query)
        single = [m for m in mcds if m.view == "v_t"]
        assert len(single) == 1
        assert single[0].covered == frozenset({2})

    def test_property_c2_extends_coverage(self, chain3_query, chain3_views):
        # v_rs hides the r/s join variable, so an MCD using it must cover both
        # the r and the s subgoal.
        mcds = MiniConRewriter(chain3_views).form_mcds(chain3_query)
        for mcd in mcds:
            if mcd.view == "v_rs":
                assert mcd.covered == frozenset({0, 1})

    def test_property_c1_rejects_projected_distinguished_variable(self):
        query = parse_query("q(X) :- r(X, Y).")
        views = parse_views("v_proj(B) :- r(A, B).")
        assert MiniConRewriter(views).form_mcds(query) == []

    def test_c2_failure_yields_no_mcd(self):
        # The view hides Y but cannot cover the s-subgoal that also uses Y.
        query = parse_query("q(X) :- r(X, Y), s(Y, Z).")
        views = parse_views("v_r(A) :- r(A, B).")
        assert MiniConRewriter(views).form_mcds(query) == []

    def test_c2_success_when_view_covers_all_uses(self):
        query = parse_query("q(X) :- r(X, Y), s(Y, Z).")
        views = parse_views("v_rs(A) :- r(A, B), s(B, C).")
        mcds = MiniConRewriter(views).form_mcds(query)
        assert len(mcds) == 1
        assert mcds[0].covered == frozenset({0, 1})

    def test_self_join_produces_multiple_mcds(self):
        query = parse_query("q(X, Z) :- e(X, Y), e(Y, Z).")
        views = parse_views("v(A, B) :- e(A, B).")
        mcds = MiniConRewriter(views).form_mcds(query)
        assert len(mcds) == 2
        assert {m.covered for m in mcds} == {frozenset({0}), frozenset({1})}

    def test_constant_binding_recorded(self):
        query = parse_query("q(X) :- r(X, Y).")
        views = parse_views("v(A) :- r(A, 5).")
        mcds = MiniConRewriter(views).form_mcds(query)
        assert len(mcds) == 1
        assert mcds[0].constant_bindings != ()

    def test_merged_variables_recorded(self):
        query = parse_query("q(X, Y) :- r(X, Y).")
        views = parse_views("v(A) :- r(A, A).")
        mcds = MiniConRewriter(views).form_mcds(query)
        assert len(mcds) == 1
        assert mcds[0].merged_variables != ()


class TestMiniConRewriting:
    def test_finds_equivalent_rewriting(self, chain3_query, chain3_views):
        result = MiniConRewriter(chain3_views).rewrite(chain3_query)
        assert result.has_equivalent
        assert result.best.query.size() == 2

    def test_all_outputs_are_contained(self, citation_query, citation_views):
        result = MiniConRewriter(citation_views).rewrite(citation_query)
        assert result.rewritings
        for rewriting in result.rewritings:
            assert is_contained_rewriting(rewriting.query, citation_query, citation_views)

    def test_no_rewriting_when_join_variable_hidden(self):
        query = parse_query("q(X, Z) :- r(X, Y), s(Y, Z).")
        views = parse_views("v_r(A) :- r(A, B). v_s(B) :- s(A, B).")
        result = MiniConRewriter(views).rewrite(query)
        assert not result.rewritings

    def test_unverified_mode_matches_verified_on_comparison_free_inputs(
        self, chain3_query, chain3_views
    ):
        verified = MiniConRewriter(chain3_views, verify_rewritings=True).rewrite(chain3_query)
        unverified = MiniConRewriter(chain3_views, verify_rewritings=False).rewrite(chain3_query)
        assert {r.query.canonical() for r in verified.rewritings} == {
            r.query.canonical() for r in unverified.rewritings
        }

    def test_unverified_outputs_are_still_contained(self, citation_query, citation_views):
        result = MiniConRewriter(citation_views, verify_rewritings=False).rewrite(citation_query)
        for rewriting in result.rewritings:
            assert is_contained_rewriting(rewriting.query, citation_query, citation_views)

    def test_verification_forced_with_comparisons(self):
        query = parse_query("q(X) :- emp(X, S), S > 100.")
        views = parse_views("v(A, B) :- emp(A, B).")
        result = MiniConRewriter(views, verify_rewritings=False).rewrite(query)
        assert result.has_equivalent
        for rewriting in result.rewritings:
            assert is_contained_rewriting(rewriting.query, query, views)

    def test_max_rewritings_cap(self, citation_query, citation_views):
        capped = MiniConRewriter(citation_views, max_rewritings=1).rewrite(citation_query)
        assert len(capped.rewritings) <= 1

    def test_distinguished_collapse_yields_contained_rewriting(self):
        # The view equates the two distinguished variables, so the rewriting
        # is contained (not equivalent) in the query.
        query = parse_query("q(X, Y) :- r(X, Y).")
        views = parse_views("v(A) :- r(A, A).")
        result = MiniConRewriter(views).rewrite(query)
        assert result.rewritings
        assert all(r.kind is RewritingKind.CONTAINED for r in result.rewritings)

    def test_star_query_without_center_has_no_rewriting(self):
        query = parse_query("q(X1, X2) :- e1(C, X1), e2(C, X2).")
        views = parse_views("v1(A) :- e1(B, A). v2(A) :- e2(B, A).")
        assert not MiniConRewriter(views).rewrite(query).rewritings

    def test_star_query_with_center_view_has_rewriting(self):
        query = parse_query("q(X1, X2) :- e1(C, X1), e2(C, X2).")
        views = parse_views("v1(B, A) :- e1(B, A). v2(B, A) :- e2(B, A).")
        result = MiniConRewriter(views).rewrite(query)
        assert result.has_equivalent

    def test_agreement_with_exhaustive_on_existence(self, chain3_query, chain3_views):
        from repro.rewriting.exhaustive import ExhaustiveRewriter

        exhaustive = ExhaustiveRewriter(chain3_views).rewrite(chain3_query)
        minicon = MiniConRewriter(chain3_views).rewrite(chain3_query)
        assert exhaustive.has_equivalent == minicon.has_equivalent

    def test_examined_counts_combinations(self, chain3_query, chain3_views):
        result = MiniConRewriter(chain3_views).rewrite(chain3_query)
        assert result.candidates_examined >= len(result.rewritings)
