"""Tests for the inverse-rules algorithm and certain-answer computation."""

import pytest

from repro.errors import RewritingError, UnsupportedFeatureError
from repro.datalog.parser import parse_query, parse_view, parse_views
from repro.datalog.terms import FunctionTerm
from repro.engine.database import Database
from repro.engine.evaluate import evaluate, materialize_views
from repro.rewriting.certain import certain_answers
from repro.rewriting.inverse_rules import (
    InverseRulesRewriter,
    inverse_rules,
    inverse_rules_program,
)
from repro.rewriting.plans import RewritingKind


class TestInverseRules:
    def test_one_rule_per_view_subgoal(self):
        view = parse_view("v(X, Y) :- r(X, Z), s(Z, Y).")
        rules = inverse_rules(view)
        assert len(rules) == 2
        assert {rule.head.predicate for rule in rules} == {"r", "s"}

    def test_existential_variables_become_skolem_terms(self):
        view = parse_view("v(X) :- r(X, Z).")
        (rule,) = inverse_rules(view)
        skolem = rule.head.args[1]
        assert isinstance(skolem, FunctionTerm)
        assert skolem.args == view.head.args

    def test_distinguished_variables_stay_plain(self):
        view = parse_view("v(X, Y) :- r(X, Y).")
        (rule,) = inverse_rules(view)
        assert rule.head == view.body[0]

    def test_bodies_are_view_atoms(self):
        view = parse_view("v(X) :- r(X, Z), s(Z).")
        for rule in inverse_rules(view):
            assert len(rule.body) == 1
            assert rule.body[0].predicate == "v"

    def test_comparisons_rejected(self):
        view = parse_view("v(X) :- r(X, Y), Y > 3.")
        with pytest.raises(UnsupportedFeatureError):
            inverse_rules(view)

    def test_program_contains_query(self):
        query = parse_query("q(X) :- r(X, Y).")
        views = parse_views("v(A) :- r(A, B).")
        program = inverse_rules_program(query, views)
        assert len(program) == 2
        assert program.rules[-1] == query


class TestCertainAnswers:
    @pytest.fixture
    def setting(self):
        query = parse_query("q(X) :- r(X, Y), s(Y, Z).")
        views = parse_views(
            """
            v_r(A, B) :- r(A, B).
            v_rs(A) :- r(A, B), s(B, C).
            """
        )
        database = Database.from_dict(
            {"r": [(1, 2), (3, 4), (5, 6)], "s": [(2, 7), (4, 8)]}
        )
        return query, views, database

    def test_inverse_rules_match_direct_evaluation_when_views_are_lossless(self, setting):
        query, views, database = setting
        instance = materialize_views(views, database)
        answers = certain_answers(query, views, instance, method="inverse-rules")
        # v_rs already records exactly which r-tuples have an s-continuation,
        # so the certain answers coincide with the direct answers here.
        assert answers == evaluate(query, database)

    def test_skolem_answers_are_filtered(self):
        # The view only exposes the first column of r; no s-fact can be
        # certain, so a query needing s has no certain answers.
        query = parse_query("q(X) :- r(X, Y), s(Y, Z).")
        views = parse_views("v_r1(A) :- r(A, B).")
        instance = Database.from_dict({"v_r1": [(1,), (2,)]})
        assert certain_answers(query, views, instance, method="inverse-rules") == frozenset()

    def test_projection_query_is_answerable_from_lossy_view(self):
        query = parse_query("q(X) :- r(X, Y).")
        views = parse_views("v_r1(A) :- r(A, B).")
        instance = Database.from_dict({"v_r1": [(1,), (2,)]})
        answers = certain_answers(query, views, instance, method="inverse-rules")
        assert answers == frozenset({(1,), (2,)})

    def test_methods_agree(self, setting):
        query, views, database = setting
        instance = materialize_views(views, database)
        by_rules = certain_answers(query, views, instance, method="inverse-rules")
        by_minicon = certain_answers(query, views, instance, method="minicon")
        by_bucket = certain_answers(query, views, instance, method="bucket")
        assert by_rules == by_minicon == by_bucket

    def test_certain_answers_are_sound(self, setting):
        query, views, database = setting
        instance = materialize_views(views, database)
        answers = certain_answers(query, views, instance, method="rewriting")
        assert answers <= evaluate(query, database)

    def test_unknown_method_rejected(self, setting):
        query, views, database = setting
        with pytest.raises(RewritingError):
            certain_answers(query, views, Database(), method="magic")

    def test_no_contained_rewriting_means_no_certain_answers(self):
        query = parse_query("q(X) :- t(X, Y).")
        views = parse_views("v_r(A, B) :- r(A, B).")
        assert certain_answers(query, views, Database(), method="rewriting") == frozenset()


class TestInverseRulesRewriter:
    def test_rewrite_reports_maximally_contained_plan(self):
        query = parse_query("q(X) :- r(X, Y).")
        views = parse_views("v(A) :- r(A, B).")
        result = InverseRulesRewriter(views).rewrite(query)
        assert len(result.rewritings) == 1
        assert result.rewritings[0].kind is RewritingKind.MAXIMALLY_CONTAINED

    def test_certain_answers_shortcut(self):
        query = parse_query("q(X) :- r(X, Y).")
        views = parse_views("v(A) :- r(A, B).")
        rewriter = InverseRulesRewriter(views)
        instance = Database.from_dict({"v": [(1,), (2,)]})
        assert rewriter.certain_answers(query, instance) == frozenset({(1,), (2,)})
