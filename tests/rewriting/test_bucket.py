"""Tests for the bucket algorithm."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_query, parse_views
from repro.rewriting.bucket import BucketRewriter
from repro.rewriting.plans import RewritingKind
from repro.rewriting.verify import is_complete_rewriting, is_contained_rewriting


class TestBucketCreation:
    def test_one_bucket_per_subgoal(self, chain3_query, chain3_views):
        buckets = BucketRewriter(chain3_views).build_buckets(chain3_query)
        assert len(buckets) == chain3_query.size()
        assert [b.subgoal.predicate for b in buckets] == ["r", "s", "t"]

    def test_bucket_entries_reference_covering_views(self, chain3_query, chain3_views):
        buckets = BucketRewriter(chain3_views).build_buckets(chain3_query)
        r_bucket = buckets[0]
        assert {entry.view for entry in r_bucket} == {"v_rs", "v_r"}

    def test_distinguished_variable_condition_filters_views(self):
        # The view projects away the query's distinguished variable, so it
        # cannot cover the subgoal where that variable occurs.
        query = parse_query("q(X) :- r(X, Y).")
        views = parse_views("v_proj(B) :- r(A, B).")
        buckets = BucketRewriter(views).build_buckets(query)
        assert buckets[0].is_empty()

    def test_existential_query_variable_has_no_condition(self):
        query = parse_query("q(X) :- r(X, Y), s(Y).")
        views = parse_views("v_r(A) :- r(A, B). v_s(A) :- s(A).")
        buckets = BucketRewriter(views).build_buckets(query)
        # v_r keeps X but hides Y; it still belongs in the bucket of r(X, Y).
        assert not buckets[0].is_empty()

    def test_bucket_atoms_use_query_terms(self, chain3_query, chain3_views):
        buckets = BucketRewriter(chain3_views).build_buckets(chain3_query)
        entry_atoms = [entry.atom for entry in buckets[2]]
        assert Atom("v_t", ["Z", "W"]) in entry_atoms

    def test_constant_in_query_subgoal(self):
        query = parse_query("q(X) :- r(X, 5).")
        views = parse_views("v(A, B) :- r(A, B).")
        buckets = BucketRewriter(views).build_buckets(query)
        assert buckets[0].entries[0].atom == Atom("v", ["X", 5])


class TestBucketRewriting:
    def test_finds_equivalent_rewriting(self, chain3_query, chain3_views):
        result = BucketRewriter(chain3_views).rewrite(chain3_query)
        assert result.has_equivalent
        for rewriting in result.rewritings:
            assert is_contained_rewriting(rewriting.query, chain3_query, chain3_views)

    def test_equality_repair_recovers_multi_subgoal_view(self):
        # The correct rewriting needs the two-subgoal view to cover both r and
        # s, which only appears after the "add equality constraints" repair.
        query = parse_query("q(X, Z) :- r(X, Y), s(Y, W), t(W, Z).")
        views = parse_views("v_rs(A, B) :- r(A, C), s(C, B). v_t(A, B) :- t(A, B).")
        result = BucketRewriter(views).rewrite(query)
        assert result.has_equivalent
        best = result.best
        assert best.query.size() == 2

    def test_empty_bucket_means_no_rewriting(self, chain3_query):
        views = parse_views("v_r(A, B) :- r(A, B). v_s(A, B) :- s(A, B).")
        result = BucketRewriter(views).rewrite(chain3_query)
        assert not result.rewritings
        assert result.candidates_examined == 0

    def test_contained_rewritings_reported(self, citation_query, citation_views):
        result = BucketRewriter(citation_views).rewrite(citation_query)
        kinds = {r.kind for r in result.rewritings}
        assert RewritingKind.EQUIVALENT in kinds or RewritingKind.CONTAINED in kinds
        for rewriting in result.rewritings:
            assert is_contained_rewriting(rewriting.query, citation_query, citation_views)

    def test_max_candidates_caps_work(self, citation_query, citation_views):
        capped = BucketRewriter(citation_views, max_candidates=1).rewrite(citation_query)
        assert capped.candidates_examined <= 1

    def test_cartesian_product_size(self):
        # Three subgoals with 2 bucket entries each: 8 combinations examined.
        query = parse_query("q(X, Z) :- r(X, Y), r(Y, W), r(W, Z).")
        views = parse_views("v1(A, B) :- r(A, B). v2(A, B) :- r(A, B), extra(A).")
        result = BucketRewriter(views).rewrite(query)
        assert result.candidates_examined == 8

    def test_unsafe_combinations_skipped(self):
        # A combination that does not expose a distinguished variable is skipped.
        query = parse_query("q(X, Y) :- r(X, Y), s(Y).")
        views = parse_views("v_r(A, B) :- r(A, B). v_s(A) :- s(A).")
        result = BucketRewriter(views).rewrite(query)
        assert result.has_equivalent

    def test_redundant_atoms_tolerated(self):
        # Bucket rewritings may carry redundant atoms; they must still verify.
        query = parse_query("q(S, C) :- enrolled(S, C), teaches(P, C), advises(P, S).")
        views = parse_views(
            """
            v_all(S, C) :- enrolled(S, C), teaches(P, C), advises(P, S).
            v_tc(C, P) :- teaches(P, C).
            """
        )
        result = BucketRewriter(views).rewrite(query)
        assert result.has_equivalent
        for rewriting in result.rewritings:
            assert is_contained_rewriting(rewriting.query, query, views)

    def test_comparison_query(self):
        query = parse_query("q(X) :- emp(X, S), S > 100.")
        views = parse_views("v(A, B) :- emp(A, B).")
        result = BucketRewriter(views).rewrite(query)
        assert result.has_equivalent
        assert is_complete_rewriting(result.best.query, query, views)
