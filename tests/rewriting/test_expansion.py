"""Tests for view expansion (unfolding)."""

import pytest

from repro.errors import RewritingError
from repro.datalog.atoms import Atom
from repro.datalog.freshen import FreshVariableFactory
from repro.datalog.parser import parse_query, parse_view, parse_views
from repro.datalog.queries import UnionQuery
from repro.datalog.terms import Variable
from repro.containment.containment import is_equivalent
from repro.rewriting.expansion import (
    expand_atom,
    expand_query,
    expand_rewriting,
    uses_only_views,
    views_used,
)


@pytest.fixture
def views():
    return parse_views(
        """
        v_join(A, B) :- r(A, C), s(C, B).
        v_filter(A) :- r(A, B), B > 5.
        v_const(A) :- r(A, 7).
        v_head_const(7, A) :- r(7, A).
        """
    )


class TestExpandAtom:
    def test_head_arguments_are_substituted(self, views):
        factory = FreshVariableFactory(reserved=["X", "Y"])
        body, comparisons = expand_atom(Atom("v_join", ["X", "Y"]), views["v_join"], factory)
        assert len(body) == 2
        assert body[0].predicate == "r"
        assert body[0].args[0] == Variable("X")
        assert body[1].args[1] == Variable("Y")
        assert comparisons == ()

    def test_existential_variables_are_freshened(self, views):
        factory = FreshVariableFactory(reserved=["X", "Y", "C"])
        body, _ = expand_atom(Atom("v_join", ["X", "Y"]), views["v_join"], factory)
        join_var = body[0].args[1]
        assert join_var == body[1].args[0]
        assert join_var not in (Variable("X"), Variable("Y"), Variable("C"))

    def test_two_expansions_do_not_share_existentials(self, views):
        factory = FreshVariableFactory(reserved=["X", "Y", "Z"])
        body1, _ = expand_atom(Atom("v_join", ["X", "Y"]), views["v_join"], factory)
        body2, _ = expand_atom(Atom("v_join", ["Y", "Z"]), views["v_join"], factory)
        assert body1[0].args[1] != body2[0].args[1]

    def test_view_comparisons_are_carried_over(self, views):
        factory = FreshVariableFactory(reserved=["X"])
        _, comparisons = expand_atom(Atom("v_filter", ["X"]), views["v_filter"], factory)
        assert len(comparisons) == 1

    def test_constant_argument_binds_view_head_variable(self, views):
        factory = FreshVariableFactory()
        body, _ = expand_atom(Atom("v_join", ["c1", "c2"]), views["v_join"], factory)
        assert body[0].args[0].value == "c1"

    def test_constant_clash_returns_none(self, views):
        factory = FreshVariableFactory()
        assert expand_atom(Atom("v_head_const", [8, "X"]), views["v_head_const"], factory) is None

    def test_matching_constant_in_view_head(self, views):
        factory = FreshVariableFactory()
        result = expand_atom(Atom("v_head_const", [7, "X"]), views["v_head_const"], factory)
        assert result is not None

    def test_wrong_view_or_arity_raises(self, views):
        factory = FreshVariableFactory()
        with pytest.raises(RewritingError):
            expand_atom(Atom("other", ["X"]), views["v_filter"], factory)
        with pytest.raises(RewritingError):
            expand_atom(Atom("v_filter", ["X", "Y"]), views["v_filter"], factory)


class TestExpandQuery:
    def test_expansion_is_equivalent_to_manual_unfolding(self, views):
        rewriting = parse_query("q(X, Y) :- v_join(X, Y).")
        expansion = expand_query(rewriting, views)
        assert expansion is not None
        assert is_equivalent(expansion, parse_query("q(X, Y) :- r(X, C), s(C, Y)."))

    def test_base_atoms_are_kept(self, views):
        rewriting = parse_query("q(X, Y) :- v_join(X, Z), t(Z, Y).")
        expansion = expand_query(rewriting, views)
        assert expansion is not None
        assert ("t", 2) in expansion.predicates()
        assert ("v_join", 2) not in expansion.predicates()

    def test_rewriting_comparisons_are_kept(self, views):
        rewriting = parse_query("q(X) :- v_join(X, Y), Y < 3.")
        expansion = expand_query(rewriting, views)
        assert expansion is not None
        assert len(expansion.comparisons) == 1

    def test_unsatisfiable_expansion_returns_none(self, views):
        rewriting = parse_query("q(X) :- v_head_const(8, X).")
        assert expand_query(rewriting, views) is None

    def test_join_on_view_atoms(self, views):
        rewriting = parse_query("q(X, Z) :- v_join(X, Y), v_join(Y, Z).")
        expansion = expand_query(rewriting, views)
        assert expansion is not None
        assert expansion.size() == 4
        manual = parse_query("q(X, Z) :- r(X, A), s(A, Y), r(Y, B), s(B, Z).")
        assert is_equivalent(expansion, manual)


class TestExpandRewritingAndHelpers:
    def test_union_expansion_drops_unsatisfiable_disjuncts(self, views):
        union = UnionQuery(
            [
                parse_query("q(X) :- v_head_const(8, X)."),
                parse_query("q(X) :- v_const(X)."),
            ]
        )
        expansion = expand_rewriting(union, views)
        assert expansion is not None
        assert not isinstance(expansion, UnionQuery)

    def test_union_expansion_all_unsatisfiable(self, views):
        union = UnionQuery([parse_query("q(X) :- v_head_const(8, X).")])
        assert expand_rewriting(union, views) is None

    def test_union_expansion_keeps_multiple_disjuncts(self, views):
        union = UnionQuery(
            [parse_query("q(X) :- v_const(X)."), parse_query("q(X) :- v_filter(X).")]
        )
        expansion = expand_rewriting(union, views)
        assert isinstance(expansion, UnionQuery)
        assert len(expansion) == 2

    def test_uses_only_views(self, views):
        assert uses_only_views(parse_query("q(X) :- v_const(X)."), views)
        assert not uses_only_views(parse_query("q(X) :- v_const(X), r(X, Y)."), views)

    def test_views_used(self, views):
        rewriting = parse_query("q(X) :- v_const(X), v_filter(X), r(X, Y).")
        assert views_used(rewriting, views) == ("v_const", "v_filter")
