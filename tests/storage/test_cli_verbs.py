"""The snapshot / restore / replay CLI verbs and their documented exit codes.

Exit-code contract (see the :mod:`repro.cli` module docs): 0 success,
1 "found corruption but did not repair it" (replay without ``--repair``) or
a failed ``restore --verify``, 74 for unrecoverable storage errors (a file
that is not a WAL at all).
"""

import io
import os

import pytest

from repro.cli import main
from repro.materialize.delta import parse_delta
from repro import connect
from repro.storage.manager import WAL_FILENAME

VIEWS = "v1(X, Y) :- cites(X, Y)."
DATA = "cites(a, b). cites(b, c). refs(a, 1)."


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def seeded_store(tmp_path, backend=None):
    storage = str(tmp_path / "store")
    engine = connect(
        views=VIEWS, data=DATA, storage=storage, backend=backend, wal="batch"
    )
    engine.apply(parse_delta("+ cites(c, d).\n- cites(a, b)."))
    engine.close()
    return storage


def views_file(tmp_path):
    path = tmp_path / "views.dl"
    path.write_text(VIEWS)
    return str(path)


class TestSnapshotCommand:
    def test_writes_a_checkpoint(self, tmp_path):
        storage = seeded_store(tmp_path)
        code, output = run_cli(
            ["snapshot", "--storage", storage, "--views", views_file(tmp_path)]
        )
        assert code == 0
        assert "# snapshot" in output and "seq=1" in output
        # Restoring from it now replays an empty tail.
        code, output = run_cli(["restore", "--storage", storage])
        assert code == 0
        assert "snapshot seq 1 + 0 WAL record(s)" in output


class TestRestoreCommand:
    def test_reports_and_exports_recovered_state(self, tmp_path):
        storage = seeded_store(tmp_path)
        exported = str(tmp_path / "facts.dl")
        code, output = run_cli(
            [
                "restore", "--storage", storage,
                "--views", views_file(tmp_path),
                "--verify", "--output", exported,
            ]
        )
        assert code == 0
        assert "# verified" in output
        facts = open(exported).read()
        assert '+ ' not in facts  # plain facts, not a delta
        assert 'cites("c", "d").' in facts
        assert 'cites("a", "b").' not in facts
        assert 'refs("a", 1).' in facts

    def test_fresh_directory_reports_nothing_to_recover(self, tmp_path):
        code, output = run_cli(
            ["restore", "--storage", str(tmp_path / "fresh")]
        )
        assert code == 0
        assert "nothing to recover" in output

    def test_verify_without_views_exits_nonzero(self, tmp_path):
        storage = seeded_store(tmp_path)
        code, output = run_cli(["restore", "--storage", storage, "--verify"])
        assert code == 1
        assert "--verify needs --views" in output

    def test_sqlite_store_reports_its_base(self, tmp_path):
        storage = seeded_store(tmp_path, backend="sqlite")
        code, output = run_cli(["restore", "--storage", storage])
        assert code == 0
        assert "sqlite base store at seq 1" in output


class TestReplayCommand:
    def test_clean_log(self, tmp_path):
        storage = seeded_store(tmp_path)
        code, output = run_cli(["replay", "--storage", storage, "--show"])
        assert code == 0
        assert "# log is clean" in output
        assert "seq=1" in output

    def test_corrupt_tail_exit_codes(self, tmp_path):
        storage = seeded_store(tmp_path)
        with open(os.path.join(storage, WAL_FILENAME), "ab") as handle:
            handle.write(b"torn")
        code, output = run_cli(["replay", "--storage", storage])
        assert code == 1
        assert "re-run with --repair" in output

        code, output = run_cli(["replay", "--storage", storage, "--repair"])
        assert code == 0
        assert "repaired" in output

        code, output = run_cli(["replay", "--storage", storage])
        assert code == 0
        assert "# log is clean" in output

    def test_not_a_wal_exits_74(self, tmp_path):
        bogus = tmp_path / "bogus.log"
        bogus.write_text("NOT-A-WAL\n")
        code, _ = run_cli(
            ["replay", "--storage", str(tmp_path), "--wal-file", str(bogus)]
        )
        assert code == 74


class TestServeAndStatsFlags:
    def test_stats_includes_storage_section(self, tmp_path):
        import json

        storage = seeded_store(tmp_path, backend="sqlite")
        code, output = run_cli(
            [
                "stats", "--views", views_file(tmp_path),
                "--storage", storage, "--stats-json",
            ]
        )
        assert code == 0
        stats = json.loads(output)
        assert stats["storage"]["backend"] == "sqlite"
        assert stats["storage"]["wal_lag"] == 0
        relations = stats["session"]["storage"]["relations"]
        assert relations["cites"]["rows"] == 2

    def test_unknown_backend_exits_74(self, tmp_path):
        code, _ = run_cli(
            [
                "restore", "--storage", str(tmp_path / "s"),
                "--backend", "papyrus",
            ]
        )
        assert code == 74
