"""Contract tests every storage backend must pass, run against both backends.

The protocol promises (see :class:`repro.storage.backend.StorageBackend`):
set-semantics insert/delete with accurate new/present counts, scans of
unknown relations yielding nothing, mutations of unknown relations raising,
idempotent relation creation with arity-conflict detection, and a metadata
table.  The sqlite adapter additionally promises value-encoding fidelity
(heterogeneous Python values round-trip with equality intact) and rollback
on a failed transaction.
"""

import pytest

from repro.engine.relation import SkolemValue
from repro.errors import StorageError
from repro.storage import MemoryBackend, make_backend
from repro.storage.sqlite import SQLiteBackend, decode_value, encode_value


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        instance = MemoryBackend()
    else:
        instance = SQLiteBackend(str(tmp_path / "data.sqlite"))
    yield instance
    instance.close()


class TestContract:
    def test_create_insert_scan_roundtrip(self, backend):
        backend.create_relation("r", 2)
        assert backend.insert("r", 2, [("a", 1), ("b", 2), ("a", 1)]) == 2
        assert sorted(backend.scan("r"), key=repr) == [("a", 1), ("b", 2)]
        assert backend.count("r") == 2
        assert backend.arity("r") == 2

    def test_create_is_idempotent_but_arity_conflicts_raise(self, backend):
        backend.create_relation("r", 2)
        backend.create_relation("r", 2)
        with pytest.raises(StorageError):
            backend.create_relation("r", 3)

    def test_delete_returns_actually_present_count(self, backend):
        backend.create_relation("r", 1)
        backend.insert("r", 1, [("a",), ("b",)])
        assert backend.delete("r", [("a",), ("missing",)]) == 1
        assert backend.count("r") == 1

    def test_unknown_relation_scans_empty_and_mutations_raise(self, backend):
        assert list(backend.scan("nope")) == []
        assert backend.count("nope") == 0
        with pytest.raises(StorageError):
            backend.delete("nope", [("a",)])
        with pytest.raises(StorageError):
            backend.arity("nope")

    def test_drop_relation(self, backend):
        backend.create_relation("r", 1)
        backend.insert("r", 1, [("a",)])
        backend.drop_relation("r")
        assert "r" not in backend.relation_names()
        assert list(backend.scan("r")) == []
        backend.drop_relation("r")  # missing names are a no-op

    def test_filtered_scan_matches_python_filter(self, backend):
        backend.create_relation("r", 3)
        rows = [("a", 1, "x"), ("a", 2, "y"), ("b", 1, "x")]
        backend.insert("r", 3, rows)
        expected = sorted(
            (row for row in rows if row[0] == "a" and row[2] == "x"), key=repr
        )
        got = sorted(backend.scan("r", bindings={0: "a", 2: "x"}), key=repr)
        assert got == expected

    def test_meta_roundtrip(self, backend):
        assert backend.get_meta("applied_seq") is None
        backend.set_meta("applied_seq", "17")
        assert backend.get_meta("applied_seq") == "17"
        backend.set_meta("applied_seq", "18")
        assert backend.get_meta("applied_seq") == "18"

    def test_numeric_equality_dedup_matches_python(self, backend):
        # True == 1 and 2.0 == 2 in Python; a backend must not hold both.
        backend.create_relation("r", 1)
        assert backend.insert("r", 1, [(1,), (True,)]) == 1
        assert backend.insert("r", 1, [(2,), (2.0,)]) == 1
        assert backend.count("r") == 2

    def test_closed_backend_rejects_mutations(self, backend):
        backend.create_relation("r", 1)
        backend.close()
        with pytest.raises(StorageError):
            backend.insert("r", 1, [("a",)])
        backend.close()  # close must tolerate repeated calls


class TestSQLiteSpecifics:
    def test_values_survive_reopen(self, tmp_path):
        path = str(tmp_path / "data.sqlite")
        values = ("text", 0, -3, 2.5, True, SkolemValue("f", (1, "x")))
        backend = SQLiteBackend(path)
        backend.create_relation("r", len(values))
        backend.insert("r", len(values), [values])
        backend.set_meta("applied_seq", "5")
        backend.close()

        reopened = SQLiteBackend(path)
        try:
            [row] = list(reopened.scan("r"))
            assert row == values
            assert reopened.get_meta("applied_seq") == "5"
            assert reopened.capabilities.persistent
            assert reopened.capabilities.filter_pushdown
        finally:
            reopened.close()

    def test_transaction_rolls_back_on_error(self, tmp_path):
        backend = SQLiteBackend(str(tmp_path / "data.sqlite"))
        try:
            backend.create_relation("r", 1)
            backend.insert("r", 1, [("keep",)])
            with pytest.raises(RuntimeError):
                with backend.transaction():
                    backend.insert("r", 1, [("doomed",)])
                    raise RuntimeError("boom")
            assert list(backend.scan("r")) == [("keep",)]
        finally:
            backend.close()

    def test_malicious_relation_name_rejected(self, tmp_path):
        backend = SQLiteBackend(str(tmp_path / "data.sqlite"))
        try:
            with pytest.raises(StorageError):
                backend.create_relation('r"; DROP TABLE repro_meta; --', 1)
        finally:
            backend.close()

    def test_encode_decode_roundtrip_for_each_type(self):
        nested = SkolemValue("g", (SkolemValue("f", (1,)), "s"))
        for value in ("plain", "", "i123", 7, -7, 2.5, nested):
            assert decode_value(encode_value(value)) == value
        assert decode_value(encode_value(True)) == 1
        assert decode_value(encode_value(3.0)) == 3

    def test_nan_and_unsupported_types_raise(self):
        with pytest.raises(StorageError):
            encode_value(float("nan"))
        with pytest.raises(StorageError):
            encode_value(object())


def test_make_backend_registry(tmp_path):
    memory = make_backend("memory")
    assert memory.capabilities.name == "memory"
    sqlite = make_backend("sqlite", str(tmp_path / "x.sqlite"))
    try:
        assert sqlite.capabilities.name == "sqlite"
    finally:
        sqlite.close()
    with pytest.raises(StorageError):
        make_backend("papyrus")
