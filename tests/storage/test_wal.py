"""Write-ahead log framing, fsync accounting, and repair-by-truncation.

The corruption cases mirror what a crash can physically leave behind: a torn
header, a torn payload, a bit-flipped record (CRC mismatch), and a file that
was never a WAL at all (bad magic — the one case recovery must *not* repair,
because truncating it would destroy someone else's data).
"""

import struct

import pytest

from repro.errors import StorageError, WalCorruptionError
from repro.storage import WalRecord, WriteAheadLog, read_wal
from repro.storage.wal import _HEADER, MAGIC


def wal_path(tmp_path):
    return str(tmp_path / "wal.log")


def append_three(path):
    log = WriteAheadLog(path, fsync="none")
    for index in range(3):
        log.append(f"+ r({index}, {index + 1}).", db_version=index)
    log.close()


class TestAppendAndReplay:
    def test_roundtrip_and_monotonic_seqs(self, tmp_path):
        path = wal_path(tmp_path)
        log = WriteAheadLog(path, fsync="batch")
        assert log.last_seq == 0
        assert log.append("+ r(a, b).", db_version=0) == 1
        assert log.append("- r(a, b).", db_version=1) == 2
        records, report = log.replay()
        log.close()
        assert records == [
            WalRecord(seq=1, db_version=0, payload="+ r(a, b)."),
            WalRecord(seq=2, db_version=1, payload="- r(a, b)."),
        ]
        assert report.corruption is None
        assert report.last_seq == 2

    def test_reopen_continues_the_sequence(self, tmp_path):
        path = wal_path(tmp_path)
        append_three(path)
        log = WriteAheadLog(path)
        assert log.last_seq == 3
        assert log.append("+ r(x, y).", db_version=3) == 4
        log.close()
        records, _ = read_wal(path)
        assert [r.seq for r in records] == [1, 2, 3, 4]

    def test_replay_after_seq_filters(self, tmp_path):
        path = wal_path(tmp_path)
        append_three(path)
        log = WriteAheadLog(path)
        records, _ = log.replay(after_seq=2)
        log.close()
        assert [r.seq for r in records] == [3]

    def test_missing_file_reads_empty(self, tmp_path):
        records, report = read_wal(wal_path(tmp_path))
        assert records == [] and report.records == 0

    def test_unicode_payload_roundtrip(self, tmp_path):
        path = wal_path(tmp_path)
        log = WriteAheadLog(path)
        payload = "+ r('café', 'naïve\\n')."
        log.append(payload, db_version=0)
        log.close()
        [record], _ = read_wal(path)
        assert record.payload == payload

    def test_fsync_accounting(self, tmp_path):
        always = WriteAheadLog(wal_path(tmp_path), fsync="always")
        always.append("+ r(a, b).", 0)
        always.append("+ r(b, c).", 1)
        stats = always.stats()
        always.close()
        # One fsync for the magic write plus one per append.
        assert stats["fsyncs"] == 3
        assert stats["appended"] == 2

        batch = WriteAheadLog(str(tmp_path / "batch.log"), fsync="batch")
        batch.append("+ r(a, b).", 0)
        batch.append("+ r(b, c).", 1)
        assert batch.stats()["fsyncs"] == 1  # just the magic
        batch.flush()
        assert batch.stats()["fsyncs"] == 2
        batch.close()

    def test_observability_callbacks_fire(self, tmp_path):
        appends, fsyncs = [], []
        log = WriteAheadLog(
            wal_path(tmp_path),
            fsync="always",
            on_append=lambda seconds, size: appends.append(size),
            on_fsync=lambda seconds: fsyncs.append(seconds),
        )
        log.append("+ r(a, b).", 0)
        log.close()
        assert appends == [len(b"+ r(a, b).")]
        assert len(fsyncs) >= 1

    def test_bad_policy_and_closed_log_raise(self, tmp_path):
        with pytest.raises(StorageError):
            WriteAheadLog(wal_path(tmp_path), fsync="sometimes")
        log = WriteAheadLog(wal_path(tmp_path))
        log.close()
        with pytest.raises(StorageError):
            log.append("+ r(a, b).", 0)


class TestCorruption:
    def test_torn_header_truncated(self, tmp_path):
        path = wal_path(tmp_path)
        append_three(path)
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02\x03")  # partial header
        records, report = read_wal(path, repair=False)
        assert len(records) == 3
        assert report.corruption == "torn record header"
        assert not report.repaired

        records, report = read_wal(path, repair=True)
        assert report.repaired
        _, clean = read_wal(path)
        assert clean.corruption is None and clean.records == 3

    def test_torn_payload_truncated(self, tmp_path):
        path = wal_path(tmp_path)
        append_three(path)
        payload = b"+ r(x, y)."
        import zlib

        header = _HEADER.pack(4, 3, len(payload), zlib.crc32(payload))
        with open(path, "ab") as handle:
            handle.write(header + payload[: len(payload) // 2])
        records, report = read_wal(path, repair=True)
        assert len(records) == 3
        assert report.corruption == "torn record payload"
        assert report.repaired

    def test_crc_mismatch_truncated(self, tmp_path):
        path = wal_path(tmp_path)
        append_three(path)
        # Flip one byte inside the *last* record's payload.
        with open(path, "r+b") as handle:
            handle.seek(-1, 2)
            last = handle.read(1)
            handle.seek(-1, 2)
            handle.write(bytes([last[0] ^ 0xFF]))
        records, report = read_wal(path, repair=True)
        assert len(records) == 2
        assert "CRC mismatch" in report.corruption
        assert report.repaired
        _, clean = read_wal(path)
        assert clean.records == 2 and clean.corruption is None

    def test_implausible_length_truncated(self, tmp_path):
        path = wal_path(tmp_path)
        append_three(path)
        header = _HEADER.pack(4, 3, (1 << 30) + 1, 0)
        with open(path, "ab") as handle:
            handle.write(header)
        _, report = read_wal(path, repair=True)
        assert "implausible payload length" in report.corruption

    def test_bad_magic_raises_never_truncates(self, tmp_path):
        path = wal_path(tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"NOT-A-WAL\n" + b"x" * 64)
        size = 74
        with pytest.raises(WalCorruptionError):
            read_wal(path, repair=True)
        import os

        assert os.path.getsize(path) == size  # untouched

    def test_open_auto_repairs_then_appends_cleanly(self, tmp_path):
        path = wal_path(tmp_path)
        append_three(path)
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad\xbe")
        log = WriteAheadLog(path)
        assert log.last_seq == 3
        assert log.append("+ r(p, q).", 3) == 4
        log.close()
        records, report = read_wal(path)
        assert [r.seq for r in records] == [1, 2, 3, 4]
        assert report.corruption is None

    def test_oversized_append_rejected_up_front(self, tmp_path):
        log = WriteAheadLog(wal_path(tmp_path))
        with pytest.raises(StorageError):
            # Claim, without allocating one, a payload over the record limit.
            class Huge(str):
                def encode(self, *a, **k):
                    return _FakeBytes()

            class _FakeBytes(bytes):
                def __len__(self):
                    return (1 << 30) + 1

            log.append(Huge(), 0)
        log.close()
