"""StorageManager recovery semantics, engine wiring, and fault injection.

The recovery contract: final state == base (newest readable snapshot, or
the sqlite base store) + the WAL tail with ``seq > base_seq``, replayed in
order.  Crashes are simulated by *not* closing the first engine cleanly and
by mutilating the files a real crash could leave torn; every case must end
in a recovered engine whose answers match a never-crashed oracle — or a
typed ReproError — never a stack trace.
"""

import os

import pytest

from repro import connect
from repro.engine.database import Database
from repro.errors import StorageError
from repro.materialize.delta import Delta, parse_delta
from repro.storage import StorageManager, list_snapshots, write_snapshot
from repro.storage.backed import BackedDatabase
from repro.storage.manager import WAL_FILENAME

VIEWS = "v1(X, Y) :- cites(X, Y)."
DATA = "cites(a, b). cites(b, c). refs(a, 1)."
QUERY = "q(X, Y) :- cites(X, Y)."

DELTAS = [
    "+ cites(c, d).",
    "- cites(a, b).\n+ cites(d, e).",
    "+ refs(b, 2).",
]


def run_workload(storage, backend=None, wal="none", snapshot=None, deltas=DELTAS):
    """Build an engine over fresh data, apply deltas, return its answers."""
    engine = connect(
        views=VIEWS, data=DATA, storage=storage, backend=backend,
        wal=wal, snapshot=snapshot,
    )
    for delta in deltas:
        engine.apply(delta)
    return engine


def answers_of(engine):
    return sorted(engine.query(QUERY).answers().rows)


def oracle_answers():
    engine = connect(views=VIEWS, data=DATA)
    for delta in DELTAS:
        engine.apply(delta)
    return answers_of(engine)


@pytest.fixture(params=["memory", "sqlite"])
def backend_name(request):
    return request.param


class TestRecovery:
    def test_reopen_restores_exact_answers(self, tmp_path, backend_name):
        storage = str(tmp_path / "store")
        expected = answers_of(run_workload(storage, backend=backend_name))
        assert expected == oracle_answers()
        # No clean close: the WAL tail is all recovery has beyond the base.
        recovered = connect(views=VIEWS, storage=storage, backend=backend_name)
        try:
            assert answers_of(recovered) == expected
            assert recovered.verify() == []
            report = recovered.recovery_report
            assert report["backend"] == backend_name
            assert report["replayed"] == len(DELTAS) - report["base_seq"]
        finally:
            recovered.close()

    def test_backend_autodetected_from_directory(self, tmp_path):
        storage = str(tmp_path / "store")
        run_workload(storage, backend="sqlite")
        recovered = connect(views=VIEWS, storage=storage)  # no backend=
        try:
            assert recovered.recovery_report["backend"] == "sqlite"
            assert isinstance(recovered.database, BackedDatabase)
        finally:
            recovered.close()

    def test_checkpoint_shortens_the_tail(self, tmp_path):
        storage = str(tmp_path / "store")
        engine = run_workload(storage, backend="memory", wal="batch")
        engine.checkpoint()
        engine.apply("+ cites(e, f).")
        engine.close()
        recovered = connect(views=VIEWS, storage=storage, backend="memory")
        try:
            report = recovered.recovery_report
            assert report["base_seq"] == len(DELTAS)
            assert report["replayed"] == 1
            assert report["store_restored"] is True
            assert ("e", "f") in recovered.query(QUERY).answers().rows
        finally:
            recovered.close()

    def test_auto_checkpoint_every_n_deltas(self, tmp_path):
        storage = str(tmp_path / "store")
        engine = run_workload(storage, backend="memory", snapshot=2)
        try:
            assert engine.storage_status()["checkpoints"] >= 2
            [(seq, _)] = list_snapshots(storage)
            assert seq == 2  # the N-delta checkpoint (baseline pruned)
        finally:
            engine.close()

    def test_attaching_data_over_existing_state_raises(self, tmp_path):
        storage = str(tmp_path / "store")
        run_workload(storage, backend="memory")
        with pytest.raises(StorageError):
            connect(views=VIEWS, data=DATA, storage=storage)

    def test_wal_or_snapshot_without_storage_raise(self):
        with pytest.raises(StorageError):
            connect(views=VIEWS, data=DATA, wal="always")
        with pytest.raises(StorageError):
            connect(views=VIEWS, data=DATA, snapshot=10)

    def test_checkpoint_without_storage_raises(self):
        engine = connect(views=VIEWS, data=DATA)
        with pytest.raises(StorageError):
            engine.checkpoint()

    def test_closed_engine_rejects_durable_applies(self, tmp_path):
        engine = run_workload(str(tmp_path / "store"))
        engine.close()
        with pytest.raises(StorageError):
            engine.apply("+ cites(x, y).")


class TestFaultInjection:
    def test_torn_wal_tail_recovers_to_prefix(self, tmp_path, backend_name):
        storage = str(tmp_path / "store")
        run_workload(storage, backend=backend_name)
        with open(os.path.join(storage, WAL_FILENAME), "ab") as handle:
            handle.write(b"\x13partial")
        recovered = connect(views=VIEWS, storage=storage, backend=backend_name)
        try:
            assert answers_of(recovered) == oracle_answers()
            assert recovered.verify() == []
            wal = recovered.recovery_report["wal"]
            assert wal["corruption"] == "torn record header"
            assert wal["repaired"] is True
        finally:
            recovered.close()

    def test_crc_corrupt_record_truncates_from_there(self, tmp_path):
        storage = str(tmp_path / "store")
        run_workload(storage, backend="memory")
        path = os.path.join(storage, WAL_FILENAME)
        with open(path, "r+b") as handle:
            handle.seek(-1, 2)
            last = handle.read(1)
            handle.seek(-1, 2)
            handle.write(bytes([last[0] ^ 0xFF]))
        recovered = connect(views=VIEWS, storage=storage, backend="memory")
        try:
            # The last delta is gone; state must equal the shorter history.
            oracle = connect(views=VIEWS, data=DATA)
            for delta in DELTAS[:-1]:
                oracle.apply(delta)
            assert answers_of(recovered) == answers_of(oracle)
            assert recovered.verify() == []
            assert "CRC mismatch" in recovered.recovery_report["wal"]["corruption"]
        finally:
            recovered.close()

    def test_missing_snapshot_falls_back_to_full_replay(self, tmp_path):
        storage = str(tmp_path / "store")
        # All facts arrive through journaled deltas, so the WAL alone can
        # rebuild everything once the snapshots are gone.
        engine = connect(views=VIEWS, storage=storage, backend="memory", wal="batch")
        for delta in DELTAS:
            engine.apply(delta)
        engine.checkpoint()
        expected = answers_of(engine)
        engine.close()
        for _, path in list_snapshots(storage):
            os.remove(path)
        recovered = connect(views=VIEWS, storage=storage, backend="memory")
        try:
            assert answers_of(recovered) == expected
            report = recovered.recovery_report
            assert report["base_seq"] == 0
            assert report["replayed"] == len(DELTAS)
        finally:
            recovered.close()

    def test_corrupt_snapshot_falls_back_to_older_one(self, tmp_path):
        storage = str(tmp_path / "store")
        engine = run_workload(storage, backend="memory", wal="batch")
        engine.checkpoint()
        expected = answers_of(engine)
        engine.close()
        # Plant an older, *valid* snapshot of the baseline state, then chew
        # up the newest one: recovery must skip it and replay a longer tail.
        [(newest_seq, newest_path)] = list_snapshots(storage)
        baseline = Database.from_dict(
            {"cites": [("a", "b"), ("b", "c")], "refs": [("a", 1)]}
        )
        write_snapshot(
            storage, seq=0, version=0,
            relations={
                relation.name: (relation.arity, sorted(relation.tuples(), key=repr))
                for relation in baseline
            },
            prune=False,
        )
        with open(newest_path, "r+b") as handle:
            handle.seek(20)
            handle.write(b"\xff" * 8)
        recovered = connect(views=VIEWS, storage=storage, backend="memory")
        try:
            assert answers_of(recovered) == expected
            report = recovered.recovery_report
            assert report["base_seq"] == 0
            assert report["replayed"] == len(DELTAS)
            [skipped] = report["snapshots_skipped"]
            assert skipped["path"] == newest_path
        finally:
            recovered.close()

    def test_delta_replay_is_idempotent_at_least_once(self, tmp_path):
        # mark_applied never ran, so the sqlite base already contains what
        # the tail will replay — applying it again must change nothing.
        storage = str(tmp_path / "store")
        manager = StorageManager(storage, backend="sqlite")
        database = manager.attach_database(
            Database.from_dict({"cites": [("a", "b")]})
        )
        delta = parse_delta("+ cites(b, c).\n- cites(a, b).")
        manager.journal(delta, database.version)
        database.apply_delta(delta)  # applied but never marked
        manager.close()

        result = StorageManager(storage, backend="sqlite").recover()
        recovered = result.database
        for record in result.tail:
            recovered.apply_delta(parse_delta(record.payload))
        assert recovered.tuples("cites") == frozenset({("b", "c")})


class TestManagerDirectly:
    def test_journal_assigns_monotonic_seqs(self, tmp_path):
        manager = StorageManager(str(tmp_path / "store"))
        delta = Delta(inserted={"r": [(1, 2)]}, removed={})
        assert manager.journal(delta, 0) == 1
        assert manager.journal(delta, 1) == 2
        manager.close()
        assert manager.closed
        with pytest.raises(StorageError):
            manager.journal(delta, 2)

    def test_status_reports_wal_lag(self, tmp_path):
        manager = StorageManager(str(tmp_path / "store"))
        delta = Delta(inserted={"r": [(1, 2)]}, removed={})
        seq = manager.journal(delta, 0)
        assert manager.status()["wal_lag"] == 1
        manager.mark_applied(seq)
        assert manager.status()["wal_lag"] == 0
        manager.close()

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            StorageManager(str(tmp_path / "store"), backend="papyrus")
