"""Snapshot file format: atomic write, validation chain, listing and pruning.

Every malformed-file case must surface as :class:`SnapshotError` — recovery
treats an unreadable snapshot as "fall back to an older one", so read errors
have to be catchable and precise, never a raw ``EOFError``/``KeyError``.
"""

import os

import pytest

from repro.errors import SnapshotError
from repro.storage import (
    latest_snapshot,
    list_snapshots,
    read_snapshot,
    write_snapshot,
)
from repro.storage.snapshot import snapshot_path

RELATIONS = {"r": (2, [("a", 1), ("b", 2)]), "s": (1, [("x",)])}


def test_write_read_roundtrip(tmp_path):
    directory = str(tmp_path)
    state = {"format": 1, "counts": {"v1": {("a",): 2}}}
    path, size = write_snapshot(
        directory, seq=7, version=12, relations=RELATIONS, store_state=state
    )
    assert os.path.getsize(path) == size
    snapshot = read_snapshot(path)
    assert snapshot.seq == 7
    assert snapshot.version == 12
    assert snapshot.relations == RELATIONS
    assert snapshot.store_state == state
    assert snapshot.size_bytes == size


def test_listing_orders_newest_first_and_ignores_noise(tmp_path):
    directory = str(tmp_path)
    write_snapshot(directory, seq=1, version=1, relations={}, prune=False)
    write_snapshot(directory, seq=5, version=3, relations={}, prune=False)
    (tmp_path / "not-a-snapshot.txt").write_text("noise")
    (tmp_path / "snapshot-zzz.snap").write_text("badly named")
    entries = list_snapshots(directory)
    assert entries == [
        (5, snapshot_path(directory, 5)),
        (1, snapshot_path(directory, 1)),
    ]
    assert latest_snapshot(directory) == (5, snapshot_path(directory, 5))


def test_prune_keeps_only_the_newest(tmp_path):
    directory = str(tmp_path)
    write_snapshot(directory, seq=1, version=1, relations={}, prune=False)
    write_snapshot(directory, seq=2, version=2, relations={})
    assert list_snapshots(directory) == [(2, snapshot_path(directory, 2))]


def test_missing_directory_lists_empty(tmp_path):
    missing = str(tmp_path / "never-created")
    assert list_snapshots(missing) == []
    assert latest_snapshot(missing) is None


@pytest.mark.parametrize(
    "mutilate",
    [
        lambda data: b"WRONGMAG" + data[8:],                # bad magic
        lambda data: data[: len(data) // 2],                # truncated payload
        lambda data: data[:10],                             # truncated header
        lambda data: data[:-1] + bytes([data[-1] ^ 0xFF]),  # payload bit flip
        lambda data: b"",                                   # empty file
    ],
)
def test_malformed_snapshots_raise_snapshot_error(tmp_path, mutilate):
    directory = str(tmp_path)
    path, _ = write_snapshot(directory, seq=3, version=1, relations=RELATIONS)
    data = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(mutilate(data))
    with pytest.raises(SnapshotError):
        read_snapshot(path)


def test_missing_file_raises_snapshot_error(tmp_path):
    with pytest.raises(SnapshotError):
        read_snapshot(str(tmp_path / "snapshot-0000000000000009.snap"))


def test_no_temp_files_left_behind(tmp_path):
    directory = str(tmp_path)
    write_snapshot(directory, seq=1, version=1, relations=RELATIONS)
    leftovers = [n for n in os.listdir(directory) if not n.endswith(".snap")]
    assert leftovers == []
