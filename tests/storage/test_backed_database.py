"""BackedDatabase: lazy hydration, write-through, and pushdown scans.

The invariants under test:

* opening a backed database reads only the backend *catalog* — relation
  content stays cold until something actually needs the rows;
* every mutation is written through to the backend, so reopening the same
  backend file reproduces the database exactly;
* ``storage_scan`` serves constant-filtered scans straight from a
  pushdown-capable backend while the relation is still cold, and steps
  aside (returns None) once the relation is hydrated or for backends
  without pushdown;
* pickling produces a plain :class:`Database` (worker processes must not
  drag a live sqlite connection across ``fork``/``spawn``).
"""

import pickle

import pytest

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.materialize.delta import Delta
from repro.storage import BackedDatabase, MemoryBackend
from repro.storage.sqlite import SQLiteBackend


def seeded_backend(tmp_path):
    backend = SQLiteBackend(str(tmp_path / "data.sqlite"))
    backend.create_relation("cites", 2)
    backend.insert("cites", 2, [("a", "b"), ("b", "c")])
    backend.create_relation("refs", 2)
    backend.insert("refs", 2, [("a", 1)])
    return backend


class TestHydration:
    def test_open_is_lazy_and_reads_hydrate(self, tmp_path):
        database = BackedDatabase(seeded_backend(tmp_path))
        assert database.schema() == {"cites": 2, "refs": 2}
        assert not database.is_hydrated("cites")
        assert database.hydrations == 0

        assert database.tuples("cites") == frozenset({("a", "b"), ("b", "c")})
        assert database.is_hydrated("cites")
        assert not database.is_hydrated("refs")
        assert database.hydrations == 1

    def test_size_counts_cold_relations_without_hydrating(self, tmp_path):
        database = BackedDatabase(seeded_backend(tmp_path))
        assert database.size() == 3
        assert database.hydrations == 0

    def test_equality_with_plain_database_hydrates_all(self, tmp_path):
        database = BackedDatabase(seeded_backend(tmp_path))
        plain = Database.from_dict(
            {"cites": [("a", "b"), ("b", "c")], "refs": [("a", 1)]}
        )
        assert database == plain
        assert database.is_hydrated("cites") and database.is_hydrated("refs")

    def test_storage_stats_distinguishes_cold_and_hot(self, tmp_path):
        database = BackedDatabase(seeded_backend(tmp_path))
        database.tuples("cites")
        stats = database.storage_stats()
        assert stats["cites"]["hydrated"] is True
        assert stats["refs"] == {"rows": 1, "hydrated": False}


class TestWriteThrough:
    def test_mutations_survive_reopen(self, tmp_path):
        path = str(tmp_path / "data.sqlite")
        backend = SQLiteBackend(path)
        database = BackedDatabase.from_database(
            Database.from_dict({"cites": [("a", "b")]}), backend
        )
        database.add_fact("cites", ("b", "c"))
        database.remove_fact("cites", ("a", "b"))
        database.apply_delta(
            Delta(inserted={"cites": [("c", "d")]}, removed={})
        )
        database.ensure_relation("empty", 3)
        backend.close()

        reopened = BackedDatabase(SQLiteBackend(path))
        assert reopened.tuples("cites") == frozenset({("b", "c"), ("c", "d")})
        assert reopened.schema()["empty"] == 3

    def test_add_relation_replaces_backend_rows(self, tmp_path):
        backend = seeded_backend(tmp_path)
        database = BackedDatabase(backend)
        replacement = Relation("cites", 2)
        replacement.add(("x", "y"))
        database.add_relation(replacement)
        assert sorted(backend.scan("cites")) == [("x", "y")]

    def test_remove_relation_drops_backend_table(self, tmp_path):
        backend = seeded_backend(tmp_path)
        database = BackedDatabase(backend)
        database.remove_relation("refs")
        assert "refs" not in backend.relation_names()


class TestPushdown:
    def test_cold_pushdown_scan_returns_rows(self, tmp_path):
        database = BackedDatabase(seeded_backend(tmp_path))
        rows = database.storage_scan("cites", {0: "a"})
        assert rows is not None and list(rows) == [("a", "b")]
        assert not database.is_hydrated("cites")

    def test_hydrated_relation_declines_pushdown(self, tmp_path):
        database = BackedDatabase(seeded_backend(tmp_path))
        database.tuples("cites")
        assert database.storage_scan("cites", {0: "a"}) is None

    def test_backend_without_pushdown_declines(self):
        backend = MemoryBackend()
        backend.create_relation("r", 1)
        backend.insert("r", 1, [("a",)])
        database = BackedDatabase(backend)
        assert database.storage_scan("r", {0: "a"}) is None


class TestPickling:
    def test_pickle_produces_plain_database(self, tmp_path):
        database = BackedDatabase(seeded_backend(tmp_path))
        clone = pickle.loads(pickle.dumps(database))
        assert type(clone) is Database
        assert clone == Database.from_dict(
            {"cites": [("a", "b"), ("b", "c")], "refs": [("a", 1)]}
        )

    def test_backed_database_is_unhashable(self, tmp_path):
        database = BackedDatabase(seeded_backend(tmp_path))
        with pytest.raises(TypeError):
            hash(database)
