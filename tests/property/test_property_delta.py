"""Property-based tests for sequencing-aware delta normalization and merge.

The load-bearing invariant (the PR-2 known issue): ``Delta.merge`` must be
the *sequential composition* of its operands — applying the merged delta to
any base state leaves exactly the state that applying the two deltas one
after the other would.  Alongside it:

* construction normalization never changes a delta's meaning (a row listed
  on both sides means delete-then-insert, i.e. present afterwards);
* maintained view extents stay exact when a merged delta replaces the
  sequential pair.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.parser import parse_views
from repro.engine.database import Database
from repro.materialize.delta import Delta
from repro.materialize.store import MaterializedViewStore
from repro.materialize.compare import verify_extents

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

RELATIONS = ("r", "s")

rows = st.tuples(
    st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3)
)
row_sets = st.frozensets(rows, max_size=4)
sides = st.fixed_dictionaries({name: row_sets for name in RELATIONS})
deltas = st.builds(Delta, inserted=sides, removed=sides)
bases = st.fixed_dictionaries({name: row_sets for name in RELATIONS})


def state_of(database: Database) -> dict:
    return {name: database.tuples(name) for name in RELATIONS}


def base_database(base: dict) -> Database:
    return Database.from_dict({name: sorted(rows, key=repr) for name, rows in base.items()})


class TestSequentialComposition:
    @RELAXED
    @given(base=bases, d1=deltas, d2=deltas)
    def test_apply_merge_equals_sequential_application(self, base, d1, d2):
        sequential = base_database(base)
        sequential.apply_delta(d1)
        sequential.apply_delta(d2)

        merged = base_database(base)
        merged.apply_delta(d1.merge(d2))

        assert state_of(merged) == state_of(sequential)

    @RELAXED
    @given(base=bases, inserted=sides, removed=sides)
    def test_normalization_preserves_two_phase_semantics(self, base, inserted, removed):
        # Reference semantics on the *raw* sides: all removals first, then
        # all insertions — final state (base - R) | I per relation.  The
        # constructor's insert-wins normalization must not change it; in
        # particular a delete+reinsert of an absent row must insert it.
        expected = {
            name: frozenset((base[name] - removed[name]) | inserted[name])
            for name in RELATIONS
        }
        database = base_database(base)
        database.apply_delta(Delta(inserted=inserted, removed=removed))
        assert state_of(database) == expected


class TestMaintainedExtents:
    @RELAXED
    @given(base=bases, d1=deltas, d2=deltas)
    def test_store_stays_exact_under_merged_deltas(self, base, d1, d2):
        views = parse_views(
            """
            v_join(A, C) :- r(A, B), s(B, C).
            v_r(A, B) :- r(A, B).
            """
        )
        store = MaterializedViewStore(views, base_database(base))
        store.apply_delta(d1.merge(d2))
        assert verify_extents(store) == []
