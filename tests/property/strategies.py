"""Hypothesis strategies for generating small queries, views and databases."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.datalog.atoms import Atom, Comparison
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.terms import Constant, Variable
from repro.datalog.views import View, ViewSet
from repro.engine.database import Database

#: Small pools keep generated objects overlappy enough to be interesting.
VARIABLE_POOL = [Variable(name) for name in ("X", "Y", "Z", "W", "U")]
PREDICATE_POOL = ["r", "s", "t"]
CONSTANT_POOL = [Constant(value) for value in (0, 1, 2)]
DOMAIN = [0, 1, 2, 3]


variables = st.sampled_from(VARIABLE_POOL)
constants = st.sampled_from(CONSTANT_POOL)
terms = st.one_of(variables, variables, variables, constants)  # bias towards variables
predicates = st.sampled_from(PREDICATE_POOL)


@st.composite
def atoms(draw) -> Atom:
    """A binary atom over the small predicate/term pools."""
    predicate = draw(predicates)
    return Atom(predicate, [draw(terms), draw(terms)])


@st.composite
def bodies(draw, min_size: int = 1, max_size: int = 4):
    """A connected-ish body: later atoms reuse at least one earlier variable when possible."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    body = [draw(atoms())]
    for _ in range(size - 1):
        atom = draw(atoms())
        used = [v for a in body for v in a.variables()]
        if used and not (set(atom.variables()) & set(used)):
            # Tie the new atom to the existing body through its first argument.
            atom = Atom(atom.predicate, [used[0], atom.args[1]])
        body.append(atom)
    return body


@st.composite
def conjunctive_queries(draw, max_head: int = 2, name: str = "q") -> ConjunctiveQuery:
    """A safe conjunctive query over the small pools."""
    body = draw(bodies())
    body_vars = []
    for atom in body:
        for var in atom.variables():
            if var not in body_vars:
                body_vars.append(var)
    if body_vars:
        head_size = draw(st.integers(min_value=1, max_value=min(max_head, len(body_vars))))
        head_vars = body_vars[:head_size]
    else:
        head_vars = []
    return ConjunctiveQuery(Atom(name, head_vars), body)


@st.composite
def comparison_sets(draw, max_size: int = 4):
    """A small list of comparisons over three variables and small integers."""
    operators = st.sampled_from(["<", "<=", "=", "!=", ">", ">="])
    operands = st.one_of(
        st.sampled_from([Variable("A"), Variable("B"), Variable("C")]),
        st.sampled_from([Constant(1), Constant(2), Constant(3)]),
    )
    size = draw(st.integers(min_value=0, max_value=max_size))
    return [Comparison(draw(operands), draw(operators), draw(operands)) for _ in range(size)]


@st.composite
def view_sets(draw, min_views: int = 1, max_views: int = 4) -> ViewSet:
    """A set of views drawn from the same distribution as the queries."""
    count = draw(st.integers(min_value=min_views, max_value=max_views))
    views = []
    for index in range(count):
        definition = draw(conjunctive_queries(name=f"v{index + 1}"))
        views.append(View(definition.name, definition))
    return ViewSet(views)


@st.composite
def databases(draw, max_tuples: int = 12) -> Database:
    """A small database over the binary predicate pool and a tiny domain."""
    database = Database()
    for predicate in PREDICATE_POOL:
        database.ensure_relation(predicate, 2)
        count = draw(st.integers(min_value=0, max_value=max_tuples))
        for _ in range(count):
            row = (draw(st.sampled_from(DOMAIN)), draw(st.sampled_from(DOMAIN)))
            database.add_fact(predicate, row)
    return database
