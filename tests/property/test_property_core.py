"""Property-based tests for the containment, minimization and engine layers."""

from hypothesis import HealthCheck, given, settings

from repro.containment.constraints import ComparisonSet
from repro.containment.containment import is_contained, is_equivalent
from repro.containment.minimize import minimize
from repro.datalog.canonical import canonical_database, freeze_query
from repro.datalog.queries import UnionQuery
from repro.engine.evaluate import evaluate

from tests.property.strategies import (
    comparison_sets,
    conjunctive_queries,
    databases,
)

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


class TestContainmentProperties:
    @RELAXED
    @given(query=conjunctive_queries())
    def test_containment_is_reflexive(self, query):
        assert is_contained(query, query)
        assert is_equivalent(query, query)

    @RELAXED
    @given(query=conjunctive_queries(), database=databases())
    def test_containment_implies_answer_inclusion(self, query, database):
        # Semantic soundness of the syntactic test: a query is always
        # contained in the query obtained by dropping its last subgoal
        # (when that stays safe), and the answers must then be included.
        if query.size() < 2:
            return
        body = query.body[:-1]
        remaining_vars = {v for atom in body for v in atom.variables()}
        if not set(query.head.variables()) <= remaining_vars:
            return
        weaker = query.with_body(body)
        assert is_contained(query, weaker)
        assert evaluate(query, database) <= evaluate(weaker, database)

    @RELAXED
    @given(query=conjunctive_queries())
    def test_canonical_database_certificate(self, query):
        # The frozen head is always an answer of the query over its canonical database.
        frozen_head, _, _ = freeze_query(query)
        answers = evaluate(query, canonical_database(query))
        assert tuple(t.value for t in frozen_head.args) in answers


class TestMinimizationProperties:
    @RELAXED
    @given(query=conjunctive_queries())
    def test_minimize_preserves_equivalence(self, query):
        minimal = minimize(query)
        assert minimal.size() <= query.size()
        assert is_equivalent(minimal, query)

    @RELAXED
    @given(query=conjunctive_queries())
    def test_minimize_is_idempotent(self, query):
        minimal = minimize(query)
        assert minimize(minimal) == minimal

    @RELAXED
    @given(query=conjunctive_queries(), database=databases())
    def test_minimized_query_has_same_answers(self, query, database):
        assert evaluate(minimize(query), database) == evaluate(query, database)


class TestEngineProperties:
    @RELAXED
    @given(query=conjunctive_queries(), database=databases())
    def test_evaluation_is_deterministic(self, query, database):
        assert evaluate(query, database) == evaluate(query, database)

    @RELAXED
    @given(left=conjunctive_queries(), right=conjunctive_queries(), database=databases())
    def test_union_evaluation_is_union_of_disjuncts(self, left, right, database):
        if left.arity != right.arity:
            return
        right = right.with_name(left.name)
        union = UnionQuery([left, right])
        assert evaluate(union, database) == evaluate(left, database) | evaluate(right, database)

    @RELAXED
    @given(query=conjunctive_queries(), database=databases())
    def test_answers_have_head_arity(self, query, database):
        for answer in evaluate(query, database):
            assert len(answer) == query.arity


class TestConstraintProperties:
    @RELAXED
    @given(comparisons=comparison_sets())
    def test_implication_agrees_with_refutation(self, comparisons):
        constraints = ComparisonSet(comparisons)
        for candidate in comparisons:
            # Every asserted comparison is implied.
            assert constraints.implies(candidate)

    @RELAXED
    @given(comparisons=comparison_sets())
    def test_satisfiability_is_antitone_in_constraints(self, comparisons):
        # Removing constraints can never make a satisfiable set unsatisfiable.
        full = ComparisonSet(comparisons)
        if full.is_satisfiable():
            for index in range(len(comparisons)):
                reduced = ComparisonSet(comparisons[:index] + comparisons[index + 1:])
                assert reduced.is_satisfiable()

    @RELAXED
    @given(comparisons=comparison_sets())
    def test_implied_comparison_conjoins_without_changing_satisfiability(self, comparisons):
        constraints = ComparisonSet(comparisons)
        if not constraints.is_satisfiable():
            return
        for candidate in list(comparisons)[:2]:
            if constraints.implies(candidate):
                assert constraints.conjoin([candidate]).is_satisfiable()
