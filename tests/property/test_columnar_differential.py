"""Differential properties of the columnar store and the three executors.

Two invariants back the PR-8 columnar/parallel work:

1. **Executor agreement** — the backtracking interpreter, the serial compiled
   engine and the partitioned parallel executor return *identical* answer
   sets (tuple for tuple, Skolem values included) on random queries, views
   and databases.  The parallel executor under test has ``processes=2`` and
   no size threshold, so the real fork/ship/merge path runs whenever a plan
   has a tail to fan out.
2. **Index/storage integrity** — after arbitrary add / discard / apply_delta
   churn, every incrementally-maintained hash index of a relation holds
   exactly what a from-scratch rebuild over the surviving tuples would hold,
   every bucket slot points at the row it claims to, and the columnar free
   list accounts for every discarded slot.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.engine.evaluate import evaluate, materialize_views
from repro.engine.relation import Relation, SkolemValue
from repro.exec import CompiledExecutor, InterpretedExecutor, ParallelExecutor
from repro.materialize.delta import Delta

from tests.property.strategies import (
    DOMAIN,
    PREDICATE_POOL,
    conjunctive_queries,
    databases,
    view_sets,
)

COMPILED = CompiledExecutor()
INTERPRETED = InterpretedExecutor()
PARALLEL = ParallelExecutor(processes=2, min_partition_rows=1)

DIFFERENTIAL = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

#: A couple of Skolem witnesses that join by identity across relations.
SKOLEMS = [SkolemValue("f", (0,)), SkolemValue("g", (1, 2))]


@st.composite
def skolem_databases(draw):
    """A small database whose extents mix plain values and Skolem values."""
    database = draw(databases())
    values = st.sampled_from(DOMAIN + SKOLEMS)
    for predicate in PREDICATE_POOL:
        for _ in range(draw(st.integers(min_value=0, max_value=4))):
            database.add_fact(predicate, (draw(values), draw(values)))
    return database


class TestExecutorAgreement:
    @DIFFERENTIAL
    @given(database=databases(), query=conjunctive_queries())
    def test_three_executors_agree_on_random_queries(self, database, query):
        expected = evaluate(query, database, executor=INTERPRETED)
        assert evaluate(query, database, executor=COMPILED) == expected
        assert evaluate(query, database, executor=PARALLEL) == expected

    @DIFFERENTIAL
    @given(database=skolem_databases(), query=conjunctive_queries())
    def test_agreement_holds_on_skolem_bearing_extents(self, database, query):
        expected = evaluate(query, database, executor=INTERPRETED)
        assert evaluate(query, database, executor=COMPILED) == expected
        assert evaluate(query, database, executor=PARALLEL) == expected

    @DIFFERENTIAL
    @given(database=databases(), views=view_sets())
    def test_materialized_view_extents_agree(self, database, views):
        expected = materialize_views(views, database, executor=INTERPRETED)
        assert materialize_views(views, database, executor=COMPILED) == expected
        assert materialize_views(views, database, executor=PARALLEL) == expected


# -- storage / index integrity under churn -----------------------------------

#: One churn step: mutate directly or through a database delta.
OPS = ["add", "discard", "delta_insert", "delta_delete"]

churn_rows = st.tuples(
    st.sampled_from(DOMAIN + SKOLEMS), st.sampled_from(DOMAIN + SKOLEMS)
)
churn_steps = st.lists(
    st.tuples(st.sampled_from(OPS), churn_rows), min_size=0, max_size=60
)


def apply_churn(database, relation, steps):
    for op, row in steps:
        if op == "add":
            relation.add(row)
        elif op == "discard":
            relation.discard(row)
        elif op == "delta_insert":
            database.apply_delta(Delta.insertion("r", [row]))
        else:
            database.apply_delta(Delta.deletion("r", [row]))


def assert_storage_consistent(relation):
    """The columnar store and every index match a from-scratch rebuild."""
    rebuilt = Relation(relation.name, relation.arity, relation.tuples())
    stats = relation.storage_stats()
    assert stats["rows"] == len(rebuilt)
    assert stats["capacity"] == stats["rows"] + stats["free_slots"]
    assert stats["skolem_counts"] == [
        sum(isinstance(row[p], SkolemValue) for row in relation)
        for p in range(relation.arity)
    ]
    for positions in list(relation._indexes):
        live = relation.index_on(positions)
        fresh = rebuilt.index_on(positions)
        # Same keys, same row sets per bucket as a from-scratch rebuild.
        assert {key: set(bucket) for key, bucket in live.items()} == {
            key: set(bucket) for key, bucket in fresh.items()
        }
        # Every bucket entry points at the slot actually storing its row.
        for bucket in live.values():
            for row, slot in bucket.items():
                assert relation._rows[row] == slot
                assert tuple(
                    relation.column(p)[slot] for p in range(relation.arity)
                ) == row


class TestIndexChurn:
    @DIFFERENTIAL
    @given(steps=churn_steps)
    def test_indexes_match_rebuild_after_churn(self, steps):
        database = Database()
        relation = database.ensure_relation("r", 2)
        # Build the indexes *before* the churn so they are maintained
        # incrementally through every step, never rebuilt.
        relation.index_on((0,))
        relation.index_on((1,))
        relation.index_on((0, 1))
        apply_churn(database, relation, steps)
        assert_storage_consistent(relation)

    @DIFFERENTIAL
    @given(steps=churn_steps, query=conjunctive_queries())
    def test_churned_relation_still_answers_identically(self, steps, query):
        database = Database()
        relation = database.ensure_relation("r", 2)
        relation.index_on((0,))
        for predicate in ("s", "t"):
            database.ensure_relation(predicate, 2)
        apply_churn(database, relation, steps)
        expected = evaluate(query, database, executor=INTERPRETED)
        assert evaluate(query, database, executor=COMPILED) == expected
        assert evaluate(query, database, executor=PARALLEL) == expected
