"""Property-based tests for the serving layer.

The load-bearing cache-soundness invariants:

* **fingerprint-equal ⇒ isomorphic**: any two generated queries whose
  fingerprints coincide admit a bijective variable renaming carrying one onto
  the other (checked via the explicit witness);
* **isomorphism-invariance**: renaming variables and shuffling subgoals never
  changes the fingerprint;
* **cache correctness**: serving an isomorphic variant from the cache yields
  rewritings whose expansions are equivalent to those of an uncached rewrite
  of the variant, and identical answer sets over any database.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.containment.containment import is_equivalent
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.substitution import Substitution
from repro.datalog.terms import Variable
from repro.engine.evaluate import evaluate
from repro.rewriting.rewriter import rewrite
from repro.service.fingerprint import fingerprint, isomorphism_witness
from repro.service.session import RewritingSession

from tests.property.strategies import conjunctive_queries, databases, view_sets

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def scrambled(query: ConjunctiveQuery, seed: int) -> ConjunctiveQuery:
    """An isomorphic variant: variables renamed, subgoals shuffled."""
    rng = random.Random(seed)
    names = [f"P{i}" for i in range(len(query.variables()))]
    rng.shuffle(names)
    renaming = Substitution(
        {var: Variable(names[i]) for i, var in enumerate(query.variables())}
    )
    body = list(renaming.apply_atoms(query.body))
    rng.shuffle(body)
    return ConjunctiveQuery(
        renaming.apply_atom(query.head),
        body,
        renaming.apply_comparisons(query.comparisons),
    )


class TestFingerprintProperties:
    @SLOW
    @given(query=conjunctive_queries(), seed=st.integers(min_value=0, max_value=10_000))
    def test_isomorphic_variants_share_fingerprint(self, query, seed):
        variant = scrambled(query, seed)
        fp, fp_variant = fingerprint(query), fingerprint(variant)
        if fp.exact and fp_variant.exact:
            assert fp.text == fp_variant.text

    @SLOW
    @given(left=conjunctive_queries(), right=conjunctive_queries())
    def test_fingerprint_equal_implies_isomorphic(self, left, right):
        if fingerprint(left).text != fingerprint(right).text:
            return
        witness = isomorphism_witness(left, right)
        assert witness is not None
        assert left.apply(witness, require_safe=False) == right

    @SLOW
    @given(query=conjunctive_queries(), seed=st.integers(min_value=0, max_value=10_000))
    def test_witness_maps_variant_back(self, query, seed):
        variant = scrambled(query, seed)
        witness = isomorphism_witness(query, variant)
        assert witness is not None
        assert query.apply(witness, require_safe=False) == variant


class TestCachedRewritingProperties:
    @SLOW
    @given(
        query=conjunctive_queries(),
        views=view_sets(),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_cached_variant_rewritings_are_expansion_equivalent(
        self, query, views, seed
    ):
        variant = scrambled(query, seed)
        session = RewritingSession(views)
        session.rewrite_cached(query)           # prime the cache
        served = session.rewrite_cached(variant)
        assert session.last_cache_hit is True
        uncached = rewrite(variant, views, algorithm="minicon")
        assert len(served.rewritings) == len(uncached.rewritings)
        served_expansions = [r.expansion for r in served.rewritings]
        uncached_expansions = [r.expansion for r in uncached.rewritings]
        # Same multiset of plans: each served expansion is equivalent to some
        # uncached one (and the counts match, so this is a bijection check).
        for expansion in served_expansions:
            assert any(
                is_equivalent(expansion, other) for other in uncached_expansions
            )

    @SLOW
    @given(
        query=conjunctive_queries(),
        views=view_sets(),
        database=databases(),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_cached_answers_equal_direct_evaluation(
        self, query, views, database, seed
    ):
        variant = scrambled(query, seed)
        session = RewritingSession(views, database=database)
        session.answer(query)                   # prime both caches
        assert session.answer(variant) == evaluate(variant, database)
