"""Property tests for the indexed containment search and the verdict memo.

The indexed homomorphism search must agree with the retained naive reference
*mapping for mapping* (same multiset of substitutions, only the enumeration
order may differ), and the memoized ``is_contained`` must be invariant under
renaming either query — both with the memo engaged (fingerprint keys are
renaming-invariant) and against the raw search with the memo disabled.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.substitution import Substitution
from repro.datalog.terms import Variable
from repro.containment.containment import is_contained
from repro.containment.homomorphism import (
    containment_mappings,
    count_containment_mappings,
    naive_containment_mappings,
    using_search_implementation,
)
from repro.containment.memo import global_containment_memo, memo_disabled

from tests.property.strategies import conjunctive_queries


def _mapping_key(substitution: Substitution):
    return tuple(sorted((var.name, str(term)) for var, term in substitution.items()))


def _all_keys(mappings):
    return sorted(_mapping_key(m) for m in mappings)


def _renamed(query: ConjunctiveQuery) -> ConjunctiveQuery:
    renaming = Substitution(
        {var: Variable(f"R_{i}_{var.name}") for i, var in enumerate(query.variables())}
    )
    return query.apply(renaming, require_safe=False)


class TestIndexedSearchMatchesNaive:
    @settings(max_examples=120, deadline=None)
    @given(conjunctive_queries(), conjunctive_queries())
    def test_mapping_for_mapping_agreement(self, source, target):
        indexed = _all_keys(containment_mappings(source, target))
        naive = _all_keys(naive_containment_mappings(source, target))
        assert indexed == naive

    @settings(max_examples=120, deadline=None)
    @given(conjunctive_queries(), conjunctive_queries())
    def test_count_agreement(self, source, target):
        count = count_containment_mappings(source, target)
        assert count == sum(1 for _ in naive_containment_mappings(source, target))
        with using_search_implementation("naive"):
            assert count == count_containment_mappings(source, target)

    @settings(max_examples=80, deadline=None)
    @given(conjunctive_queries())
    def test_self_containment_has_identity_mapping(self, query):
        keys = _all_keys(containment_mappings(query, query))
        identity = _mapping_key(
            Substitution({v: v for v in query.variables()})
        )
        assert identity in keys


class TestMemoRenamingInvariance:
    @settings(max_examples=80, deadline=None)
    @given(conjunctive_queries(name="q"), conjunctive_queries(name="q"))
    def test_verdict_invariant_under_renaming(self, left, right):
        memo = global_containment_memo()
        memo.clear()
        original = is_contained(left, right)
        # Renaming either side (or both) must not change the memoized verdict.
        assert is_contained(_renamed(left), right) == original
        assert is_contained(left, _renamed(right)) == original
        assert is_contained(_renamed(left), _renamed(right)) == original

    @settings(max_examples=80, deadline=None)
    @given(conjunctive_queries(name="q"), conjunctive_queries(name="q"))
    def test_memoized_verdict_matches_raw_search(self, left, right):
        memo = global_containment_memo()
        memo.clear()
        memoized = is_contained(left, right)
        with memo_disabled():
            assert is_contained(left, right) == memoized
        # And the renamed pair agrees with its own raw search too.
        renamed_left, renamed_right = _renamed(left), _renamed(right)
        memoized_renamed = is_contained(renamed_left, renamed_right)
        with memo_disabled():
            assert is_contained(renamed_left, renamed_right) == memoized_renamed
