"""Differential properties of the storage layer (PR 9).

Three invariants:

1. **Backend agreement** — the same random query over the same random data
   returns identical answers whether the base facts live in a plain
   in-process :class:`Database`, a memory-backend :class:`BackedDatabase`,
   or a sqlite-backend one — under each of the three executors.  A fresh
   backed database is built per executor so the single-atom pushdown path
   (cold relation, constant-filtered SQL scan) genuinely runs before
   hydration can hide it.
2. **Write-path agreement** — after the same random delta churn, a
   sqlite-backed database and a plain one hold identical extents, and the
   backend's on-disk rows match what it reports through scans.
3. **Delta text round-trip** — ``parse_delta(delta.to_text()) == delta``
   for deltas over nasty heterogeneous values (quotes, newlines, control
   characters, numerics that collide under Python equality).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.engine.evaluate import evaluate
from repro.exec import CompiledExecutor, InterpretedExecutor, ParallelExecutor
from repro.materialize.delta import Delta, parse_delta
from repro.storage import BackedDatabase, MemoryBackend
from repro.storage.sqlite import SQLiteBackend

from tests.property.strategies import conjunctive_queries, databases

DIFFERENTIAL = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
RELAXED = settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

INTERPRETED = InterpretedExecutor()
COMPILED = CompiledExecutor()
PARALLEL = ParallelExecutor(processes=2, min_partition_rows=1)


def sqlite_copy(database: Database) -> BackedDatabase:
    return BackedDatabase.from_database(database, SQLiteBackend(None))


def memory_copy(database: Database) -> BackedDatabase:
    return BackedDatabase.from_database(database, MemoryBackend())


class TestBackendAgreement:
    @DIFFERENTIAL
    @given(database=databases(), query=conjunctive_queries())
    def test_backends_and_executors_agree(self, database, query):
        expected = evaluate(query, database, executor=INTERPRETED)
        for executor in (INTERPRETED, COMPILED, PARALLEL):
            for copy in (memory_copy, sqlite_copy):
                assert evaluate(query, copy(database), executor=executor) == expected

    @DIFFERENTIAL
    @given(database=databases(), query=conjunctive_queries())
    def test_pushdown_does_not_change_answers(self, database, query):
        # One shared backed database per executor: earlier queries may have
        # hydrated some relations, later ones hit the pushdown path — the
        # answers must not depend on which path served the scan.
        expected = evaluate(query, database, executor=COMPILED)
        backed = sqlite_copy(database)
        cold = evaluate(query, backed, executor=COMPILED)
        warm = evaluate(query, backed, executor=COMPILED)
        assert cold == expected
        assert warm == expected


# -- write-path agreement ----------------------------------------------------

churn_rows = st.frozensets(
    st.tuples(
        st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3)
    ),
    max_size=4,
)
churn_sides = st.fixed_dictionaries({"r": churn_rows, "s": churn_rows})
churn_deltas = st.lists(
    st.builds(Delta, inserted=churn_sides, removed=churn_sides), max_size=4
)


class TestWritePathAgreement:
    @RELAXED
    @given(database=databases(), deltas=churn_deltas)
    def test_delta_churn_matches_plain_database(self, database, deltas):
        plain = database.copy()
        backed = sqlite_copy(database)
        for delta in deltas:
            plain.apply_delta(delta)
            backed.apply_delta(delta)
        assert backed == plain
        # The backend itself must agree with the hydrated view of the world.
        backend = backed.backend
        for name in backed.relation_names():
            assert frozenset(backend.scan(name)) == plain.tuples(name)


# -- delta text round-trip ---------------------------------------------------

nasty_text = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters="\x00"
    ),
    max_size=12,
)
nasty_values = st.one_of(
    nasty_text,
    st.integers(min_value=-1000, max_value=1000),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
nasty_rows = st.frozensets(st.tuples(nasty_values, nasty_values), max_size=3)
nasty_sides = st.fixed_dictionaries({"rel_a": nasty_rows, "rel_b": nasty_rows})


class TestDeltaTextRoundTrip:
    @RELAXED
    @given(delta=st.builds(Delta, inserted=nasty_sides, removed=nasty_sides))
    def test_parse_inverts_to_text(self, delta):
        assert parse_delta(delta.to_text()) == delta
