"""Property-based tests for the rewriting layer.

The invariants checked here are the load-bearing guarantees of the library:

* every rewriting any algorithm reports as *contained* has an expansion
  contained in the query (soundness), and evaluating it over materialized
  views never produces a non-answer;
* every rewriting reported as *equivalent* reproduces the query's answers
  exactly over the materialized views;
* the exhaustive search and MiniCon agree on whether an equivalent rewriting
  exists (completeness cross-check).
"""

from hypothesis import HealthCheck, given, settings

from repro.containment.containment import is_contained, is_equivalent
from repro.engine.evaluate import evaluate, materialize_views
from repro.rewriting.exhaustive import ExhaustiveRewriter
from repro.rewriting.expansion import expand_query
from repro.rewriting.minicon import MiniConRewriter
from repro.rewriting.plans import RewritingKind
from repro.rewriting.rewriter import rewrite

from tests.property.strategies import conjunctive_queries, databases, view_sets

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


class TestRewritingSoundness:
    @SLOW
    @given(query=conjunctive_queries(), views=view_sets())
    def test_minicon_outputs_are_contained(self, query, views):
        result = MiniConRewriter(views).rewrite(query)
        for rewriting in result.rewritings:
            expansion = expand_query(rewriting.query, views)
            assert expansion is not None
            assert is_contained(expansion, query)
            if rewriting.kind is RewritingKind.EQUIVALENT:
                assert is_equivalent(expansion, query)

    @SLOW
    @given(query=conjunctive_queries(), views=view_sets())
    def test_bucket_outputs_are_contained(self, query, views):
        result = rewrite(query, views, algorithm="bucket", mode="contained")
        for rewriting in result.rewritings:
            expansion = expand_query(rewriting.query, views)
            assert expansion is not None
            assert is_contained(expansion, query)

    @SLOW
    @given(query=conjunctive_queries(), views=view_sets(), database=databases())
    def test_contained_plans_never_return_non_answers(self, query, views, database):
        result = MiniConRewriter(views).rewrite(query)
        if not result.rewritings:
            return
        instance = materialize_views(views, database)
        true_answers = evaluate(query, database)
        for rewriting in result.rewritings:
            assert evaluate(rewriting.query, instance) <= true_answers

    @SLOW
    @given(query=conjunctive_queries(), views=view_sets(), database=databases())
    def test_equivalent_plans_reproduce_answers_exactly(self, query, views, database):
        result = MiniConRewriter(views).rewrite(query)
        equivalents = [r for r in result.rewritings if r.kind is RewritingKind.EQUIVALENT]
        if not equivalents:
            return
        instance = materialize_views(views, database)
        true_answers = evaluate(query, database)
        for rewriting in equivalents:
            assert evaluate(rewriting.query, instance) == true_answers


class TestAlgorithmAgreement:
    @SLOW
    @given(query=conjunctive_queries(), views=view_sets(max_views=3))
    def test_exhaustive_and_minicon_agree_on_existence(self, query, views):
        exhaustive = ExhaustiveRewriter(views).rewrite(query).has_equivalent
        minicon = MiniConRewriter(views).rewrite(query).has_equivalent
        assert exhaustive == minicon

    @SLOW
    @given(query=conjunctive_queries(), views=view_sets(max_views=3))
    def test_exhaustive_rewriting_size_respects_paper_bound(self, query, views):
        from repro.containment.minimize import minimize

        result = ExhaustiveRewriter(views, find_all=False).rewrite(query)
        if result.best is not None:
            assert result.best.query.size() <= minimize(query).size()
