"""Tests for the experiment harness (measurement, tables, registry)."""

import pytest

from repro.experiments.measure import Measurement, time_call
from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    all_experiments,
    get_experiment,
    register,
)
from repro.experiments.tables import format_series, format_table


class TestMeasure:
    def test_time_call_repeats_and_keeps_result(self):
        calls = []

        def work(x):
            calls.append(x)
            return x * 2

        measurement = time_call(work, 21, repeat=4, label="double")
        assert measurement.result == 42
        assert len(measurement.timings) == 4
        assert len(calls) == 4
        assert measurement.best <= measurement.mean

    def test_statistics_on_empty_measurement(self):
        empty = Measurement(label="x")
        assert empty.best != empty.best  # NaN
        assert empty.stdev == 0.0

    def test_str_mentions_label(self):
        measurement = time_call(lambda: None, repeat=1, label="noop")
        assert "noop" in str(measurement)


class TestTables:
    def test_format_table_alignment(self):
        table = format_table([[1, 2.0], [30, 4.5]], ["a", "value"], title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_renders_floats_compactly(self):
        table = format_table([[0.000123456]], ["x"])
        assert "e" in table.splitlines()[-1]

    def test_format_series_columns(self):
        text = format_series(
            {"bucket": [1.0, 2.0], "minicon": [0.5, 0.7]},
            x_values=[10, 20],
            x_label="views",
        )
        header = text.splitlines()[0]
        assert header.split("|")[0].strip() == "views"
        assert "bucket" in header and "minicon" in header

    def test_format_series_handles_missing_points(self):
        text = format_series({"a": [1.0]}, x_values=[1, 2])
        assert "-" in text.splitlines()[-1]


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = [e.id for e in all_experiments()]
        assert len(ids) == 17
        assert set(ids) == {f"E{i}" for i in range(1, 18)}

    def test_get_experiment(self):
        e4 = get_experiment("E4")
        assert e4 is not None
        assert "chain" in e4.title.lower()
        assert get_experiment("E99") is None

    def test_registration_is_idempotent(self):
        register(EXPERIMENTS[0])

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError):
            register(
                Experiment("E1", "different title", "table", "claim", "module")
            )

    def test_every_experiment_names_a_bench_module(self):
        for experiment in all_experiments():
            assert experiment.bench_module.startswith("benchmarks/")
            assert experiment.artefact in ("table", "figure")
