"""Tests for the compiled executor: equivalence, caching, fallback, sharing."""

import random

import pytest

from repro.errors import EvaluationError
from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_query, parse_views
from repro.datalog.queries import ConjunctiveQuery, UnionQuery
from repro.datalog.terms import FunctionTerm, Variable
from repro.engine.database import Database
from repro.engine.evaluate import EvaluationStatistics, evaluate
from repro.engine.relation import SkolemValue
from repro.exec import (
    CompiledExecutor,
    InterpretedExecutor,
    ParallelExecutor,
    default_executor_name,
    get_default_executor,
    resolve_executor,
    set_default_executor,
)

COMPILED = CompiledExecutor()
INTERPRETED = InterpretedExecutor()
# Two workers with no size threshold: even the small test databases take the
# real partitioned path, so equivalence covers the fork/ship/merge machinery.
PARALLEL = ParallelExecutor(processes=2, min_partition_rows=1)

#: Every executor behind the common interface, for parametrized equivalence.
ALL_EXECUTORS = [COMPILED, INTERPRETED, PARALLEL]
EXECUTOR_IDS = [executor.name for executor in ALL_EXECUTORS]


def random_db(seed=0, size=200, domain=25):
    rng = random.Random(seed)
    db = Database()
    for name in ("r", "s", "t"):
        db.ensure_relation(name, 2)
        for _ in range(size):
            db.add_fact(name, (rng.randrange(domain), rng.randrange(domain)))
    db.ensure_relation("u", 3)
    for _ in range(size):
        db.add_fact("u", tuple(rng.randrange(domain) for _ in range(3)))
    return db


def assert_engines_agree(query, db):
    interpreted = evaluate(query, db, executor=INTERPRETED)
    for executor in (COMPILED, PARALLEL):
        assert evaluate(query, db, executor=executor) == interpreted
    return interpreted


class TestEquivalence:
    @pytest.mark.parametrize("executor", ALL_EXECUTORS, ids=EXECUTOR_IDS)
    @pytest.mark.parametrize(
        "text",
        [
            "q(X, Z) :- r(X, Y), s(Y, Z).",
            "q(X, W) :- r(X, Y), s(Y, Z), t(Z, W).",
            "q(X) :- r(X, X).",
            "q(X, Y) :- r(X, Y), X < Y.",
            "q(X, Y) :- r(X, Y), s(Y, 3).",
            "q(X, Y, Z) :- u(X, Y, Z), X != Z.",
            "q(X) :- u(X, X, Y), Y > 1.",
            "q(X, Y) :- r(X, Y), t(Y, X).",
            "q() :- r(X, Y), X = Y.",
            "q(X, 7) :- r(X, Y).",
            "q(X, Y) :- r(X, Y), s(A, B), A != B.",  # cartesian product
            "q(X, Z) :- r(X, Y), s(Y, Z), r(X, 5).",
            "q(X, Y) :- r(X, Y), 1 < 2.",  # ground-true comparison
            "q(X, Y) :- r(X, Y), 2 < 1.",  # ground-false comparison
            "q(A, B) :- u(A, B, B).",
            "q(X) :- r(3, X).",
        ],
    )
    def test_same_answers_as_interpreter(self, text, executor):
        query = parse_query(text)
        db = random_db()
        assert evaluate(query, db, executor=executor) == evaluate(
            query, db, executor=INTERPRETED
        )

    def test_union_queries_agree(self):
        db = random_db(3)
        union = UnionQuery(
            [parse_query("q(X, Y) :- r(X, Y)."), parse_query("q(X, Y) :- s(X, Y), X < Y.")]
        )
        assert_engines_agree(union, db)

    def test_empty_and_missing_relations(self):
        db = Database()
        db.ensure_relation("r", 2)  # present but empty
        query = parse_query("q(X, Z) :- r(X, Y), missing(Y, Z).")
        assert assert_engines_agree(query, db) == frozenset()

    def test_skolem_values_in_data(self):
        db = Database()
        sk = SkolemValue("f", (1,))
        db.add_fact("r", (1, sk))
        db.add_fact("r", (1, 2))
        db.add_fact("s", (sk, 3))
        db.add_fact("s", (2, 3))
        # Skolems join by identity but never satisfy order comparisons.
        assert_engines_agree(parse_query("q(X, Z) :- r(X, Y), s(Y, Z)."), db)
        assert_engines_agree(parse_query("q(X, Y) :- r(X, Y), Y < 100."), db)
        assert_engines_agree(parse_query("q(X, Y) :- r(X, Y), Y != 2."), db)

    def test_arity_mismatch_raises_in_both_engines(self):
        db = Database.from_dict({"r": [(1, 2)]})
        query = parse_query("q(X) :- r(X).")
        for executor in ALL_EXECUTORS:
            with pytest.raises(EvaluationError):
                evaluate(query, db, executor=executor)

    def test_unbound_head_variable_raises_only_when_rows_exist(self):
        # require_safe=False lets an unsafe head through; evaluation must
        # raise only when an assignment actually reaches projection.
        x, y = Variable("X"), Variable("Y")
        query = ConjunctiveQuery(Atom("q", [y]), [Atom("r", [x, x])], require_safe=False)
        empty = Database.from_dict({"r": [(1, 2)]})  # r(X, X) never matches
        matching = Database.from_dict({"r": [(1, 1)]})
        for executor in ALL_EXECUTORS:
            assert evaluate(query, empty, executor=executor) == frozenset()
            with pytest.raises(EvaluationError):
                evaluate(query, matching, executor=executor)

    def test_statistics_counters_are_filled(self):
        db = random_db(1)
        stats = EvaluationStatistics()
        evaluate(parse_query("q(X, Z) :- r(X, Y), s(Y, Z)."), db, stats, executor=COMPILED)
        assert stats.probes > 0
        assert stats.extensions > 0
        assert stats.answers > 0
        assert stats.subgoals == 2


class TestFallback:
    def test_function_terms_fall_back_to_interpreter(self):
        executor = CompiledExecutor()
        x = Variable("X")
        query = ConjunctiveQuery(
            Atom("q", [x, FunctionTerm("f", (x,))]),
            [Atom("r", [x, x])],
            require_safe=False,
        )
        db = Database.from_dict({"r": [(1, 1), (2, 2)]})
        answers = executor.evaluate(query, db)
        assert answers == frozenset(
            {(1, SkolemValue("f", (1,))), (2, SkolemValue("f", (2,)))}
        )
        assert executor.fallbacks == 1


class TestPlanCache:
    def test_repeated_queries_hit_the_cache(self):
        executor = CompiledExecutor()
        db = random_db(2)
        query = parse_query("q(X, Z) :- r(X, Y), s(Y, Z).")
        executor.evaluate(query, db)
        executor.evaluate(query, db)
        assert executor.plan_hits == 1
        assert executor.plan_misses == 1

    def test_isomorphic_queries_share_a_plan(self):
        executor = CompiledExecutor()
        db = random_db(2)
        executor.evaluate(parse_query("q(X, Z) :- r(X, Y), s(Y, Z)."), db)
        executor.evaluate(parse_query("q(A, C) :- r(A, B), s(B, C)."), db)
        assert executor.plan_hits == 1

    def test_version_bump_recompiles(self):
        executor = CompiledExecutor()
        db = random_db(2)
        query = parse_query("q(X, Z) :- r(X, Y), s(Y, Z).")
        first = executor.evaluate(query, db)
        db.add_fact("r", (999, 998))
        db.add_fact("s", (998, 997))
        second = executor.evaluate(query, db)
        assert executor.plan_misses == 2
        assert (999, 997) in second and (999, 997) not in first

    def test_cache_is_bounded(self):
        executor = CompiledExecutor(plan_cache_size=2)
        db = random_db(2)
        for name in ("a", "b", "c", "d"):
            executor.evaluate(parse_query(f"{name}(X, Y) :- r(X, Y)."), db)
        assert executor.stats()["plans_cached"] <= 2

    def test_zero_cache_size_compiles_every_time(self):
        executor = CompiledExecutor(plan_cache_size=0)
        db = random_db(2)
        query = parse_query("q(X, Y) :- r(X, Y).")
        assert executor.evaluate(query, db) == evaluate(query, db, executor=INTERPRETED)
        assert executor.stats()["plans_cached"] == 0

    def test_unsupported_queries_cache_the_negative_result(self):
        executor = CompiledExecutor()
        x = Variable("X")
        query = ConjunctiveQuery(
            Atom("q", [x]),
            [Atom("r", [x, FunctionTerm("f", (x,))])],
            require_safe=False,
        )
        db = Database.from_dict({"r": [(1, SkolemValue("f", (1,)))]})
        executor.evaluate(query, db)
        executor.evaluate(query, db)
        assert executor.fallbacks == 2
        assert executor.plan_misses == 1
        assert executor.plan_hits == 1


class TestSharedBuildSides:
    def test_union_disjuncts_share_relation_indexes(self):
        """Disjuncts probing one view relation share its hash index build."""
        db = Database()
        for i in range(50):
            db.add_fact("v", (i % 7, i))
        union = UnionQuery(
            [
                parse_query("q(X, Y) :- v(X, Y), r(Y, X)."),
                parse_query("q(X, Y) :- v(X, Y), s(Y, X)."),
                parse_query("q(X, Y) :- v(X, Y), t(Y, X)."),
            ]
        )
        for name in ("r", "s", "t"):
            for i in range(20):
                db.add_fact(name, (i, i % 7))
        executor = CompiledExecutor()
        executor.evaluate(union, db)
        relation = db.relation("v")
        # One shared index (plus at most the scan-side none): the three
        # disjuncts did not build three separate join tables.
        assert len(relation._indexes) <= 2


class TestDefaultExecutor:
    def test_default_matches_configuration(self):
        # "compiled" unless REPRO_DEFAULT_EXECUTOR overrides it (the CI
        # parallel leg runs this very test with the override in place).
        assert get_default_executor().name == default_executor_name()

    def test_set_and_restore_default(self):
        configured = default_executor_name()
        set_default_executor("interpreted")
        try:
            assert get_default_executor().name == "interpreted"
        finally:
            set_default_executor(None)  # None = back to the configured default
        assert get_default_executor().name == configured

    def test_resolve_accepts_instances_and_rejects_junk(self):
        executor = CompiledExecutor()
        assert resolve_executor(executor) is executor
        assert resolve_executor("interpreted").name == "interpreted"
        assert resolve_executor("parallel").name == "parallel"
        with pytest.raises(EvaluationError):
            resolve_executor("vectorized")
        with pytest.raises(EvaluationError):
            resolve_executor(42)

    def test_evaluate_accepts_executor_names(self):
        db = random_db(4)
        query = parse_query("q(X, Y) :- r(X, Y), X < Y.")
        assert evaluate(query, db, executor="compiled") == evaluate(
            query, db, executor="interpreted"
        )


class TestMaterializeThroughExecutor:
    def test_materialize_views_matches_interpreter(self):
        from repro.engine.evaluate import materialize_views

        db = random_db(5)
        views = parse_views(
            "v1(X, Z) :- r(X, Y), s(Y, Z).\n"
            "v2(X) :- r(X, X).\n"
            "v3(X, Y) :- t(X, Y), X < Y.\n"
        )
        compiled = materialize_views(views, db, executor=COMPILED)
        interpreted = materialize_views(views, db, executor=INTERPRETED)
        parallel = materialize_views(views, db, executor=PARALLEL)
        assert compiled == interpreted
        assert parallel == interpreted
