"""Tests for the statistics snapshots feeding the plan compiler and cost model."""

from repro.engine.database import Database
from repro.exec.stats import DatabaseStatistics, statistics_for


def _db():
    return Database.from_dict(
        {
            "r": [(1, 2), (1, 3), (2, 3)],
            "s": [(5,), (6,), (7,), (7,)],  # duplicate collapses: sets
        }
    )


class TestDatabaseStatistics:
    def test_cardinality(self):
        stats = DatabaseStatistics(_db())
        assert stats.cardinality("r") == 3
        assert stats.cardinality("s") == 3
        assert stats.cardinality("missing") == 0

    def test_distinct_counts_per_position(self):
        stats = DatabaseStatistics(_db())
        assert stats.distinct("r", 0) == 2
        assert stats.distinct("r", 1) == 2
        assert stats.distinct("s", 0) == 3

    def test_distinct_is_at_least_one(self):
        stats = DatabaseStatistics(Database())
        assert stats.distinct("missing", 0) == 1
        assert stats.distinct("missing", 99) == 1

    def test_selectivity_and_estimated_rows(self):
        stats = DatabaseStatistics(_db())
        assert stats.selectivity("r", 0) == 0.5
        assert stats.estimated_rows("r", ()) == 3.0
        assert stats.estimated_rows("r", (0,)) == 1.5
        assert stats.estimated_rows("r", (0, 1)) == 0.75

    def test_freshness_tracks_version(self):
        db = _db()
        stats = DatabaseStatistics(db)
        assert stats.fresh
        db.add_fact("r", (9, 9))
        assert not stats.fresh


class TestSnapshotSharing:
    def test_snapshot_reused_while_version_stable(self):
        db = _db()
        assert statistics_for(db) is statistics_for(db)

    def test_snapshot_replaced_after_mutation(self):
        db = _db()
        before = statistics_for(db)
        assert before.distinct("r", 0) == 2
        db.add_fact("r", (42, 42))
        after = statistics_for(db)
        assert after is not before
        assert after.distinct("r", 0) == 3

    def test_distinct_lazy_cache_is_per_snapshot(self):
        db = _db()
        stats = statistics_for(db)
        assert stats.distinct("r", 0) == 2
        # The cached value persists for the snapshot even as data changes
        # under it; freshness is handled by snapshot replacement.
        db.add_fact("r", (42, 42))
        assert stats.distinct("r", 0) == 2
        assert statistics_for(db).distinct("r", 0) == 3
