"""Property: the compiled executor and the interpreter agree on every query.

Random small queries (optionally with comparison subgoals) over random small
databases — the compiled engine's answer set, statistics-visible behaviors
and error behaviors must match the interpreter's, which is the semantic
ground truth.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.atoms import Comparison
from repro.datalog.terms import Constant, Variable
from repro.engine.evaluate import evaluate
from repro.exec import CompiledExecutor, InterpretedExecutor

from tests.property.strategies import conjunctive_queries, databases

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

COMPILED = CompiledExecutor()
INTERPRETED = InterpretedExecutor()


@st.composite
def queries_with_comparisons(draw):
    query = draw(conjunctive_queries())
    body_vars = list(query.body_variables())
    if not body_vars:
        return query
    operators = st.sampled_from(["<", "<=", "=", "!=", ">", ">="])
    operands = st.one_of(
        st.sampled_from(body_vars),
        st.sampled_from([Constant(0), Constant(1), Constant(2)]),
    )
    count = draw(st.integers(min_value=0, max_value=2))
    comparisons = [
        Comparison(draw(operands), draw(operators), draw(operands)) for _ in range(count)
    ]
    return query.with_body(query.body, comparisons)


class TestCompiledMatchesInterpreter:
    @RELAXED
    @given(query=conjunctive_queries(), database=databases())
    def test_plain_queries_agree(self, query, database):
        assert evaluate(query, database, executor=COMPILED) == evaluate(
            query, database, executor=INTERPRETED
        )

    @RELAXED
    @given(query=queries_with_comparisons(), database=databases())
    def test_queries_with_comparisons_agree(self, query, database):
        assert evaluate(query, database, executor=COMPILED) == evaluate(
            query, database, executor=INTERPRETED
        )
